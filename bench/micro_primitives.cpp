// Google-benchmark microbenchmarks of the cryptographic substrates: AES /
// SHA-256 / PRG throughput, bit-matrix transpose, field and curve
// operations, NTT, garbling, and OT-extension pad derivation. These are the
// knobs behind every table; regressions here show up everywhere.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/bitmatrix.h"
#include "crypto/aes.h"
#include "crypto/prg.h"
#include "crypto/ro.h"
#include "crypto/sha256.h"
#include "ec/ed25519.h"
#include "gc/garble.h"
#include "he/bfv.h"
#include "nn/model.h"
#include "ot/wh_code.h"
#include "simd/dispatch.h"

namespace abnn2 {
namespace {

void BM_AesEncryptBlocks(benchmark::State& state) {
  Aes128 aes(Block{1, 2});
  std::vector<Block> buf(1024);
  for (auto _ : state) {
    aes.encrypt_blocks(buf.data(), buf.data(), buf.size());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 16 * 1024);
}
BENCHMARK(BM_AesEncryptBlocks);

void BM_Sha256(benchmark::State& state) {
  std::vector<u8> data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto d = Sha256::hash(data.data(), data.size());
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(40)->Arg(1024);

void BM_PrgBytes(benchmark::State& state) {
  Prg prg(Block{3, 3});
  std::vector<u8> buf(1 << 16);
  for (auto _ : state) {
    prg.bytes(buf.data(), buf.size());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * (1 << 16));
}
BENCHMARK(BM_PrgBytes);

void BM_RoHash(benchmark::State& state) {
  ScopedRoMode mode(state.range(0) ? RoMode::kFixedKeyAes : RoMode::kSha256);
  u8 q[32] = {1, 2, 3};
  for (auto _ : state) {
    auto d = ro_hash(1, 2, q);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_RoHash)->Arg(0)->Arg(1);  // 0 = SHA-256, 1 = fixed-key AES

// Batched OT-pad derivation at the current ro_batch_width(): 4096 rows of
// 32 bytes, the KK13 shape. Run with ABNN2_RO_BATCH_WIDTH=1 this degenerates
// to the seed's per-instance path, which is how BENCH_baseline.json was
// produced; the default width-8 run is BENCH_pr5.json. items/s = pads/s.
void BM_RoHashBatch(benchmark::State& state) {
  ScopedRoMode mode(state.range(0) ? RoMode::kFixedKeyAes : RoMode::kSha256);
  constexpr std::size_t kRows = 4096;
  constexpr std::size_t kRowBytes = 32;
  Prg prg(Block{20, 20});
  std::vector<u8> rows(kRows * kRowBytes);
  prg.bytes(rows.data(), rows.size());
  std::vector<RoDigest> out(kRows);
  for (auto _ : state) {
    ro_hash_batch(3, 0, rows.data(), kRowBytes, kRows, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * kRows);
}
BENCHMARK(BM_RoHashBatch)->Arg(0)->Arg(1);  // 0 = SHA-256, 1 = fixed-key AES

// IKNP-shaped batched pads (16-byte rows) — the send/recv_blocks hot loop.
void BM_RoHashBatchIknp(benchmark::State& state) {
  ScopedRoMode mode(RoMode::kFixedKeyAes);
  constexpr std::size_t kRows = 4096;
  constexpr std::size_t kRowBytes = 16;
  Prg prg(Block{21, 21});
  std::vector<u8> rows(kRows * kRowBytes);
  prg.bytes(rows.data(), rows.size());
  std::vector<RoDigest> out(kRows);
  for (auto _ : state) {
    ro_hash_batch(4, 0, rows.data(), kRowBytes, kRows, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * kRows);
}
BENCHMARK(BM_RoHashBatchIknp);

void BM_BitMatrixTranspose(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  BitMatrix m(rows, 256);
  Prg prg(Block{4, 4});
  prg.bytes(m.data(), m.size_bytes());
  for (auto _ : state) {
    auto t = m.transpose();
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_BitMatrixTranspose)->Arg(1024)->Arg(8192);

void BM_Ed25519ScalarMult(benchmark::State& state) {
  Prg prg(Block{5, 5});
  ec::Scalar k;
  prg.bytes(k.data(), k.size());
  for (auto _ : state) {
    auto p = ec::Point::base().mul(k);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_Ed25519ScalarMult);

void BM_GarbleReluCircuit(benchmark::State& state) {
  // Gates/second of the Alg-2 ReLU circuit (l = 32).
  gc::Builder b;
  auto y1 = b.garbler_inputs(32);
  auto z1 = b.garbler_inputs(32);
  auto y0 = b.evaluator_inputs(32);
  auto sum = b.add_mod(y0, y1);
  auto relu = b.and_bit(b.NOT(sum[31]), sum);
  b.mark_outputs(b.sub_mod(relu, z1));
  const gc::Circuit c = b.build();
  Prg prg(Block{6, 6});
  for (auto _ : state) {
    gc::Garbler g(c, 16, 0, prg);
    benchmark::DoNotOptimize(g.batch().tables.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 16 *
                          static_cast<i64>(c.and_count()));
}
BENCHMARK(BM_GarbleReluCircuit);

void BM_NttForward(benchmark::State& state) {
  const he::BfvParams params(32, 4096);
  Prg prg(Block{7, 7});
  std::vector<u64> a(4096);
  for (auto& v : a) v = prg.next_below(params.prime(0));
  for (auto _ : state) {
    params.ntt(0).forward(a.data());
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_NttForward);

void BM_BfvEncrypt(benchmark::State& state) {
  const he::BfvParams params(32, 4096);
  Prg prg(Block{8, 8});
  he::SecretKey sk(params, prg);
  std::vector<u64> pt(4096, 12345);
  for (auto _ : state) {
    auto ct = sk.encrypt(params, pt, prg);
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_BfvEncrypt);

void BM_BfvDecrypt(benchmark::State& state) {
  const he::BfvParams params(32, 4096);
  Prg prg(Block{9, 9});
  he::SecretKey sk(params, prg);
  std::vector<u64> pt(4096, 999);
  const auto ct = sk.encrypt(params, pt, prg);
  for (auto _ : state) {
    auto m = sk.decrypt(params, ct);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_BfvDecrypt);

void BM_PlaintextInferFig4(benchmark::State& state) {
  const ss::Ring ring(32);
  const auto model =
      nn::fig4_model(ring, nn::FragScheme::parse("(2,2,2,2)"), Block{10, 10});
  const auto x = nn::synthetic_images(784, 1, 16, ring, Block{11, 11});
  for (auto _ : state) {
    auto y = nn::infer_plain(model, x);
    benchmark::DoNotOptimize(y.data().data());
  }
}
BENCHMARK(BM_PlaintextInferFig4);

void BM_WhCodeword(benchmark::State& state) {
  u32 v = 0;
  for (auto _ : state) {
    auto c = wh_codeword(v++ & 0xff);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_WhCodeword);

}  // namespace
}  // namespace abnn2

// Custom main instead of BENCHMARK_MAIN(): logs the dispatched CPU features
// (ABNN2_VERBOSE=1) and translates the repo-standard `--json <path>` flag
// into google-benchmark's JSON reporter flags.
int main(int argc, char** argv) {
  abnn2::simd::log_dispatch(argc > 0 ? argv[0] : "micro_primitives");
  const std::string json = abnn2::bench::parse_json_flag(argc, argv);
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag, fmt_flag;
  if (!json.empty()) {
    out_flag = "--benchmark_out=" + json;
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
