// Reproduces Table 4: end-to-end secure prediction (offline + online) on the
// Fig-4 network vs MiniONN, batch sizes {1, 128}, rings Z_2^32 and Z_2^64,
// WAN = 24.3 MB/s with 40 ms RTT. Our rows cover the paper's quantization
// configurations 4(2,2), 3(2,1), ternary and binary.
//
// Expected shape (paper): at batch 128 ABNN2 is ~3-7x faster than MiniONN in
// LAN and ~1.4-4.5x in WAN, with ~1.1-4.5x less communication; MiniONN
// amortizes Enc(W)... (here: per-batch ciphertexts) better at batch 1.
#include <vector>

#include "bench_util.h"
#include "core/inference.h"

namespace abnn2 {
namespace {

using bench::RunCost;
using core::Backend;

RunCost run_e2e(Backend backend, const std::string& spec, std::size_t l,
                std::size_t batch) {
  const ss::Ring ring(l);
  const auto scheme = nn::FragScheme::parse(spec);
  const auto model = nn::fig4_model(ring, scheme, Block{0xF16, l});
  const auto x = nn::synthetic_images(784, batch, l / 2, ring, Block{7, batch});

  core::InferenceConfig cfg(ring);
  cfg.backend = backend;

  // Span-attributed run: the "offline"/"online" phase spans provide the
  // Off/On communication split without a second metered execution.
  bench::ScopedCollector trace;
  auto res = run_two_parties(
      [&](Channel& ch) {
        core::InferenceServer server(model, cfg);
        server.run_offline(ch);
        server.run_online(ch);
        return 0;
      },
      [&](Channel& ch) {
        core::InferenceClient client(cfg);
        client.run_offline(ch, batch);
        return client.run_online(ch, x).rows();
      });
  return bench::summarize(res, kWanQuotient, trace.collector());
}

}  // namespace
}  // namespace abnn2

int main(int argc, char** argv) {
  using namespace abnn2;
  bench::setup_bench_env(argc, argv);

  std::vector<std::size_t> batches = {1, 128};
  if (bench::fast_mode()) batches = {1, 8};

  bench::print_header(
      "Table 4: end-to-end prediction vs MiniONN, Fig-4 net, WAN 24.3MB/s "
      "40ms");
  std::printf("%-8s %-10s | ", "l", "config");
  for (auto b : batches) std::printf("LAN(s)@%-4zu ", b);
  std::printf("| ");
  for (auto b : batches) std::printf("WAN(s)@%-4zu ", b);
  std::printf("| ");
  for (auto b : batches) std::printf("Comm(MB)@%-4zu ", b);
  std::printf("| ");
  for (auto b : batches) std::printf("Off/On(MB)@%-4zu ", b);
  std::printf("\n");

  auto print_row = [&](const char* lname, const char* cfgname,
                       const std::vector<bench::RunCost>& cells) {
    std::printf("%-8s %-10s | ", lname, cfgname);
    for (const auto& c : cells) std::printf("%11.2f ", c.lan_s);
    std::printf("| ");
    for (const auto& c : cells) std::printf("%11.2f ", c.wan_s);
    std::printf("| ");
    for (const auto& c : cells) std::printf("%13.2f ", c.comm_mb);
    std::printf("| ");
    for (const auto& c : cells)
      std::printf("%7.2f/%-7.2f ", c.offline_mb, c.online_mb);
    std::printf("\n");
  };

  for (std::size_t l : {std::size_t{32}, std::size_t{64}}) {
    // MiniONN baseline (one row per ring, quantization does not change its
    // cost model — it multiplies full-width plaintexts).
    {
      std::vector<bench::RunCost> cells;
      for (auto b : batches) {
        cells.push_back(run_e2e(core::Backend::kMiniONN, "(2,2)", l, b));
        bench::json_row("table4/minionn/l" + std::to_string(l) + "/b" +
                            std::to_string(b),
                        cells.back());
      }
      print_row(l == 32 ? "l=32" : "l=64", "MiniONN", cells);
    }
    for (const char* spec : {"(2,2)", "(2,1)", "ternary", "binary"}) {
      std::vector<bench::RunCost> cells;
      for (auto b : batches) {
        cells.push_back(run_e2e(core::Backend::kAbnn2, spec, l, b));
        bench::json_row(std::string("table4/") + spec + "/l" +
                            std::to_string(l) + "/b" + std::to_string(b),
                        cells.back());
      }
      print_row(l == 32 ? "l=32" : "l=64", spec, cells);
    }
  }
  std::printf(
      "\n(MiniONN baseline = RLWE-AHE offline + identical shares/GC online;\n"
      " see DESIGN.md substitution #4)\n");
  return 0;
}
