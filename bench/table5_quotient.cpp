// Reproduces Table 5: end-to-end ternary-network prediction vs QUOTIENT,
// batch sizes {1, 128}, WAN = 24.3 MB/s with 40 ms RTT.
//
// QUOTIENT's own numbers cannot be re-run here (TensorFlow-based release);
// the paper's reported values are printed as reference constants, and a
// faithful QUOTIENT-style protocol (each ternary weight = two binary
// multiplications over 1-out-of-2 correlated OT) is run on the same machine
// for an apples-to-apples comparison — see DESIGN.md substitution #5.
//
// Expected shape (paper): ABNN2's ternary protocol is comparable to
// QUOTIENT (single-core), clearly faster than the 2x-binary-OT decomposition
// in communication.
#include <vector>

#include "bench_util.h"
#include "core/inference.h"

namespace abnn2 {
namespace {

bench::RunCost run_e2e(core::Backend backend, std::size_t batch) {
  const ss::Ring ring(32);
  const auto model = nn::fig4_model(ring, nn::FragScheme::ternary(),
                                    Block{0xF16, 5});
  const auto x = nn::synthetic_images(784, batch, 16, ring, Block{9, batch});

  core::InferenceConfig cfg(ring);
  cfg.backend = backend;

  // Span-attributed run: the "offline"/"online" phase spans provide the
  // Off/On communication split without a second metered execution.
  bench::ScopedCollector trace;
  auto res = run_two_parties(
      [&](Channel& ch) {
        core::InferenceServer server(model, cfg);
        server.run_offline(ch);
        server.run_online(ch);
        return 0;
      },
      [&](Channel& ch) {
        core::InferenceClient client(cfg);
        client.run_offline(ch, batch);
        return client.run_online(ch, x).rows();
      });
  return bench::summarize(res, kWanQuotient, trace.collector());
}

}  // namespace
}  // namespace abnn2

int main(int argc, char** argv) {
  using namespace abnn2;
  bench::setup_bench_env(argc, argv);

  std::vector<std::size_t> batches = {1, 128};
  if (bench::fast_mode()) batches = {1, 8};

  bench::print_header(
      "Table 5: ternary end-to-end prediction vs QUOTIENT, WAN 24.3MB/s 40ms");
  std::printf("%-28s | ", "protocol");
  for (auto b : batches) std::printf("LAN(s)@%-4zu ", b);
  std::printf("| ");
  for (auto b : batches) std::printf("WAN(s)@%-4zu ", b);
  std::printf("| ");
  for (auto b : batches) std::printf("Comm(MB)@%-4zu ", b);
  std::printf("| ");
  for (auto b : batches) std::printf("Off/On(MB)@%-4zu ", b);
  std::printf("\n");

  for (auto [name, backend] :
       {std::pair{"ABNN2 (ternary, 1-of-N OT)", core::Backend::kAbnn2},
        std::pair{"QUOTIENT-style (2x 1-of-2)", core::Backend::kQuotient}}) {
    std::vector<bench::RunCost> cells;
    for (auto b : batches) {
      cells.push_back(run_e2e(backend, b));
      bench::json_row(std::string("table5/") +
                          (backend == core::Backend::kAbnn2 ? "abnn2"
                                                            : "quotient") +
                          "/b" + std::to_string(b),
                      cells.back());
    }
    std::printf("%-28s | ", name);
    for (const auto& c : cells) std::printf("%11.2f ", c.lan_s);
    std::printf("| ");
    for (const auto& c : cells) std::printf("%11.2f ", c.wan_s);
    std::printf("| ");
    for (const auto& c : cells) std::printf("%13.2f ", c.comm_mb);
    std::printf("| ");
    for (const auto& c : cells)
      std::printf("%7.2f/%-7.2f ", c.offline_mb, c.online_mb);
    std::printf("\n");
  }
  std::printf(
      "%-28s |        0.36@1       2.24@128 |         6.8@1        8.3@128 | "
      "(not reported)\n",
      "QUOTIENT (paper, Xeon)");
  return 0;
}
