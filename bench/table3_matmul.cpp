// Reproduces Table 3: offline matrix-multiplication microbenchmark — a
// 128 x d quantized matrix times a d-dimensional vector, d in
// {100, 500, 1000}, all non-quantized elements in Z_2^64, WAN = 9 MB/s with
// 72 ms RTT. Compares ABNN2 (binary / ternary / 8-bit (2,2,2,2)) against
// SecureML.
//
// Expected shape (paper): ABNN2 binary/ternary beat SecureML by ~2-3x LAN
// and 25-36x WAN; 8-bit is ~4-6x faster in WAN; communication is ~25x/20x/4x
// smaller than SecureML for the three configurations.
#include <vector>

#include "bench_util.h"
#include "baselines/secureml.h"
#include "core/triplet_gen.h"
#include "nn/model.h"
#include "runtime/thread_pool.h"

namespace abnn2 {
namespace {

using bench::RunCost;

RunCost run_ours(const nn::FragScheme& scheme, std::size_t d,
                 const ss::Ring& ring) {
  Prg dprg(Block{1, d});
  nn::MatU64 codes(128, d);
  for (auto& c : codes.data()) c = dprg.next_below(scheme.code_space());
  nn::MatU64 r = nn::random_mat(d, 1, ring.bits(), dprg);
  core::TripletConfig cfg(ring);

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{2, 1});
        Kk13Receiver ot;
        ot.setup(ch, prg);
        return core::triplet_gen_server(ch, ot, codes, scheme, 1, cfg);
      },
      [&](Channel& ch) {
        Prg prg(Block{2, 2});
        Kk13Sender ot;
        ot.setup(ch, prg);
        return core::triplet_gen_client(ch, ot, r, scheme, 128, cfg, prg);
      });
  return bench::summarize(res, kWanTable3);
}

RunCost run_secureml(std::size_t d, const ss::Ring& ring) {
  Prg dprg(Block{3, d});
  nn::MatU64 w = nn::random_mat(128, d, ring.bits(), dprg);
  nn::MatU64 r = nn::random_mat(d, 1, ring.bits(), dprg);

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{4, 1});
        IknpReceiver ot;
        ot.setup(ch, prg);
        return baselines::secureml_triplet_server(ch, ot, w, 1, ring);
      },
      [&](Channel& ch) {
        Prg prg(Block{4, 2});
        IknpSender ot;
        ot.setup(ch, prg);
        return baselines::secureml_triplet_client(ch, ot, r, 128, ring, prg);
      });
  return bench::summarize(res, kWanTable3);
}

}  // namespace
}  // namespace abnn2

int main(int argc, char** argv) {
  using namespace abnn2;
  bench::setup_bench_env(argc, argv);
  const ss::Ring ring(64);

  std::vector<std::size_t> dims = {100, 500, 1000};
  if (bench::fast_mode()) dims = {100};

  const char* configs[] = {"binary", "ternary", "(2,2,2,2)"};

  bench::print_header(
      "Table 3: offline matmul 128 x d * d x 1, l=64, WAN 9MB/s 72ms");
  std::printf("%-10s %6s | %10s %10s %10s | %10s\n", "metric", "d", "binary",
              "ternary", "8(2,2,2,2)", "SecureML");

  for (std::size_t d : dims) {
    bench::RunCost ours[3];
    for (int i = 0; i < 3; ++i) {
      ours[i] = run_ours(nn::FragScheme::parse(configs[i]), d, ring);
      bench::json_row(std::string("table3/") + configs[i] + "/d" +
                          std::to_string(d),
                      ours[i]);
    }
    const bench::RunCost sm = run_secureml(d, ring);
    bench::json_row("table3/secureml/d" + std::to_string(d), sm);
    std::printf("%-10s %6zu | %10.2f %10.2f %10.2f | %10.2f\n", "LAN(s)", d,
                ours[0].lan_s, ours[1].lan_s, ours[2].lan_s, sm.lan_s);
    std::printf("%-10s %6zu | %10.2f %10.2f %10.2f | %10.2f\n", "WAN(s)", d,
                ours[0].wan_s, ours[1].wan_s, ours[2].wan_s, sm.wan_s);
    std::printf("%-10s %6zu | %10.2f %10.2f %10.2f | %10.2f\n", "Comm(MB)", d,
                ours[0].comm_mb, ours[1].comm_mb, ours[2].comm_mb, sm.comm_mb);
    std::printf("%-10s %6zu | %10.1fx %9.1fx %9.1fx |\n", "WAN speedup", d,
                sm.wan_s / ours[0].wan_s, sm.wan_s / ours[1].wan_s,
                sm.wan_s / ours[2].wan_s);
  }

  // Parallel-runtime speedup on this host: the largest 8-bit cell with a
  // 1-thread pool vs the default pool size (ABNN2_THREADS / hardware
  // concurrency). Transcripts are identical; only compute time changes.
  {
    const std::size_t nt = runtime::num_threads();
    const std::size_t d = dims.back();
    const auto scheme = nn::FragScheme::parse("(2,2,2,2)");
    runtime::set_threads(1);
    const double serial_s = run_ours(scheme, d, ring).compute_s;
    runtime::set_threads(nt);
    const double par_s = run_ours(scheme, d, ring).compute_s;
    std::printf(
        "\nparallel runtime: threads=%zu compute %.3fs, serial %.3fs "
        "-> %.2fx speedup (d=%zu, 8-bit)\n",
        nt, par_s, serial_s, serial_s / par_s, d);
  }
  return 0;
}
