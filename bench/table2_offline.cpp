// Reproduces Table 2: offline dot-product-triplet generation for the Fig-4
// 3-layer network (784 -> 128 -> 128 -> 10) over the ring Z_2^32, for every
// weight bitwidth / fragment tuple the paper lists and batch sizes
// {1, 32, 64, 128}. Reports run time (LAN-simulated seconds) and
// communication (MB).
//
// Expected shape (paper): 2-bit fragments minimize batch-128 communication
// within each eta; larger-N tuples win on time at large batches; ternary and
// binary are cheapest; amortized per-prediction cost falls with batch size.
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "core/triplet_gen.h"
#include "nn/model.h"
#include "runtime/thread_pool.h"

namespace abnn2 {
namespace {

using bench::RunCost;
using core::BatchMode;
using core::TripletConfig;
using nn::FragScheme;
using nn::MatU64;
using ss::Ring;

// One Table-2 row cell: generate triplets for all three Fig-4 layers.
RunCost run_cell(const FragScheme& scheme, std::size_t batch,
                 const Ring& ring) {
  const auto model = nn::fig4_model(ring, scheme, Block{0xF16, 4});
  TripletConfig cfg(ring);

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{1, 1});
        Kk13Receiver ot;
        ot.setup(ch, prg);
        std::vector<MatU64> u;
        for (const auto& layer : model.layers)
          u.push_back(core::triplet_gen_server(ch, ot, layer.codes,
                                               layer.scheme, batch, cfg));
        return u.size();
      },
      [&](Channel& ch) {
        Prg prg(Block{1, 2});
        Kk13Sender ot;
        ot.setup(ch, prg);
        std::size_t count = 0;
        for (std::size_t li = 0; li < model.layers.size(); ++li) {
          const auto& layer = model.layers[li];
          MatU64 r = nn::random_mat(layer.in_dim(), batch, ring.bits(), prg);
          core::triplet_gen_client(ch, ot, r, layer.scheme, layer.out_dim(),
                                   cfg, prg);
          ++count;
        }
        return count;
      });
  return bench::summarize(res, kWanTable3);
}

}  // namespace
}  // namespace abnn2

int main(int argc, char** argv) {
  using namespace abnn2;
  bench::setup_bench_env(argc, argv);
  const ss::Ring ring(32);

  struct Row {
    int eta;            // 0 for ternary/binary rows
    const char* tuple;
  };
  const std::vector<Row> rows = {
      {8, "(1,1,1,1,1,1,1,1)"}, {8, "(2,2,2,2)"}, {8, "(3,3,2)"}, {8, "(4,4)"},
      {6, "(1,1,1,1,1,1)"},     {6, "(2,2,2)"},   {6, "(3,3)"},
      {4, "(1,1,1,1)"},         {4, "(2,2)"},     {4, "(4)"},
      {3, "(1,1,1)"},           {3, "(2,1)"},     {3, "(3)"},
      {0, "ternary"},           {0, "binary"}};
  std::vector<std::size_t> batches = {1, 32, 64, 128};
  if (bench::fast_mode()) batches = {1, 32};

  bench::print_header(
      "Table 2: offline triplet generation, Fig-4 net, l=32, LAN");
  std::printf("%-4s %-20s | %-38s | %s\n", "eta", "fragments",
              "run time (s) per batch", "communication (MB) per batch");
  std::printf("%-4s %-20s |", "", "");
  for (auto b : batches) std::printf(" %8zu", b);
  std::printf("  |");
  for (auto b : batches) std::printf(" %9zu", b);
  std::printf("\n");

  for (const auto& row : rows) {
    const auto scheme = nn::FragScheme::parse(row.tuple);
    std::vector<bench::RunCost> cells;
    for (std::size_t bi = 0; bi < batches.size(); ++bi) {
      cells.push_back(run_cell(scheme, batches[bi], ring));
      bench::json_row(std::string("table2/") + row.tuple + "/b" +
                          std::to_string(batches[bi]),
                      cells.back());
    }
    if (row.eta > 0)
      std::printf("%-4d %-20s |", row.eta, row.tuple);
    else
      std::printf("%-4s %-20s |", "-", row.tuple);
    for (const auto& c : cells) std::printf(" %8.2f", c.lan_s);
    std::printf("  |");
    for (const auto& c : cells) std::printf(" %9.2f", c.comm_mb);
    std::printf("\n");
  }
  std::printf(
      "\n(run time = compute + simulated LAN transfer; see DESIGN.md #2)\n");

  // Parallel-runtime speedup on this host: the largest (2,2,2,2) cell with a
  // 1-thread pool vs the default pool size (ABNN2_THREADS / hardware
  // concurrency). Transcripts are identical; only compute time changes.
  {
    const std::size_t nt = runtime::num_threads();
    const std::size_t b = batches.back();
    const auto scheme = nn::FragScheme::parse("(2,2,2,2)");
    runtime::set_threads(1);
    const double serial_s = run_cell(scheme, b, ring).compute_s;
    runtime::set_threads(nt);
    const double par_s = run_cell(scheme, b, ring).compute_s;
    std::printf(
        "parallel runtime: threads=%zu compute %.3fs, serial %.3fs "
        "-> %.2fx speedup (batch=%zu, (2,2,2,2))\n",
        nt, par_s, serial_s, serial_s / par_s, b);
  }
  return 0;
}
