// Ablation: the one-batch C-OT optimization (paper 4.1.3) vs plain
// multi-batch messaging at o = 1, and the N / gamma trade-off of eq. (2) for
// 8-bit weights ("among all possible combinations of protocol parameters N
// and gamma, we give the optimal parameter values").
//
// Expected: at o = 1 the C-OT variant sends l*(N-1) bits per OT vs l*N, and
// for eta = 8 the (2,2,2,2) split minimizes batch-1 communication, matching
// Table 2's observation that 2-bit fragments are the sweet spot.
#include <vector>

#include "bench_util.h"
#include "core/complexity.h"
#include "core/triplet_gen.h"
#include "nn/model.h"

namespace abnn2 {
namespace {

bench::RunCost run_mode(const nn::FragScheme& scheme, core::BatchMode mode) {
  const ss::Ring ring(32);
  Prg dprg(Block{1, 1});
  nn::MatU64 codes(128, 784);
  for (auto& c : codes.data()) c = dprg.next_below(scheme.code_space());
  nn::MatU64 r = nn::random_mat(784, 1, 32, dprg);
  core::TripletConfig cfg(ring);
  cfg.mode = mode;

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{2, 1});
        Kk13Receiver ot;
        ot.setup(ch, prg);
        return core::triplet_gen_server(ch, ot, codes, scheme, 1, cfg);
      },
      [&](Channel& ch) {
        Prg prg(Block{2, 2});
        Kk13Sender ot;
        ot.setup(ch, prg);
        return core::triplet_gen_client(ch, ot, r, scheme, 128, cfg, prg);
      });
  return bench::summarize(res, kWanTable3);
}

}  // namespace
}  // namespace abnn2

int main(int argc, char** argv) {
  using namespace abnn2;
  bench::setup_bench_env(argc, argv);

  bench::print_header(
      "Ablation A: one-batch C-OT (4.1.3) vs multi-batch messages at o=1");
  std::printf("128x784 matrix, l=32\n");
  std::printf("%-14s | %10s %10s | %10s %10s\n", "fragments", "1B comm",
              "1B LAN(s)", "MB comm", "MB LAN(s)");
  for (const char* spec : {"(2,2,2,2)", "(4,4)", "ternary", "binary"}) {
    const auto scheme = nn::FragScheme::parse(spec);
    const auto ob = run_mode(scheme, core::BatchMode::kOneBatchCot);
    const auto mb = run_mode(scheme, core::BatchMode::kMultiBatch);
    bench::json_row(std::string("onebatch/") + spec, ob);
    bench::json_row(std::string("multibatch/") + spec, mb);
    std::printf("%-14s | %9.2fM %10.2f | %9.2fM %10.2f\n", spec, ob.comm_mb,
                ob.lan_s, mb.comm_mb, mb.lan_s);
  }

  bench::print_header("Ablation B: N/gamma sweep for eta=8, o=1");
  std::printf("%-20s | %6s %4s | %10s %10s %10s\n", "fragments", "gamma",
              "Nmax", "comm (MB)", "LAN (s)", "WAN (s)");
  for (const char* spec :
       {"(1,1,1,1,1,1,1,1)", "(2,2,2,2)", "(3,3,2)", "(4,4)", "(5,3)",
        "(6,2)", "(7,1)", "(8)"}) {
    const auto scheme = nn::FragScheme::parse(spec);
    const auto c = run_mode(scheme, core::BatchMode::kOneBatchCot);
    std::printf("%-20s | %6zu %4u | %10.2f %10.2f %10.2f\n", spec,
                scheme.gamma(), scheme.max_n(), c.comm_mb, c.lan_s, c.wan_s);
  }
  return 0;
}
