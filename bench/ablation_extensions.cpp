// Ablation: cost of the extension features beyond the paper —
//  (a) secure argmax output vs revealing the logits,
//  (b) CNN layers (conv via local im2col, fused ReLU+maxpool),
//  (c) the generic Algorithm-2 sigmoid vs ReLU,
//  (d) random-oracle instantiation (SHA-256 vs fixed-key AES) on the
//      offline triplet generation — the ABY-style speed/assumption knob.
#include <vector>

#include "bench_util.h"
#include "core/inference.h"
#include "core/triplet_gen.h"

namespace abnn2 {
namespace {

using bench::RunCost;

RunCost run_fig4(core::Reveal reveal, std::size_t batch) {
  const ss::Ring ring(32);
  const auto model =
      nn::fig4_model(ring, nn::FragScheme::parse("(2,2)"), Block{1, 1});
  const auto x = nn::synthetic_images(784, batch, 16, ring, Block{2, 2});
  core::InferenceConfig cfg(ring);
  cfg.reveal = reveal;
  auto res = run_two_parties(
      [&](Channel& ch) {
        core::InferenceServer server(model, cfg);
        server.run_offline(ch);
        server.run_online(ch);
        return 0;
      },
      [&](Channel& ch) {
        core::InferenceClient client(cfg);
        client.run_offline(ch, batch);
        return client.run_online(ch, x).cols();
      });
  return bench::summarize(res, kWanQuotient);
}

RunCost run_cnn(bool pooled, std::size_t batch) {
  const ss::Ring ring(32);
  const auto scheme = nn::FragScheme::parse("s(2,2)");
  const auto model = pooled ? nn::pooled_cnn_model(ring, scheme, Block{3, 3})
                            : nn::small_cnn_model(ring, scheme, Block{3, 3});
  const auto x = nn::synthetic_images(model.input_dim(), batch, 12, ring,
                                      Block{4, 4});
  core::InferenceConfig cfg(ring);
  auto res = run_two_parties(
      [&](Channel& ch) {
        core::InferenceServer server(model, cfg);
        server.run_offline(ch);
        server.run_online(ch);
        return 0;
      },
      [&](Channel& ch) {
        core::InferenceClient client(cfg);
        client.run_offline(ch, batch);
        return client.run_online(ch, x).cols();
      });
  return bench::summarize(res, kWanQuotient);
}

RunCost run_nonlinear(bool sigmoid, std::size_t n) {
  const ss::Ring ring(32);
  Prg dprg(Block{5, n});
  std::vector<u64> y0(n), y1(n), z1(n);
  for (std::size_t i = 0; i < n; ++i) {
    y1[i] = ring.random(dprg);
    y0[i] = ring.sub(ring.from_signed(
                         static_cast<i64>(dprg.next_below(4096)) - 2048),
                     y1[i]);
    z1[i] = ring.random(dprg);
  }
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{6, 1});
        if (sigmoid) {
          gc::GcEvaluator gce;
          return core::sigmoid_server(ch, gce, ring, 8, y0, prg).size();
        }
        core::ReluServer srv(ring, core::ReluMode::kGeneric);
        return srv.run(ch, y0, prg).size();
      },
      [&](Channel& ch) {
        Prg prg(Block{6, 2});
        if (sigmoid) {
          gc::GcGarbler gcg;
          core::sigmoid_client(ch, gcg, ring, 8, y1, z1, prg);
        } else {
          core::ReluClient cli(ring, core::ReluMode::kGeneric);
          cli.run(ch, y1, z1, prg);
        }
        return 0;
      });
  return bench::summarize(res, kWanQuotient);
}

RunCost run_triplets_ro(RoMode mode) {
  // Deliberate A/B of the RO instantiations between self-contained runs;
  // the first-use guard must be released before each switch.
  reset_ro_mode_for_bench();
  set_ro_mode(mode);
  const ss::Ring ring(32);
  const auto scheme = nn::FragScheme::parse("(2,2,2,2)");
  Prg dprg(Block{7, 7});
  nn::MatU64 codes(128, 784);
  for (auto& c : codes.data()) c = dprg.next_below(scheme.code_space());
  nn::MatU64 r = nn::random_mat(784, 8, 32, dprg);
  core::TripletConfig cfg(ring);
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{8, 1});
        Kk13Receiver ot;
        ot.setup(ch, prg);
        return core::triplet_gen_server(ch, ot, codes, scheme, 8, cfg);
      },
      [&](Channel& ch) {
        Prg prg(Block{8, 2});
        Kk13Sender ot;
        ot.setup(ch, prg);
        return core::triplet_gen_client(ch, ot, r, scheme, 128, cfg, prg);
      });
  reset_ro_mode_for_bench();
  set_ro_mode(RoMode::kFixedKeyAes);
  return bench::summarize(res, kWanQuotient);
}

}  // namespace
}  // namespace abnn2

int main(int argc, char** argv) {
  using namespace abnn2;
  bench::setup_bench_env(argc, argv);
  const std::size_t batch = bench::fast_mode() ? 2 : 8;

  bench::print_header("Ablation: reveal logits vs secure argmax (Fig-4 net)");
  std::printf("%-16s | %8s %10s %8s\n", "reveal", "LAN(s)", "comm(MB)",
              "rounds");
  for (auto [name, mode] :
       {std::pair{"logits", core::Reveal::kLogits},
        std::pair{"argmax", core::Reveal::kArgmax}}) {
    const auto c = run_fig4(mode, batch);
    bench::json_row(std::string("reveal/") + name, c);
    std::printf("%-16s | %8.2f %10.2f %8llu\n", name, c.lan_s, c.comm_mb,
                static_cast<unsigned long long>(c.rounds));
  }

  bench::print_header("Ablation: CNN layers (conv + fused ReLU/maxpool)");
  std::printf("%-16s | %8s %10s\n", "model", "LAN(s)", "comm(MB)");
  for (bool pooled : {false, true}) {
    const auto c = run_cnn(pooled, batch);
    bench::json_row(pooled ? "cnn/conv_pool_fc" : "cnn/conv_relu_fc", c);
    std::printf("%-16s | %8.2f %10.2f\n",
                pooled ? "conv+pool+fc" : "conv+relu+fc", c.lan_s, c.comm_mb);
  }

  bench::print_header("Ablation: Algorithm-2 f = ReLU vs piecewise sigmoid");
  const std::size_t n = bench::fast_mode() ? 2048 : 16384;
  std::printf("%zu neurons, l=32\n", n);
  for (bool sigmoid : {false, true}) {
    const auto c = run_nonlinear(sigmoid, n);
    bench::json_row(sigmoid ? "nonlinear/sigmoid" : "nonlinear/relu", c);
    std::printf("%-16s | LAN %6.2f s, comm %8.2f MB\n",
                sigmoid ? "sigmoid" : "ReLU (generic)", c.lan_s, c.comm_mb);
  }

  bench::print_header("Ablation: random-oracle instantiation (triplet gen)");
  for (auto [name, mode] : {std::pair{"SHA-256", RoMode::kSha256},
                            std::pair{"fixed-key AES", RoMode::kFixedKeyAes}}) {
    const auto c = run_triplets_ro(mode);
    bench::json_row(mode == RoMode::kSha256 ? "ro/sha256" : "ro/fixed_key_aes",
                    c);
    std::printf("%-16s | compute %6.2f s (comm identical: %.2f MB)\n", name,
                c.compute_s, c.comm_mb);
  }
  return 0;
}
