// Reproduces Table 1: analytic OT-invocation counts and communication of
// SecureML vs ABNN2 (multi-batch and one-batch), and verifies the formulas
// against the METERED traffic of the real protocol implementations.
//
// Expected shape: formula communication matches measured bytes to within the
// OT-extension base-OT setup and framing overhead (reported separately); the
// ABNN2 OT count is gamma*m*n independent of l and o, while SecureML's grows
// with l^2 and o.
#include <cmath>

#include "bench_util.h"
#include "baselines/secureml.h"
#include "core/complexity.h"
#include "core/triplet_gen.h"
#include "nn/model.h"

namespace abnn2 {
namespace {

using core::MatMulShape;

struct Measured {
  double comm_bytes;
  double setup_bytes;
};

// Measures one ABNN2 triplet run, returning payload bytes with the base-OT
// setup cost separated out. A single traced run replaces the old setup-only
// extra run: the "kk13/base-ot" spans attribute setup traffic exactly.
Measured measure_ours(const MatMulShape& s, const nn::FragScheme& scheme,
                      std::size_t l, core::BatchMode mode) {
  const ss::Ring ring(l);
  Prg dprg(Block{1, 1});
  nn::MatU64 codes(s.m, s.n);
  for (auto& c : codes.data()) c = dprg.next_below(scheme.code_space());
  nn::MatU64 r = nn::random_mat(s.n, s.o, l, dprg);
  core::TripletConfig cfg(ring);
  cfg.mode = mode;

  bench::ScopedCollector trace;
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{2, 1});
        Kk13Receiver ot;
        ot.setup(ch, prg);
        return core::triplet_gen_server(ch, ot, codes, scheme, s.o, cfg);
      },
      [&](Channel& ch) {
        Prg prg(Block{2, 2});
        Kk13Sender ot;
        ot.setup(ch, prg);
        return core::triplet_gen_client(ch, ot, r, scheme, s.m, cfg, prg);
      });
  const double setup = static_cast<double>(
      bench::span_bytes_sent(trace.collector(), {"kk13/base-ot"}));
  return {static_cast<double>(res.total_comm_bytes()) - setup, setup};
}

Measured measure_secureml(const MatMulShape& s, std::size_t l) {
  const ss::Ring ring(l);
  Prg dprg(Block{3, 3});
  nn::MatU64 w = nn::random_mat(s.m, s.n, l, dprg);
  nn::MatU64 r = nn::random_mat(s.n, s.o, l, dprg);

  bench::ScopedCollector trace;
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{4, 1});
        IknpReceiver ot;
        ot.setup(ch, prg);
        return baselines::secureml_triplet_server(ch, ot, w, s.o, ring);
      },
      [&](Channel& ch) {
        Prg prg(Block{4, 2});
        IknpSender ot;
        ot.setup(ch, prg);
        return baselines::secureml_triplet_client(ch, ot, r, s.m, ring, prg);
      });
  const double setup = static_cast<double>(
      bench::span_bytes_sent(trace.collector(), {"iknp/base-ot"}));
  return {static_cast<double>(res.total_comm_bytes()) - setup, setup};
}

}  // namespace
}  // namespace abnn2

int main(int argc, char** argv) {
  using namespace abnn2;
  bench::setup_bench_env(argc, argv);

  bench::print_header("Table 1: OT complexity, formulas vs metered traffic");
  std::printf(
      "%-22s %-12s | %12s %14s | %14s %14s | %7s\n", "shape (m,n,o,l)",
      "protocol", "#OT (formula)", "gamma/N", "comm fmla (MB)",
      "comm meas (MB)", "ratio");

  struct Case {
    core::MatMulShape s;
    std::size_t l;
    const char* tuple;
  };
  const Case cases[] = {
      {{16, 64, 1}, 32, "(2,2,2,2)"},
      {{16, 64, 8}, 32, "(2,2,2,2)"},
      {{32, 128, 1}, 64, "(2,2)"},
      {{32, 128, 16}, 64, "(4,4)"},
  };

  for (const auto& c : cases) {
    const auto scheme = nn::FragScheme::parse(c.tuple);
    const std::size_t gamma = scheme.gamma();
    const std::size_t n_values = scheme.max_n();
    char shape[64];
    std::snprintf(shape, sizeof(shape), "(%zu,%zu,%zu,%zu)", c.s.m, c.s.n,
                  c.s.o, c.l);

    // --- ours, mode picked like the paper (one-batch iff o == 1) ---------
    const bool one_batch = c.s.o == 1;
    const double fmla_ot = core::ours_multibatch_ot_count(c.s, gamma);
    const double fmla_comm =
        one_batch
            ? core::ours_onebatch_comm_bits(c.s, gamma, n_values, c.l) / 8
            : core::ours_multibatch_comm_bits(c.s, gamma, n_values, c.l) / 8;
    const auto meas = measure_ours(
        c.s, scheme, c.l,
        one_batch ? core::BatchMode::kOneBatchCot
                  : core::BatchMode::kMultiBatch);
    std::printf("%-22s %-12s | %12.0f %9zu/%-3zu | %14.4f %14.4f | %7.3f\n",
                shape, one_batch ? "ours 1-batch" : "ours M-batch", fmla_ot,
                gamma, n_values, bench::mb(fmla_comm),
                bench::mb(meas.comm_bytes), meas.comm_bytes / fmla_comm);
    if (bench::json_report().enabled())
      bench::json_report().add(std::string("table1/ours/") + shape,
                               {{"comm_formula_mb", bench::mb(fmla_comm)},
                                {"comm_measured_mb", bench::mb(meas.comm_bytes)},
                                {"setup_mb", bench::mb(meas.setup_bytes)}});

    // --- SecureML --------------------------------------------------------
    const double sm_ot = core::secureml_ot_count(c.s, c.l);
    const double sm_comm = core::secureml_comm_bits(c.s, c.l) / 8;
    const auto sm_meas = measure_secureml(c.s, c.l);
    std::printf("%-22s %-12s | %12.0f %13s | %14.4f %14.4f | %7.3f\n", shape,
                "SecureML", sm_ot, "-", bench::mb(sm_comm),
                bench::mb(sm_meas.comm_bytes), sm_meas.comm_bytes / sm_comm);
    if (bench::json_report().enabled())
      bench::json_report().add(
          std::string("table1/secureml/") + shape,
          {{"comm_formula_mb", bench::mb(sm_comm)},
           {"comm_measured_mb", bench::mb(sm_meas.comm_bytes)},
           {"setup_mb", bench::mb(sm_meas.setup_bytes)}});
  }

  std::printf(
      "\n(measured = payload traffic, base-OT setup excluded; ratio is\n"
      " measured/formula — near 1.0 validates Table 1's accounting.\n"
      " SecureML's formula counts RO-packed 128-bit blocks as one 'OT';\n"
      " the implementation runs one COT per weight bit.)\n");
  return 0;
}
