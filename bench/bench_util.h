// Shared helpers for the table-reproduction benchmarks.
//
// Conventions (see DESIGN.md substitution #2):
//  - both parties run as threads over a MemChannel; the reported LAN/WAN
//    times are compute wall-clock plus the NetworkModel's transfer and
//    round-trip costs for the metered traffic;
//  - the OT-extension random oracle runs in fixed-key-AES mode, matching
//    what ABY (the paper's crypto library) uses;
//  - ABNN2_BENCH_FAST=1 shrinks sweeps for quick smoke runs.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "crypto/ro.h"
#include "net/party_runner.h"
#include "obs/obs.h"
#include "simd/dispatch.h"

namespace abnn2::bench {

inline bool fast_mode() {
  const char* v = std::getenv("ABNN2_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

inline void setup_bench_env() { set_ro_mode(RoMode::kFixedKeyAes); }

/// Extracts a `--json <path>` or `--json=<path>` flag from argv, compacting
/// the remaining arguments. Returns the path, or "" when the flag is absent.
inline std::string parse_json_flag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    std::string path;
    int consumed = 0;
    if (a == "--json" && i + 1 < argc) {
      path = argv[i + 1];
      consumed = 2;
    } else if (a.rfind("--json=", 0) == 0) {
      path = std::string(a.substr(7));
      consumed = 1;
    }
    if (consumed > 0) {
      for (int j = i; j + consumed < argc; ++j) argv[j] = argv[j + consumed];
      argc -= consumed;
      return path;
    }
  }
  return {};
}

/// Machine-readable benchmark output. Rows accumulate during the run and are
/// written on program exit in the google-benchmark JSON shape
/// ({"context": ..., "benchmarks": [{"name": ..., <metric>: <number>}]}),
/// so tools/bench_compare.py handles table benches and micro_primitives
/// output uniformly. Disabled (no file written) until set_path() is called.
class JsonReport {
 public:
  ~JsonReport() { write(); }

  void set_path(std::string path) { path_ = std::move(path); }
  bool enabled() const { return !path_.empty(); }

  using Metrics = std::initializer_list<std::pair<const char*, double>>;
  void add(const std::string& name, Metrics metrics) {
    std::string row = "    {\"name\": \"" + name + "\"";
    char buf[64];
    for (const auto& [key, value] : metrics) {
      std::snprintf(buf, sizeof(buf), ", \"%s\": %.9g", key, value);
      row += buf;
    }
    row += "}";
    rows_.push_back(std::move(row));
  }

  void write() {
    if (path_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      path_.clear();
      return;
    }
    std::fprintf(f, "{\n  \"context\": {\"dispatch\": \"%s\"},\n",
                 simd::dispatch_summary().c_str());
    std::fprintf(f, "  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i)
      std::fprintf(f, "%s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    path_.clear();
  }

 private:
  std::string path_;
  std::vector<std::string> rows_;
};

/// Process-wide report; written automatically at exit.
inline JsonReport& json_report() {
  static JsonReport report;
  return report;
}

/// Bench-main entry point: fixed-key-AES RO, dispatch logging under
/// ABNN2_VERBOSE=1, and `--json <path>` support. Flags it understands are
/// removed from argv.
inline void setup_bench_env(int& argc, char** argv) {
  setup_bench_env();
  simd::log_dispatch(argc > 0 ? argv[0] : "bench");
  std::string path = parse_json_flag(argc, argv);
  if (!path.empty()) json_report().set_path(std::move(path));
}

/// Records one protocol-run cost row into the JSON report (no-op when --json
/// was not passed).
inline void json_row(const std::string& name, const struct RunCost& c);

inline double mb(double bytes) { return bytes / 1.0e6; }

/// Installs a fresh obs::Collector for its lifetime (restoring whatever was
/// installed before), so one protocol run's traffic and timing can be
/// attributed to named spans instead of diffed out of raw ChannelStats.
class ScopedCollector {
 public:
  ScopedCollector() : prev_(obs::set_collector(&col_)) {}
  ~ScopedCollector() { obs::set_collector(prev_); }
  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;

  obs::Collector& collector() { return col_; }
  const obs::Collector& collector() const { return col_; }

 private:
  obs::Collector col_;
  obs::Collector* prev_;
};

/// True when a recorded span name equals `base` or is an indexed instance of
/// it ("triplets[3]" matches base "triplets").
inline bool span_matches(const std::string& name, std::string_view base) {
  if (name == base) return true;
  return name.size() > base.size() + 1 && name.compare(0, base.size(), base) == 0 &&
         name[base.size()] == '[';
}

/// Total bytes_sent over all spans (both parties) matching any base name.
/// Summing each endpoint's sent bytes matches total_comm_bytes() accounting.
inline u64 span_bytes_sent(const obs::Collector& col,
                           std::initializer_list<std::string_view> bases) {
  u64 total = 0;
  for (const obs::SpanRecord& s : col.spans()) {
    if (!s.has_traffic) continue;
    for (std::string_view b : bases)
      if (span_matches(s.name, b)) {
        total += s.traffic.bytes_sent;
        break;
      }
  }
  return total;
}

/// Aggregate of one named top-level phase ("offline" / "online") across both
/// parties: wall time is the max over the two parties' phase spans (they run
/// concurrently), traffic is the sum of both endpoints' sent bytes.
struct PhaseCost {
  double seconds = 0;
  double comm_mb = 0;
};

inline PhaseCost phase_cost(const obs::Collector& col, std::string_view phase) {
  PhaseCost p;
  double dur_us[2] = {0, 0};
  for (const obs::SpanRecord& s : col.spans()) {
    if (s.depth != 0 || !span_matches(s.name, phase)) continue;
    if (s.has_traffic) p.comm_mb += mb(static_cast<double>(s.traffic.bytes_sent));
    dur_us[s.party == 1 ? 1 : 0] += s.dur_us;
  }
  p.seconds = std::max(dur_us[0], dur_us[1]) / 1.0e6;
  return p;
}

/// Timing/communication summary of one protocol execution.
struct RunCost {
  double compute_s = 0;
  double comm_mb = 0;
  double lan_s = 0;
  double wan_s = 0;
  u64 rounds = 0;
  // Phase breakdown (filled from a collector when one was installed).
  double offline_s = 0;
  double offline_mb = 0;
  double online_s = 0;
  double online_mb = 0;
};

template <class R0, class R1>
RunCost summarize(const TwoPartyResult<R0, R1>& res, const NetworkModel& wan) {
  RunCost c;
  c.compute_s = res.wall_seconds;
  c.comm_mb = mb(static_cast<double>(res.total_comm_bytes()));
  c.lan_s = res.simulated_seconds(kLan);
  c.wan_s = res.simulated_seconds(wan);
  // Both endpoints observe the same flip for every round trip; the
  // protocol-level round count is the max, not the sum (see channel.h).
  c.rounds = std::max(res.stats0.rounds, res.stats1.rounds);
  return c;
}

template <class R0, class R1>
RunCost summarize(const TwoPartyResult<R0, R1>& res, const NetworkModel& wan,
                  const obs::Collector& col) {
  RunCost c = summarize(res, wan);
  const PhaseCost off = phase_cost(col, "offline");
  const PhaseCost on = phase_cost(col, "online");
  c.offline_s = off.seconds;
  c.offline_mb = off.comm_mb;
  c.online_s = on.seconds;
  c.online_mb = on.comm_mb;
  return c;
}

inline void json_row(const std::string& name, const RunCost& c) {
  if (!json_report().enabled()) return;
  json_report().add(name, {{"compute_s", c.compute_s},
                           {"lan_s", c.lan_s},
                           {"wan_s", c.wan_s},
                           {"comm_mb", c.comm_mb},
                           {"rounds", static_cast<double>(c.rounds)}});
}

inline void print_header(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

}  // namespace abnn2::bench
