// Shared helpers for the table-reproduction benchmarks.
//
// Conventions (see DESIGN.md substitution #2):
//  - both parties run as threads over a MemChannel; the reported LAN/WAN
//    times are compute wall-clock plus the NetworkModel's transfer and
//    round-trip costs for the metered traffic;
//  - the OT-extension random oracle runs in fixed-key-AES mode, matching
//    what ABY (the paper's crypto library) uses;
//  - ABNN2_BENCH_FAST=1 shrinks sweeps for quick smoke runs.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "crypto/ro.h"
#include "net/party_runner.h"

namespace abnn2::bench {

inline bool fast_mode() {
  const char* v = std::getenv("ABNN2_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

inline void setup_bench_env() { set_ro_mode(RoMode::kFixedKeyAes); }

inline double mb(double bytes) { return bytes / 1.0e6; }

/// Timing/communication summary of one protocol execution.
struct RunCost {
  double compute_s = 0;
  double comm_mb = 0;
  double lan_s = 0;
  double wan_s = 0;
  u64 rounds = 0;
};

template <class R0, class R1>
RunCost summarize(const TwoPartyResult<R0, R1>& res, const NetworkModel& wan) {
  RunCost c;
  c.compute_s = res.wall_seconds;
  c.comm_mb = mb(static_cast<double>(res.total_comm_bytes()));
  c.lan_s = res.simulated_seconds(kLan);
  c.wan_s = res.simulated_seconds(wan);
  // Both endpoints observe the same flip for every round trip; the
  // protocol-level round count is the max, not the sum (see channel.h).
  c.rounds = std::max(res.stats0.rounds, res.stats1.rounds);
  return c;
}

inline void print_header(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

}  // namespace abnn2::bench
