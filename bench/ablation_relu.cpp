// Ablation: Algorithm-2 generic ReLU vs the paper's optimized ReLU protocol
// (section 4.2), across the fraction of negative neurons. The optimization
// replaces the reconstruct-and-reshare circuit by a plain share transfer for
// negative neurons, so its advantage should grow with the negative fraction
// while the generic protocol stays flat.
#include <vector>

#include "bench_util.h"
#include "core/nonlinear.h"

namespace abnn2 {
namespace {

using core::ReluMode;

bench::RunCost run_relu(ReluMode mode, std::size_t n, double neg_fraction) {
  const ss::Ring ring(32);
  Prg dprg(Block{1, static_cast<u64>(neg_fraction * 100)});
  std::vector<u64> y0(n), y1(n), z1(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool neg = dprg.next_below(100) <
                     static_cast<u64>(neg_fraction * 100);
    const i64 v = static_cast<i64>(dprg.next_below(1 << 20)) + 1;
    const u64 y = ring.from_signed(neg ? -v : v);
    y1[i] = ring.random(dprg);
    y0[i] = ring.sub(y, y1[i]);
    z1[i] = ring.random(dprg);
  }
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{2, 1});
        core::ReluServer srv(ring, mode);
        return srv.run(ch, y0, prg).size();
      },
      [&](Channel& ch) {
        Prg prg(Block{2, 2});
        core::ReluClient cli(ring, mode);
        cli.run(ch, y1, z1, prg);
        return 0;
      });
  return bench::summarize(res, kWanQuotient);
}

}  // namespace
}  // namespace abnn2

int main(int argc, char** argv) {
  using namespace abnn2;
  bench::setup_bench_env(argc, argv);
  const std::size_t n = bench::fast_mode() ? 2048 : 16384;

  bench::print_header("Ablation: generic (Alg 2) vs optimized ReLU");
  std::printf("%zu neurons, l=32\n", n);
  std::printf("%-10s | %-28s | %-28s\n", "", "generic", "optimized");
  std::printf("%-10s | %8s %9s %8s | %8s %9s %8s\n", "neg frac", "LAN(s)",
              "comm(MB)", "WAN(s)", "LAN(s)", "comm(MB)", "WAN(s)");
  for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto g = run_relu(core::ReluMode::kGeneric, n, f);
    const auto o = run_relu(core::ReluMode::kOptimized, n, f);
    const std::string frac = std::to_string(static_cast<int>(f * 100));
    bench::json_row("relu/generic/neg" + frac, g);
    bench::json_row("relu/optimized/neg" + frac, o);
    std::printf("%-10.2f | %8.3f %9.2f %8.3f | %8.3f %9.2f %8.3f\n", f,
                g.lan_s, g.comm_mb, g.wan_s, o.lan_s, o.comm_mb, o.wan_s);
  }
  std::printf(
      "\n(optimized reveals pre-activation signs, as in the paper; its\n"
      " communication should fall as the negative fraction rises)\n");
  return 0;
}
