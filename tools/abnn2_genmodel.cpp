// Generates a quantized model file for the CLI server.
//
//   abnn2_genmodel <out.mdl> [scheme=s(2,2,2,2)] [ring_bits=32]
//                  [arch=784,128,128,10 | cnn | cnn-pool]
//
// "arch" is a comma-separated list of layer widths (FC stack, the default is
// the paper's Fig-4 network), or one of the CNN presets.
#include <cstdio>
#include <cstring>
#include <sstream>

#include "nn/model_io.h"
#include "simd/dispatch.h"
#include "cli_parse.h"

using namespace abnn2;

int main(int argc, char** argv) {
  simd::log_dispatch(argv[0]);  // prints under ABNN2_VERBOSE=1
  if (argc < 2 || argc > 5) {
    std::fprintf(stderr,
                 "usage: %s <out.mdl> [scheme] [ring_bits] [arch|cnn|cnn-pool]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const std::string spec = argc > 2 ? argv[2] : "s(2,2,2,2)";
  const std::size_t ring_bits =
      argc > 3 ? static_cast<std::size_t>(
                     cli::parse_u64_or_die(argv[3], "ring_bits", 1, 64))
               : 32;
  const std::string arch = argc > 4 ? argv[4] : "784,128,128,10";

  const ss::Ring ring(ring_bits);
  const auto scheme = nn::FragScheme::parse(spec);
  const Block seed = Prg::random_block();

  nn::Model model(ring);
  if (arch == "cnn") {
    model = nn::small_cnn_model(ring, scheme, seed);
  } else if (arch == "cnn-pool") {
    model = nn::pooled_cnn_model(ring, scheme, seed);
  } else {
    std::vector<std::size_t> dims;
    std::stringstream ss(arch);
    std::string item;
    while (std::getline(ss, item, ','))
      dims.push_back(static_cast<std::size_t>(cli::parse_u64_or_die(
          item.c_str(), "layer width", 1, u64{1} << 20)));
    if (dims.size() < 2) {
      std::fprintf(stderr, "error: arch needs at least two layer widths\n");
      return 2;
    }
    model = nn::random_model(ring, scheme, dims, seed);
  }

  nn::save_model(model, path);
  std::printf("wrote %s: %zu layers, %zu weights, scheme %s, ring Z_2^%zu\n",
              path.c_str(), model.layers.size(), model.num_weights(),
              spec.c_str(), ring_bits);
  return 0;
}
