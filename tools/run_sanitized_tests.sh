#!/usr/bin/env bash
# Builds the test suite under AddressSanitizer + UBSan and runs it.
#
#   tools/run_sanitized_tests.sh [sanitizers] [ctest args...]
#
#   tools/run_sanitized_tests.sh                      # address,undefined
#   tools/run_sanitized_tests.sh thread               # TSan instead
#   tools/run_sanitized_tests.sh address -R Chaos     # one suite under ASan
#
# Uses a dedicated build directory (build-sanitize) so the regular build is
# untouched. Benchmarks and examples are skipped to keep the instrumented
# build small.
set -euo pipefail

cd "$(dirname "$0")/.."

SAN="${1:-address,undefined}"
shift || true

BUILD_DIR="build-sanitize"
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DABNN2_SANITIZE="$SAN" \
  -DABNN2_BUILD_BENCH=OFF \
  -DABNN2_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j"$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
