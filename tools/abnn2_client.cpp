// Prediction CLI: connects to abnn2_server and requests secure predictions
// on synthetic inputs (stand-in for reading real feature vectors; the wire
// protocol is identical).
//
//   abnn2_client <host> <port> <ring_bits> [batch=1] [batches=1]
#include <cstdio>
#include <cstdlib>

#include "core/inference.h"
#include "net/socket_channel.h"

using namespace abnn2;

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: %s <host> <port> <ring_bits> [batch] [batches]\n",
                 argv[0]);
    return 2;
  }
  const std::string host = argv[1];
  const u16 port = static_cast<u16>(std::atoi(argv[2]));
  const std::size_t ring_bits = static_cast<std::size_t>(std::atoi(argv[3]));
  const std::size_t batch =
      argc > 4 ? static_cast<std::size_t>(std::atoi(argv[4])) : 1;
  const int batches = argc > 5 ? std::atoi(argv[5]) : 1;

  const ss::Ring ring(ring_bits);
  core::InferenceConfig cfg(ring);
  auto ch = SocketChannel::connect(host, port);
  core::InferenceClient client(cfg);

  for (int b = 0; b < batches; ++b) {
    client.run_offline(*ch, batch);
    const auto& info = client.info();
    const auto x = nn::synthetic_images(info.dims[0], batch, ring_bits / 2,
                                        ring, Prg::random_block());
    const auto logits = client.run_online(*ch, x);
    const auto cls = nn::argmax_logits(ring, logits);
    std::printf("[client] batch %d predictions:", b + 1);
    for (auto c : cls) std::printf(" %zu", c);
    std::printf("\n");
  }
  std::printf("[client] total received %.2f MB\n",
              static_cast<double>(ch->stats().bytes_received) / 1e6);
  return 0;
}
