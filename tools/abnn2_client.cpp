// Prediction CLI: connects to abnn2_server and requests secure predictions
// on synthetic inputs (stand-in for reading real feature vectors; the wire
// protocol is identical).
//
//   abnn2_client <host> <port> <ring_bits> [batch=1] [batches=1]
//       [--recv-timeout-ms N]  per-recv deadline (default 60000;
//                              env ABNN2_RECV_TIMEOUT_MS, flag wins)
//
// Transient transport failures are retried: the client drops its session
// state, reconnects with backoff, and the handshake resumes the interrupted
// batch on the offline material both sides retained. A BUSY rejection from
// a loaded server is retried with the server's retry-after hint plus jitter
// (on a separate, more generous budget than transport failures — a busy
// server is healthy, just full). Protocol errors (version/ring/model
// mismatch, corrupted frames that cannot be trusted) are fatal.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <thread>

#include "core/inference.h"
#include "net/framed_channel.h"
#include "net/socket_channel.h"
#include "obs/obs.h"
#include "simd/dispatch.h"
#include "cli_parse.h"

using namespace abnn2;

int main(int argc, char** argv) {
  obs::init_trace_from_env();
  simd::log_dispatch(argv[0]);  // prints under ABNN2_VERBOSE=1
  cli::ArgParser args(argc, argv, {"--recv-timeout-ms"});
  if (args.n_positional() < 3 || args.n_positional() > 5) {
    std::fprintf(stderr,
                 "usage: %s <host> <port> <ring_bits> [batch] [batches] "
                 "[--recv-timeout-ms N]\n",
                 argv[0]);
    return 2;
  }
  const std::string host = args.positional(0);
  const u16 port = cli::parse_port_or_die(args.positional(1).c_str());
  const std::size_t ring_bits = static_cast<std::size_t>(cli::parse_u64_or_die(
      args.positional(2).c_str(), "ring_bits", 1, 64));
  const std::size_t batch =
      args.n_positional() > 3
          ? static_cast<std::size_t>(cli::parse_u64_or_die(
                args.positional(3).c_str(), "batch", 1, 1 << 20))
          : 1;
  const int batches =
      args.n_positional() > 4
          ? static_cast<int>(cli::parse_u64_or_die(args.positional(4).c_str(),
                                                   "batches", 1, 1'000'000))
          : 1;
  u64 recv_timeout =
      cli::env_u64("ABNN2_RECV_TIMEOUT_MS", 60'000, 100, 3'600'000);
  recv_timeout = args.get_u64("--recv-timeout-ms", recv_timeout, 100,
                              3'600'000);  // flag > env > default

  const ss::Ring ring(ring_bits);
  core::InferenceConfig cfg(ring);
  core::InferenceClient client(cfg);

  SocketOptions opts;
  opts.connect_timeout_ms = 30'000;
  opts.recv_timeout_ms = static_cast<int>(recv_timeout);
  constexpr int kMaxAttempts = 5;       // transport failures
  constexpr int kMaxBusyRetries = 100;  // BUSY is expected under load

  std::mt19937_64 jitter(0x6A17'7E12);  // deterministic backoff jitter
  const Block input_seed = Prg::random_block();
  int done = 0;
  int attempts = 0;
  int busy_retries = 0;
  double mb_received = 0;
  while (done < batches) {
    try {
      auto sock = SocketChannel::connect(host, port, opts);
      FramedChannel ch(*sock);
      while (done < batches) {
        client.run_offline(ch, batch);
        if (client.resumed())
          std::printf("[client] batch %d resumed (offline phase skipped)\n",
                      done + 1);
        const auto& info = client.info();
        const auto x = nn::synthetic_images(info.dims[0], batch, ring_bits / 2,
                                            ring, input_seed);
        const auto logits = client.run_online(ch, x);
        const auto cls = nn::argmax_logits(ring, logits);
        std::printf("[client] batch %d predictions:", done + 1);
        for (auto c : cls) std::printf(" %zu", c);
        std::printf("\n");
        ++done;
        attempts = 0;
        busy_retries = 0;
        mb_received = static_cast<double>(ch.stats().bytes_received) / 1e6;
      }
    } catch (const core::ServerBusy& e) {
      if (++busy_retries >= kMaxBusyRetries) {
        std::fprintf(stderr, "[client] server still busy after %d retries\n",
                     busy_retries);
        return 1;
      }
      const u64 sleep_ms = e.retry_after_ms() + jitter() % 50;
      std::fprintf(stderr,
                   "[client] server busy, retrying in %llu ms (attempt %d)\n",
                   static_cast<unsigned long long>(sleep_ms), busy_retries);
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    } catch (const ProtocolError& e) {
      std::fprintf(stderr, "[client] protocol error (fatal): %s\n", e.what());
      return 1;
    } catch (const ChannelError& e) {
      if (++attempts >= kMaxAttempts) {
        std::fprintf(stderr, "[client] giving up after %d attempts: %s\n",
                     attempts, e.what());
        return 1;
      }
      std::fprintf(stderr, "[client] connection lost (%s), reconnecting...\n",
                   e.what());
      client.reset_session();
    }
  }
  std::printf("[client] total received %.2f MB (last connection)\n",
              mb_received);
  return 0;
}
