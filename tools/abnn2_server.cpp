// Model-serving CLI: loads a model file and serves secure prediction batches
// over framed TCP sessions.
//
//   abnn2_server <model.mdl> <port> [batches=1]
//
// Transport failures (client crash, cut connection, corrupted frame) do not
// kill the server: it logs the error, drops the per-connection session state,
// and re-accepts. Offline triplet material for an interrupted batch is
// retained, so a reconnecting client resumes at the online phase instead of
// paying the offline cost again.
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "core/inference.h"
#include "net/framed_channel.h"
#include "net/socket_channel.h"
#include "nn/model_io.h"
#include "obs/obs.h"
#include "simd/dispatch.h"
#include "cli_parse.h"

using namespace abnn2;

int main(int argc, char** argv) {
  obs::init_trace_from_env();
  simd::log_dispatch(argv[0]);  // prints under ABNN2_VERBOSE=1
  if (argc < 3 || argc > 4) {
    std::fprintf(stderr, "usage: %s <model.mdl> <port> [batches]\n", argv[0]);
    return 2;
  }
  const u16 port = cli::parse_port_or_die(argv[2]);
  const int batches = argc > 3 ? static_cast<int>(cli::parse_u64_or_die(
                                     argv[3], "batches", 1, 1'000'000))
                               : 1;
  nn::Model model{ss::Ring(1)};
  try {
    model = nn::load_model(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  core::InferenceConfig cfg(model.ring);
  core::InferenceServer server(model, cfg);
  std::printf("[server] model: %zu layers, %zu weights; listening on :%u\n",
              model.layers.size(), model.num_weights(), port);

  std::optional<SocketListener> listener;
  try {
    listener.emplace(port);
  } catch (const ChannelError& e) {
    std::fprintf(stderr, "error: cannot listen on port %u: %s\n", port,
                 e.what());
    return 2;
  }
  SocketOptions opts;
  opts.recv_timeout_ms = 60'000;  // a silent peer is a dead peer

  int served = 0;
  while (served < batches) {
    try {
      auto sock = listener->accept(opts);
      FramedChannel ch(*sock);
      while (served < batches) {
        server.run_offline(ch);
        server.run_online(ch);
        ++served;
        std::printf("[server] batch %d/%d served (%.2f MB sent)\n", served,
                    batches, static_cast<double>(ch.stats().bytes_sent) / 1e6);
      }
    } catch (const ProtocolError& e) {
      // Corrupt frames / mismatched peers are not retryable on the same
      // connection; drop it and wait for a well-behaved client.
      std::fprintf(stderr, "[server] protocol error: %s\n", e.what());
      server.reset_session();
    } catch (const ChannelError& e) {
      std::fprintf(stderr, "[server] connection lost: %s\n", e.what());
      server.reset_session();
    }
  }
  return 0;
}
