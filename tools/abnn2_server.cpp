// Model-serving CLI: loads a model file and serves one secure prediction
// connection.
//
//   abnn2_server <model.mdl> <port> [batches=1]
#include <cstdio>
#include <cstdlib>

#include "core/inference.h"
#include "net/socket_channel.h"
#include "nn/model_io.h"

using namespace abnn2;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <model.mdl> <port> [batches]\n", argv[0]);
    return 2;
  }
  const nn::Model model = nn::load_model(argv[1]);
  const u16 port = static_cast<u16>(std::atoi(argv[2]));
  const int batches = argc > 3 ? std::atoi(argv[3]) : 1;

  core::InferenceConfig cfg(model.ring);
  std::printf("[server] model: %zu layers, %zu weights; listening on :%u\n",
              model.layers.size(), model.num_weights(), port);
  auto ch = SocketChannel::listen(port);
  core::InferenceServer server(model, cfg);
  for (int b = 0; b < batches; ++b) {
    server.run_offline(*ch);
    server.run_online(*ch);
    std::printf("[server] batch %d served (%.2f MB sent so far)\n", b + 1,
                static_cast<double>(ch->stats().bytes_sent) / 1e6);
  }
  return 0;
}
