// Model-serving CLI: loads a model file and serves secure prediction batches
// over framed TCP sessions, concurrently, under the serve::Supervisor.
//
//   abnn2_server <model.mdl> <port> [batches]
//       [--max-sessions N]     concurrent session cap (default 8)
//       [--recv-timeout-ms N]  per-recv deadline (default 60000;
//                              env ABNN2_RECV_TIMEOUT_MS, flag wins)
//       [--watchdog-ms N]      reap sessions with no frame progress in N ms
//       [--drain-ms N]         in-flight budget for graceful shutdown
//       [--busy-retry-ms N]    retry-after hint in BUSY rejections
//
// [batches] bounds the total batches served across all sessions; 0 (the
// default) serves until SIGTERM/SIGINT. Either way shutdown is a graceful
// drain: stop accepting, finish in-flight batches under the drain deadline,
// log a checkpoint of retained offline material, exit 0.
//
// Per-session faults (client crash, cut connection, corrupted frame,
// watchdog reap) never take down the service: the session is torn down, its
// completed offline material is retained, and the client resumes at the
// online phase on reconnect.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <thread>

#include "nn/model_io.h"
#include "obs/obs.h"
#include "serve/supervisor.h"
#include "simd/dispatch.h"
#include "cli_parse.h"

using namespace abnn2;

namespace {
volatile std::sig_atomic_t g_signal = 0;
void on_signal(int sig) { g_signal = sig; }
}  // namespace

int main(int argc, char** argv) {
  obs::init_trace_from_env();
  simd::log_dispatch(argv[0]);  // prints under ABNN2_VERBOSE=1
  cli::ArgParser args(argc, argv,
                      {"--max-sessions", "--recv-timeout-ms", "--watchdog-ms",
                       "--drain-ms", "--busy-retry-ms", "--verbose"});
  if (args.n_positional() < 2 || args.n_positional() > 3) {
    std::fprintf(stderr,
                 "usage: %s <model.mdl> <port> [batches] [--max-sessions N] "
                 "[--recv-timeout-ms N] [--watchdog-ms N] [--drain-ms N] "
                 "[--busy-retry-ms N] [--verbose 1]\n",
                 argv[0]);
    return 2;
  }
  const u16 port = cli::parse_port_or_die(args.positional(1).c_str());
  const u64 batches =
      args.n_positional() > 2
          ? cli::parse_u64_or_die(args.positional(2).c_str(), "batches", 0,
                                  1'000'000)
          : 0;  // 0 = serve until SIGTERM/SIGINT

  serve::ServeOptions sopts;
  sopts.port = port;
  sopts.max_sessions = static_cast<std::size_t>(
      args.get_u64("--max-sessions", 8, 1, 256));
  u64 recv_timeout =
      cli::env_u64("ABNN2_RECV_TIMEOUT_MS", 60'000, 100, 3'600'000);
  recv_timeout = args.get_u64("--recv-timeout-ms", recv_timeout, 100,
                              3'600'000);  // flag > env > default
  sopts.recv_timeout_ms = static_cast<int>(recv_timeout);
  sopts.watchdog_ms = static_cast<int>(
      args.get_u64("--watchdog-ms", 30'000, 100, 3'600'000));
  sopts.drain_deadline_ms =
      static_cast<int>(args.get_u64("--drain-ms", 10'000, 0, 3'600'000));
  sopts.busy_retry_ms = args.get_u64("--busy-retry-ms", 200, 1, 60'000);
  sopts.verbose = args.get_u64("--verbose", 0, 0, 1) != 0;

  serve::ModelRegistry registry;
  ss::Ring ring(1);
  std::size_t n_layers = 0, n_weights = 0;
  try {
    nn::Model model = nn::load_model(args.positional(0));
    ring = model.ring;
    n_layers = model.layers.size();
    n_weights = model.num_weights();
    registry.add(std::move(model));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  std::optional<serve::Supervisor> supervisor;
  try {
    supervisor.emplace(std::move(registry), core::InferenceConfig(ring),
                       sopts);
  } catch (const ChannelError& e) {
    std::fprintf(stderr, "error: cannot listen on port %u: %s\n", port,
                 e.what());
    return 2;
  }
  std::printf(
      "[server] model: %zu layers, %zu weights; serving on :%u "
      "(max %zu sessions, watchdog %d ms, recv timeout %d ms)\n",
      n_layers, n_weights, supervisor->port(), sopts.max_sessions,
      sopts.watchdog_ms, sopts.recv_timeout_ms);
  std::fflush(stdout);

  u64 last_logged = 0;
  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const auto st = supervisor->stats();
    if (st.batches_served != last_logged) {
      last_logged = st.batches_served;
      std::printf("[server] %llu batches served (%llu active, %llu resumed, "
                  "%llu reaped, %llu busy-rejected)\n",
                  static_cast<unsigned long long>(st.batches_served),
                  static_cast<unsigned long long>(st.active_sessions),
                  static_cast<unsigned long long>(st.resumed),
                  static_cast<unsigned long long>(st.reaped),
                  static_cast<unsigned long long>(st.rejected_busy));
      std::fflush(stdout);
    }
    if (batches != 0 && st.batches_served >= batches) break;
  }

  if (g_signal != 0)
    std::fprintf(stderr, "[server] signal %d — draining\n",
                 static_cast<int>(g_signal));
  supervisor->drain();  // logs the retained-material checkpoint
  const auto st = supervisor->stats();
  std::printf("[server] done: %llu batches served\n",
              static_cast<unsigned long long>(st.batches_served));
  return 0;
}
