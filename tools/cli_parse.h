// Strict argv parsing for the serving CLIs. atoi() silently maps garbage to
// 0 — "abnn2_server m.mdl http" would listen on an ephemeral port instead of
// failing — so every numeric argument goes through these helpers, which
// reject non-numeric input, trailing junk, and out-of-range values with a
// usage error.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/defines.h"

namespace abnn2::cli {

/// Parses a decimal u64 in [min, max]; exits with a usage error otherwise.
inline u64 parse_u64_or_die(const char* arg, const char* what, u64 min,
                            u64 max) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0' || errno == ERANGE ||
      std::strchr(arg, '-') != nullptr) {
    std::fprintf(stderr, "error: %s: '%s' is not a valid number\n", what, arg);
    std::exit(2);
  }
  if (v < min || v > max) {
    std::fprintf(stderr, "error: %s: %llu out of range [%llu, %llu]\n", what,
                 v, static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(max));
    std::exit(2);
  }
  return static_cast<u64>(v);
}

inline u16 parse_port_or_die(const char* arg) {
  return static_cast<u16>(parse_u64_or_die(arg, "port", 1, 65535));
}

}  // namespace abnn2::cli
