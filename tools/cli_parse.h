// Strict argv parsing for the serving CLIs. atoi() silently maps garbage to
// 0 — "abnn2_server m.mdl http" would listen on an ephemeral port instead of
// failing — so every numeric argument goes through these helpers, which
// reject non-numeric input, trailing junk, and out-of-range values with a
// usage error.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "common/defines.h"

namespace abnn2::cli {

/// Parses a decimal u64 in [min, max]; exits with a usage error otherwise.
inline u64 parse_u64_or_die(const char* arg, const char* what, u64 min,
                            u64 max) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0' || errno == ERANGE ||
      std::strchr(arg, '-') != nullptr) {
    std::fprintf(stderr, "error: %s: '%s' is not a valid number\n", what, arg);
    std::exit(2);
  }
  if (v < min || v > max) {
    std::fprintf(stderr, "error: %s: %llu out of range [%llu, %llu]\n", what,
                 v, static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(max));
    std::exit(2);
  }
  return static_cast<u64>(v);
}

inline u16 parse_port_or_die(const char* arg) {
  return static_cast<u16>(parse_u64_or_die(arg, "port", 1, 65535));
}

/// Numeric environment override, same strictness as parse_u64_or_die but
/// non-fatal-silent on absence: unset/empty returns `def`, garbage or
/// out-of-range values are a hard usage error (a typo'd deployment variable
/// must not silently fall back to the default).
inline u64 env_u64(const char* name, u64 def, u64 min, u64 max) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return parse_u64_or_die(v, name, min, max);
}

/// Splits argv into positionals and `--name value` / `--name=value` flags.
/// Unknown flags are a usage error (exit 2): a misspelled --recv-timout-ms
/// must not be silently ignored on a server that will then hang for the
/// default 60 s. Callers declare the accepted flag names up front.
class ArgParser {
 public:
  ArgParser(int argc, char** argv, std::initializer_list<const char*> known) {
    std::vector<std::string> names(known.begin(), known.end());
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positionals_.push_back(arg);
        continue;
      }
      std::string name = arg, value;
      bool have_value = false;
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        name = arg.substr(0, eq);
        value = arg.substr(eq + 1);
        have_value = true;
      }
      bool ok = false;
      for (const auto& k : names) ok = ok || k == name;
      if (!ok) {
        std::fprintf(stderr, "error: unknown flag '%s'\n", name.c_str());
        std::exit(2);
      }
      if (!have_value) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "error: flag '%s' needs a value\n",
                       name.c_str());
          std::exit(2);
        }
        value = argv[++i];
      }
      flags_[name] = value;
    }
  }

  std::size_t n_positional() const { return positionals_.size(); }
  const std::string& positional(std::size_t i) const { return positionals_[i]; }

  bool has(const std::string& name) const { return flags_.count(name) != 0; }

  u64 get_u64(const std::string& name, u64 def, u64 min, u64 max) const {
    const auto it = flags_.find(name);
    if (it == flags_.end()) return def;
    return parse_u64_or_die(it->second.c_str(), name.c_str(), min, max);
  }

  std::string get_str(const std::string& name, const std::string& def) const {
    const auto it = flags_.find(name);
    return it == flags_.end() ? def : it->second;
  }

 private:
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> flags_;
};

}  // namespace abnn2::cli
