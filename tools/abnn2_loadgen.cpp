// Concurrent chaos load generator for abnn2_server.
//
//   abnn2_loadgen <model.mdl> <host> <port>
//       [--clients N=8]      concurrent client threads
//       [--batches N=2]      prediction batches per client
//       [--batch N=1]        images per batch
//       [--faults kill=0.1,hang=0.05,corrupt=0.05]
//                            per-batch fault probabilities: kill cuts the
//                            connection mid-online-phase, hang stalls the
//                            send stream past the server watchdog, corrupt
//                            flips one bit in flight (CRC-detected)
//       [--hang-ms N=1500]   stall length for hang faults (set the server
//                            watchdog below this so hangs are reaped)
//       [--seed N=1]         base seed; the whole run replays from it
//       [--max-attempts N=8] reconnects per batch before giving up
//       [--recv-timeout-ms N] per-recv deadline (env ABNN2_RECV_TIMEOUT_MS)
//       [--json path]        write the report as JSON
//
// Every client pins the model digest and checks every batch's logits
// against the local plaintext reference — the exit code is 0 only if every
// batch completed with byte-identical logits. Faulted batches must recover
// via reconnect-and-resume; the report counts resumes, BUSY rejections and
// per-kind faults, and gives p50/p99/mean/max end-to-end batch latency
// (including retries).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/inference.h"
#include "net/fault_channel.h"
#include "net/framed_channel.h"
#include "net/socket_channel.h"
#include "nn/model_io.h"
#include "obs/obs.h"
#include "simd/dispatch.h"
#include "cli_parse.h"

using namespace abnn2;

namespace {

u64 splitmix(u64& s) {
  u64 z = (s += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

struct FaultMix {
  double kill = 0, hang = 0, corrupt = 0;
};

/// Parses "kill=0.1,hang=0.05,corrupt=0.05" (any subset, any order).
FaultMix parse_faults(const std::string& spec) {
  FaultMix mix;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    auto comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    const auto eq = part.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "error: bad --faults entry '%s'\n", part.c_str());
      std::exit(2);
    }
    const std::string name = part.substr(0, eq);
    char* end = nullptr;
    const double p = std::strtod(part.c_str() + eq + 1, &end);
    if (end != part.c_str() + part.size() || p < 0 || p > 1) {
      std::fprintf(stderr, "error: bad --faults probability in '%s'\n",
                   part.c_str());
      std::exit(2);
    }
    if (name == "kill") mix.kill = p;
    else if (name == "hang") mix.hang = p;
    else if (name == "corrupt") mix.corrupt = p;
    else {
      std::fprintf(stderr, "error: unknown fault kind '%s'\n", name.c_str());
      std::exit(2);
    }
    pos = comma + 1;
  }
  if (mix.kill + mix.hang + mix.corrupt > 1.0) {
    std::fprintf(stderr, "error: fault probabilities sum past 1.0\n");
    std::exit(2);
  }
  return mix;
}

struct ClientReport {
  u64 completed = 0, failed = 0, wrong = 0, resumes = 0, busy = 0;
  u64 faults_kill = 0, faults_hang = 0, faults_corrupt = 0;
  std::vector<double> latencies_ms;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  obs::init_trace_from_env();
  simd::log_dispatch(argv[0]);
  cli::ArgParser args(argc, argv,
                      {"--clients", "--batches", "--batch", "--faults",
                       "--hang-ms", "--seed", "--max-attempts",
                       "--recv-timeout-ms", "--json"});
  if (args.n_positional() != 3) {
    std::fprintf(
        stderr,
        "usage: %s <model.mdl> <host> <port> [--clients N] [--batches N] "
        "[--batch N] [--faults kill=P,hang=P,corrupt=P] [--hang-ms N] "
        "[--seed N] [--max-attempts N] [--recv-timeout-ms N] [--json path]\n",
        argv[0]);
    return 2;
  }
  const std::string host = args.positional(1);
  const u16 port = cli::parse_port_or_die(args.positional(2).c_str());
  const std::size_t n_clients =
      static_cast<std::size_t>(args.get_u64("--clients", 8, 1, 256));
  const std::size_t n_batches =
      static_cast<std::size_t>(args.get_u64("--batches", 2, 1, 10'000));
  const std::size_t batch =
      static_cast<std::size_t>(args.get_u64("--batch", 1, 1, 1 << 12));
  const FaultMix mix = parse_faults(args.get_str("--faults", ""));
  const u32 hang_ms =
      static_cast<u32>(args.get_u64("--hang-ms", 1'500, 1, 600'000));
  const u64 base_seed = args.get_u64("--seed", 1, 0, ~u64{0} >> 1);
  const int max_attempts =
      static_cast<int>(args.get_u64("--max-attempts", 8, 1, 1'000));
  u64 recv_timeout =
      cli::env_u64("ABNN2_RECV_TIMEOUT_MS", 60'000, 100, 3'600'000);
  recv_timeout =
      args.get_u64("--recv-timeout-ms", recv_timeout, 100, 3'600'000);
  const std::string json_path = args.get_str("--json", "");

  nn::Model model{ss::Ring(1)};
  try {
    model = nn::load_model(args.positional(0));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const ss::Ring ring = model.ring;
  const auto digest = nn::model_digest(model);

  core::InferenceConfig cfg(ring);
  cfg.expected_model_digest = digest;  // wrong server model = hard failure

  SocketOptions opts;
  opts.connect_timeout_ms = 30'000;
  opts.recv_timeout_ms = static_cast<int>(recv_timeout);

  // ---- calibration -------------------------------------------------------
  // One clean batch measures the client's send volume through the fault
  // layer for the offline and online phases; fault trigger offsets are
  // placed relative to these (message sizes depend only on shapes, so every
  // client sees the same stream layout).
  u64 offline_sent = 0, total_sent = 0;
  try {
    core::InferenceClient probe(cfg);
    auto sock = SocketChannel::connect(host, port, opts);
    FaultInjectingChannel fc(*sock, FaultPlan{});
    FramedChannel ch(fc);
    probe.run_offline(ch, batch);
    offline_sent = fc.stats().bytes_sent;
    const auto x =
        nn::synthetic_images(probe.info().dims[0], batch, ring.bits() / 2,
                             ring, Block{base_seed, 0xCA1B});
    (void)probe.run_online(ch, x);
    total_sent = fc.stats().bytes_sent;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: calibration batch failed: %s\n", e.what());
    return 2;
  }
  const u64 online_sent = total_sent > offline_sent ? total_sent - offline_sent
                                                    : 1;
  std::printf("[loadgen] calibrated: offline %llu B, online %llu B sent; "
              "%zu clients x %zu batches (faults kill=%.2f hang=%.2f "
              "corrupt=%.2f, seed %llu)\n",
              static_cast<unsigned long long>(offline_sent),
              static_cast<unsigned long long>(online_sent), n_clients,
              n_batches, mix.kill, mix.hang, mix.corrupt,
              static_cast<unsigned long long>(base_seed));
  std::fflush(stdout);

  // ---- concurrent clients ------------------------------------------------
  std::vector<ClientReport> reports(n_clients);
  std::vector<std::thread> threads;
  threads.reserve(n_clients);
  for (std::size_t c = 0; c < n_clients; ++c) {
    threads.emplace_back([&, c] {
      ClientReport& rep = reports[c];
      core::InferenceClient client(cfg);  // one session across reconnects
      const std::size_t in_dim = model.input_dim();
      for (std::size_t b = 0; b < n_batches; ++b) {
        const auto x = nn::synthetic_images(
            in_dim, batch, ring.bits() / 2, ring,
            Block{base_seed, c * 100'000 + b + 1});
        const nn::MatU64 want = nn::infer_plain(model, x);

        // Deterministic per-(client, batch) fault roll.
        u64 s = base_seed ^ (c * 0x9E3779B97F4A7C15ULL) ^
                ((b + 1) * 0xBF58476D1CE4E5B9ULL);
        const double roll =
            static_cast<double>(splitmix(s) % 1'000'000) / 1e6;
        FaultPlan plan;  // kNone by default
        if (roll < mix.kill) {
          plan.kind = FaultPlan::Kind::kCutSend;
          plan.trigger_offset = offline_sent + splitmix(s) % online_sent;
          ++rep.faults_kill;
        } else if (roll < mix.kill + mix.hang) {
          plan.kind = FaultPlan::Kind::kDelaySend;
          plan.trigger_offset = offline_sent + splitmix(s) % online_sent;
          plan.delay_ms = hang_ms;
          ++rep.faults_hang;
        } else if (roll < mix.kill + mix.hang + mix.corrupt) {
          plan.kind = FaultPlan::Kind::kCorruptSend;
          plan.trigger_offset = splitmix(s) % total_sent;
          plan.bit_in_byte = static_cast<u32>(splitmix(s) % 8);
          ++rep.faults_corrupt;
        }

        const auto t0 = std::chrono::steady_clock::now();
        bool done = false;
        int attempts = 0;
        u64 busy_waits = 0;
        while (!done) {
          try {
            auto sock = SocketChannel::connect(host, port, opts);
            FaultInjectingChannel fc(*sock, plan);
            FramedChannel ch(fc);
            client.run_offline(ch, batch);
            if (client.resumed()) ++rep.resumes;
            const auto logits = client.run_online(ch, x);
            if (logits == want) {
              ++rep.completed;
            } else {
              ++rep.wrong;
              std::fprintf(stderr,
                           "[loadgen] client %zu batch %zu: WRONG LOGITS\n",
                           c, b);
            }
            done = true;
          } catch (const core::ServerBusy& e) {
            ++rep.busy;
            if (++busy_waits > 1'000) {  // generous: BUSY means healthy+full
              ++rep.failed;
              std::fprintf(stderr,
                           "[loadgen] client %zu batch %zu: server busy "
                           "beyond any reasonable wait\n",
                           c, b);
              done = true;
              break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(
                e.retry_after_ms() + splitmix(s) % 50));
          } catch (const std::exception& e) {
            // ChannelError (cut/hang/reap) or ProtocolError (corrupt frame
            // detected): drop connection state, keep offline material, and
            // retry the same batch clean — a resume if material survived.
            client.reset_session();
            plan = FaultPlan{};
            if (++attempts >= max_attempts) {
              ++rep.failed;
              std::fprintf(stderr,
                           "[loadgen] client %zu batch %zu: giving up after "
                           "%d attempts (%s)\n",
                           c, b, attempts, e.what());
              done = true;
            }
          }
        }
        rep.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count());
      }
    });
  }
  for (auto& t : threads) t.join();

  // ---- report ------------------------------------------------------------
  ClientReport total;
  std::vector<double> lat;
  for (const auto& r : reports) {
    total.completed += r.completed;
    total.failed += r.failed;
    total.wrong += r.wrong;
    total.resumes += r.resumes;
    total.busy += r.busy;
    total.faults_kill += r.faults_kill;
    total.faults_hang += r.faults_hang;
    total.faults_corrupt += r.faults_corrupt;
    lat.insert(lat.end(), r.latencies_ms.begin(), r.latencies_ms.end());
  }
  std::sort(lat.begin(), lat.end());
  double mean = 0;
  for (double v : lat) mean += v;
  if (!lat.empty()) mean /= static_cast<double>(lat.size());
  const double p50 = percentile(lat, 0.50), p99 = percentile(lat, 0.99);
  const double lmax = lat.empty() ? 0 : lat.back();

  std::printf(
      "[loadgen] %llu/%zu batches completed, %llu failed, %llu wrong; "
      "%llu resumes, %llu busy rejections; faults kill=%llu hang=%llu "
      "corrupt=%llu\n",
      static_cast<unsigned long long>(total.completed),
      n_clients * n_batches, static_cast<unsigned long long>(total.failed),
      static_cast<unsigned long long>(total.wrong),
      static_cast<unsigned long long>(total.resumes),
      static_cast<unsigned long long>(total.busy),
      static_cast<unsigned long long>(total.faults_kill),
      static_cast<unsigned long long>(total.faults_hang),
      static_cast<unsigned long long>(total.faults_corrupt));
  std::printf("[loadgen] latency ms: p50=%.1f p99=%.1f mean=%.1f max=%.1f\n",
              p50, p99, mean, lmax);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fprintf(
        f,
        "{\"clients\": %zu, \"batches\": %zu, \"batch\": %zu, "
        "\"completed\": %llu, \"failed\": %llu, \"wrong_logits\": %llu, "
        "\"resumes\": %llu, \"busy_rejections\": %llu, "
        "\"faults\": {\"kill\": %llu, \"hang\": %llu, \"corrupt\": %llu}, "
        "\"latency_ms\": {\"p50\": %.3f, \"p99\": %.3f, \"mean\": %.3f, "
        "\"max\": %.3f}}\n",
        n_clients, n_batches, batch,
        static_cast<unsigned long long>(total.completed),
        static_cast<unsigned long long>(total.failed),
        static_cast<unsigned long long>(total.wrong),
        static_cast<unsigned long long>(total.resumes),
        static_cast<unsigned long long>(total.busy),
        static_cast<unsigned long long>(total.faults_kill),
        static_cast<unsigned long long>(total.faults_hang),
        static_cast<unsigned long long>(total.faults_corrupt), p50, p99, mean,
        lmax);
    std::fclose(f);
    std::printf("[loadgen] report written to %s\n", json_path.c_str());
  }

  const bool all_done = total.completed == n_clients * n_batches;
  return (total.wrong == 0 && total.failed == 0 && all_done) ? 0 : 1;
}
