#!/usr/bin/env python3
"""Compare two benchmark JSON files and flag regressions.

Both the table benches (--json via bench::JsonReport) and micro_primitives
(google-benchmark's JSON reporter) emit the same top-level shape:

    {"context": {...}, "benchmarks": [{"name": ..., <metric>: <number>, ...}]}

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]
                           [--metrics m1,m2,...]

Rows are matched by "name"; every numeric metric present in both rows (or
only those named by --metrics) is compared. Metrics where HIGHER is better
(throughput: *_per_second) regress when current < baseline; everything else
(times, bytes, rounds) regresses when current > baseline. A change beyond
--threshold percent (default 10) is a regression; the exit code is the
number of regressed metrics.

Book-keeping keys (iterations, repetition indices, ...) are skipped.
"""

import argparse
import json
import sys

SKIP_KEYS = {
    "name", "run_name", "run_type", "family_index",
    "per_family_instance_index", "repetitions", "repetition_index",
    "threads", "iterations", "time_unit",
}

HIGHER_IS_BETTER_SUFFIXES = ("_per_second",)


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("benchmarks", []):
        name = row.get("name")
        if name is None:
            continue
        rows[name] = {
            k: v for k, v in row.items()
            if k not in SKIP_KEYS and isinstance(v, (int, float))
        }
    return rows


def higher_is_better(metric):
    return metric.endswith(HIGHER_IS_BETTER_SUFFIXES)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    ap.add_argument("--metrics", default="",
                    help="comma-separated metric allowlist (default: all "
                         "numeric metrics shared by both rows)")
    args = ap.parse_args()

    base = load_rows(args.baseline)
    cur = load_rows(args.current)
    allow = {m for m in args.metrics.split(",") if m} or None

    shared = sorted(set(base) & set(cur))
    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))
    if not shared:
        print("bench_compare: no benchmark names in common", file=sys.stderr)
        return 2

    regressions = 0
    print(f"{'benchmark/metric':58s} {'baseline':>14s} {'current':>14s} "
          f"{'delta':>9s}")
    for name in shared:
        metrics = sorted(set(base[name]) & set(cur[name]))
        if allow is not None:
            metrics = [m for m in metrics if m in allow]
        for m in metrics:
            b, c = base[name][m], cur[name][m]
            if b == 0:
                pct = 0.0 if c == 0 else float("inf")
            else:
                pct = (c - b) / abs(b) * 100.0
            better = pct >= 0 if higher_is_better(m) else pct <= 0
            regressed = not better and abs(pct) > args.threshold
            if regressed:
                regressions += 1
            flag = " REGRESSED" if regressed else ""
            print(f"{name + '/' + m:58s} {b:14.6g} {c:14.6g} "
                  f"{pct:+8.1f}%{flag}")

    for name in only_base:
        print(f"{name:58s} (missing from current)")
    for name in only_cur:
        print(f"{name:58s} (new, no baseline)")

    if regressions:
        print(f"\n{regressions} metric(s) regressed beyond "
              f"{args.threshold:g}%", file=sys.stderr)
    else:
        print(f"\nno regressions beyond {args.threshold:g}%")
    return min(regressions, 125)


if __name__ == "__main__":
    sys.exit(main())
