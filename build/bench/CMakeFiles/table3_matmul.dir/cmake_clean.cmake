file(REMOVE_RECURSE
  "CMakeFiles/table3_matmul.dir/table3_matmul.cpp.o"
  "CMakeFiles/table3_matmul.dir/table3_matmul.cpp.o.d"
  "table3_matmul"
  "table3_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
