# Empty dependencies file for table3_matmul.
# This may be replaced when dependencies are built.
