file(REMOVE_RECURSE
  "CMakeFiles/ablation_relu.dir/ablation_relu.cpp.o"
  "CMakeFiles/ablation_relu.dir/ablation_relu.cpp.o.d"
  "ablation_relu"
  "ablation_relu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_relu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
