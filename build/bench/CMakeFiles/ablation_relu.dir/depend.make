# Empty dependencies file for ablation_relu.
# This may be replaced when dependencies are built.
