file(REMOVE_RECURSE
  "CMakeFiles/table4_minionn.dir/table4_minionn.cpp.o"
  "CMakeFiles/table4_minionn.dir/table4_minionn.cpp.o.d"
  "table4_minionn"
  "table4_minionn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_minionn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
