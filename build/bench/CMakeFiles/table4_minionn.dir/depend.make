# Empty dependencies file for table4_minionn.
# This may be replaced when dependencies are built.
