file(REMOVE_RECURSE
  "CMakeFiles/table5_quotient.dir/table5_quotient.cpp.o"
  "CMakeFiles/table5_quotient.dir/table5_quotient.cpp.o.d"
  "table5_quotient"
  "table5_quotient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_quotient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
