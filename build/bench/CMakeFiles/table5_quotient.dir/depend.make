# Empty dependencies file for table5_quotient.
# This may be replaced when dependencies are built.
