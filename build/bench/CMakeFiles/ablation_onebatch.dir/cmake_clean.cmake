file(REMOVE_RECURSE
  "CMakeFiles/ablation_onebatch.dir/ablation_onebatch.cpp.o"
  "CMakeFiles/ablation_onebatch.dir/ablation_onebatch.cpp.o.d"
  "ablation_onebatch"
  "ablation_onebatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_onebatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
