# Empty dependencies file for ablation_onebatch.
# This may be replaced when dependencies are built.
