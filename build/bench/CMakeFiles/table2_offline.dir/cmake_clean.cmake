file(REMOVE_RECURSE
  "CMakeFiles/table2_offline.dir/table2_offline.cpp.o"
  "CMakeFiles/table2_offline.dir/table2_offline.cpp.o.d"
  "table2_offline"
  "table2_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
