# Empty dependencies file for table2_offline.
# This may be replaced when dependencies are built.
