# Empty compiler generated dependencies file for abnn2_server.
# This may be replaced when dependencies are built.
