file(REMOVE_RECURSE
  "CMakeFiles/abnn2_server.dir/abnn2_server.cpp.o"
  "CMakeFiles/abnn2_server.dir/abnn2_server.cpp.o.d"
  "abnn2_server"
  "abnn2_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abnn2_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
