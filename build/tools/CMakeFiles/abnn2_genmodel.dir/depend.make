# Empty dependencies file for abnn2_genmodel.
# This may be replaced when dependencies are built.
