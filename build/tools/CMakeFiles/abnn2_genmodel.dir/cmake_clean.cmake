file(REMOVE_RECURSE
  "CMakeFiles/abnn2_genmodel.dir/abnn2_genmodel.cpp.o"
  "CMakeFiles/abnn2_genmodel.dir/abnn2_genmodel.cpp.o.d"
  "abnn2_genmodel"
  "abnn2_genmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abnn2_genmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
