file(REMOVE_RECURSE
  "CMakeFiles/abnn2_client.dir/abnn2_client.cpp.o"
  "CMakeFiles/abnn2_client.dir/abnn2_client.cpp.o.d"
  "abnn2_client"
  "abnn2_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abnn2_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
