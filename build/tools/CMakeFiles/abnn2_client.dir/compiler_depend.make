# Empty compiler generated dependencies file for abnn2_client.
# This may be replaced when dependencies are built.
