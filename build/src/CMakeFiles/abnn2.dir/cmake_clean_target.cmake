file(REMOVE_RECURSE
  "libabnn2.a"
)
