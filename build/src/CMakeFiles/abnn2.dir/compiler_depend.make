# Empty compiler generated dependencies file for abnn2.
# This may be replaced when dependencies are built.
