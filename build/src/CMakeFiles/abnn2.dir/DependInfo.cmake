
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/minionn.cpp" "src/CMakeFiles/abnn2.dir/baselines/minionn.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/baselines/minionn.cpp.o.d"
  "/root/repo/src/baselines/quotient.cpp" "src/CMakeFiles/abnn2.dir/baselines/quotient.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/baselines/quotient.cpp.o.d"
  "/root/repo/src/baselines/secureml.cpp" "src/CMakeFiles/abnn2.dir/baselines/secureml.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/baselines/secureml.cpp.o.d"
  "/root/repo/src/common/bitmatrix.cpp" "src/CMakeFiles/abnn2.dir/common/bitmatrix.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/common/bitmatrix.cpp.o.d"
  "/root/repo/src/core/argmax.cpp" "src/CMakeFiles/abnn2.dir/core/argmax.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/core/argmax.cpp.o.d"
  "/root/repo/src/core/inference.cpp" "src/CMakeFiles/abnn2.dir/core/inference.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/core/inference.cpp.o.d"
  "/root/repo/src/core/maxpool.cpp" "src/CMakeFiles/abnn2.dir/core/maxpool.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/core/maxpool.cpp.o.d"
  "/root/repo/src/core/nonlinear.cpp" "src/CMakeFiles/abnn2.dir/core/nonlinear.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/core/nonlinear.cpp.o.d"
  "/root/repo/src/core/triplet_gen.cpp" "src/CMakeFiles/abnn2.dir/core/triplet_gen.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/core/triplet_gen.cpp.o.d"
  "/root/repo/src/crypto/aes.cpp" "src/CMakeFiles/abnn2.dir/crypto/aes.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/crypto/aes.cpp.o.d"
  "/root/repo/src/crypto/prg.cpp" "src/CMakeFiles/abnn2.dir/crypto/prg.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/crypto/prg.cpp.o.d"
  "/root/repo/src/crypto/ro.cpp" "src/CMakeFiles/abnn2.dir/crypto/ro.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/crypto/ro.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/abnn2.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/ec/ed25519.cpp" "src/CMakeFiles/abnn2.dir/ec/ed25519.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/ec/ed25519.cpp.o.d"
  "/root/repo/src/ec/fe25519.cpp" "src/CMakeFiles/abnn2.dir/ec/fe25519.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/ec/fe25519.cpp.o.d"
  "/root/repo/src/gc/circuit.cpp" "src/CMakeFiles/abnn2.dir/gc/circuit.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/gc/circuit.cpp.o.d"
  "/root/repo/src/gc/garble.cpp" "src/CMakeFiles/abnn2.dir/gc/garble.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/gc/garble.cpp.o.d"
  "/root/repo/src/gc/protocol.cpp" "src/CMakeFiles/abnn2.dir/gc/protocol.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/gc/protocol.cpp.o.d"
  "/root/repo/src/he/bfv.cpp" "src/CMakeFiles/abnn2.dir/he/bfv.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/he/bfv.cpp.o.d"
  "/root/repo/src/he/bigint.cpp" "src/CMakeFiles/abnn2.dir/he/bigint.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/he/bigint.cpp.o.d"
  "/root/repo/src/he/modarith.cpp" "src/CMakeFiles/abnn2.dir/he/modarith.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/he/modarith.cpp.o.d"
  "/root/repo/src/he/ntt.cpp" "src/CMakeFiles/abnn2.dir/he/ntt.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/he/ntt.cpp.o.d"
  "/root/repo/src/net/socket_channel.cpp" "src/CMakeFiles/abnn2.dir/net/socket_channel.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/net/socket_channel.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/CMakeFiles/abnn2.dir/nn/conv.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/nn/conv.cpp.o.d"
  "/root/repo/src/nn/fragment.cpp" "src/CMakeFiles/abnn2.dir/nn/fragment.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/nn/fragment.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/CMakeFiles/abnn2.dir/nn/model.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/nn/model.cpp.o.d"
  "/root/repo/src/nn/model_io.cpp" "src/CMakeFiles/abnn2.dir/nn/model_io.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/nn/model_io.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/CMakeFiles/abnn2.dir/nn/pool.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/nn/pool.cpp.o.d"
  "/root/repo/src/nn/quantize.cpp" "src/CMakeFiles/abnn2.dir/nn/quantize.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/nn/quantize.cpp.o.d"
  "/root/repo/src/ot/base_ot.cpp" "src/CMakeFiles/abnn2.dir/ot/base_ot.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/ot/base_ot.cpp.o.d"
  "/root/repo/src/ot/iknp.cpp" "src/CMakeFiles/abnn2.dir/ot/iknp.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/ot/iknp.cpp.o.d"
  "/root/repo/src/ot/kk13.cpp" "src/CMakeFiles/abnn2.dir/ot/kk13.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/ot/kk13.cpp.o.d"
  "/root/repo/src/ot/wh_code.cpp" "src/CMakeFiles/abnn2.dir/ot/wh_code.cpp.o" "gcc" "src/CMakeFiles/abnn2.dir/ot/wh_code.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
