# Empty compiler generated dependencies file for mnist_inference.
# This may be replaced when dependencies are built.
