# Empty compiler generated dependencies file for socket_inference.
# This may be replaced when dependencies are built.
