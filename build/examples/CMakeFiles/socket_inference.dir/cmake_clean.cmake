file(REMOVE_RECURSE
  "CMakeFiles/socket_inference.dir/socket_inference.cpp.o"
  "CMakeFiles/socket_inference.dir/socket_inference.cpp.o.d"
  "socket_inference"
  "socket_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socket_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
