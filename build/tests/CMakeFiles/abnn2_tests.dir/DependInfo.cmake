
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/abnn2_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/abnn2_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/abnn2_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/abnn2_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/abnn2_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/abnn2_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_crypto.cpp" "tests/CMakeFiles/abnn2_tests.dir/test_crypto.cpp.o" "gcc" "tests/CMakeFiles/abnn2_tests.dir/test_crypto.cpp.o.d"
  "/root/repo/tests/test_ec.cpp" "tests/CMakeFiles/abnn2_tests.dir/test_ec.cpp.o" "gcc" "tests/CMakeFiles/abnn2_tests.dir/test_ec.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/abnn2_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/abnn2_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_gc.cpp" "tests/CMakeFiles/abnn2_tests.dir/test_gc.cpp.o" "gcc" "tests/CMakeFiles/abnn2_tests.dir/test_gc.cpp.o.d"
  "/root/repo/tests/test_he.cpp" "tests/CMakeFiles/abnn2_tests.dir/test_he.cpp.o" "gcc" "tests/CMakeFiles/abnn2_tests.dir/test_he.cpp.o.d"
  "/root/repo/tests/test_more_coverage.cpp" "tests/CMakeFiles/abnn2_tests.dir/test_more_coverage.cpp.o" "gcc" "tests/CMakeFiles/abnn2_tests.dir/test_more_coverage.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/abnn2_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/abnn2_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_nn.cpp" "tests/CMakeFiles/abnn2_tests.dir/test_nn.cpp.o" "gcc" "tests/CMakeFiles/abnn2_tests.dir/test_nn.cpp.o.d"
  "/root/repo/tests/test_ot.cpp" "tests/CMakeFiles/abnn2_tests.dir/test_ot.cpp.o" "gcc" "tests/CMakeFiles/abnn2_tests.dir/test_ot.cpp.o.d"
  "/root/repo/tests/test_pool_io.cpp" "tests/CMakeFiles/abnn2_tests.dir/test_pool_io.cpp.o" "gcc" "tests/CMakeFiles/abnn2_tests.dir/test_pool_io.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/abnn2_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/abnn2_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_sigmoid_kk13.cpp" "tests/CMakeFiles/abnn2_tests.dir/test_sigmoid_kk13.cpp.o" "gcc" "tests/CMakeFiles/abnn2_tests.dir/test_sigmoid_kk13.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/abnn2.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
