# Empty dependencies file for abnn2_tests.
# This may be replaced when dependencies are built.
