// Minimal parallel runtime: a fixed-size, work-stealing-free thread pool with
// statically partitioned parallel-for.
//
// Design constraints (see DESIGN.md "Threading model"):
//  * Determinism. Work is split into contiguous slices with fixed boundaries
//    (slice s of S over n items covers [n*s/S, n*(s+1)/S)). Which OS thread
//    executes a slice is unspecified, but call sites only ever rely on the
//    slice *index* (e.g. per-slice scratch accumulators reduced in slice
//    order), so results are independent of scheduling and of the pool size
//    whenever the per-slice state is merged with commutative/associative
//    operations or slices write disjoint outputs.
//  * No blocking inside slices. Slice bodies must be pure compute — never
//    channel I/O — so two protocol parties running in one process (as the
//    tests do via run_two_parties) can share the global pool without
//    deadlock: a caller always helps execute its own job, so forward
//    progress never depends on a free worker.
//  * Exceptions thrown by a slice are captured and rethrown on the calling
//    thread after the job drains (first one wins).
//
// The global pool size comes from, in priority order: runtime::set_threads(n)
// (n == 0 restores the default), the ABNN2_THREADS environment variable, and
// std::thread::hardware_concurrency(). With one thread every parallel_for
// runs inline on the caller with zero synchronization.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace abnn2::runtime {

class ThreadPool {
 public:
  /// Spawns threads-1 workers; the caller of run_slices counts as the last
  /// executor. threads == 0 is treated as 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threads() const { return n_threads_; }

  /// fn(slice, begin, end): called once per non-empty slice with the fixed
  /// bounds above. Blocks until every slice has finished; rethrows the first
  /// slice exception. Safe to call concurrently from multiple threads.
  using SliceFn = std::function<void(std::size_t, std::size_t, std::size_t)>;
  void run_slices(std::size_t n, std::size_t n_slices, const SliceFn& fn);

 private:
  struct Job;

  void worker_loop();
  static void run_claimed(Job& job);

  std::size_t n_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
};

/// Process-wide pool shared by every party in the process.
ThreadPool& pool();

/// Replaces the global pool with one of n threads (0 = ABNN2_THREADS env,
/// else hardware_concurrency). Not safe while parallel work is in flight.
void set_threads(std::size_t n);

/// Size of the current global pool.
std::size_t num_threads();

/// Runs fn(i) for i in [0, n), statically partitioned into one contiguous
/// slice per pool thread.
template <class F>
void parallel_for(std::size_t n, F&& fn) {
  ThreadPool& p = pool();
  p.run_slices(n, p.threads(),
               [&fn](std::size_t, std::size_t b, std::size_t e) {
                 for (std::size_t i = b; i < e; ++i) fn(i);
               });
}

/// Runs fn(slice, begin, end) over [0, n) split into exactly n_slices fixed
/// contiguous slices (empty slices are skipped). Use when the call site keeps
/// per-slice scratch state: the slice geometry depends only on (n, n_slices),
/// never on the pool size or scheduling.
template <class F>
void parallel_slices(std::size_t n, std::size_t n_slices, F&& fn) {
  pool().run_slices(n, n_slices, std::forward<F>(fn));
}

}  // namespace abnn2::runtime
