#include "runtime/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>

#include "obs/obs.h"

namespace abnn2::runtime {

struct ThreadPool::Job {
  SliceFn fn;
  std::size_t n = 0;
  std::size_t n_slices = 0;
  std::atomic<std::size_t> next{0};  // next unclaimed slice
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t done = 0;  // guarded by mu
  std::exception_ptr error;

  std::pair<std::size_t, std::size_t> bounds(std::size_t s) const {
    return {n * s / n_slices, n * (s + 1) / n_slices};
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : n_threads_(threads == 0 ? 1 : threads) {
  workers_.reserve(n_threads_ - 1);
  for (std::size_t i = 0; i + 1 < n_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_claimed(Job& job) {
  for (;;) {
    const std::size_t s = job.next.fetch_add(1, std::memory_order_relaxed);
    if (s >= job.n_slices) return;
    const auto [b, e] = job.bounds(s);
    std::exception_ptr err;
    if (b < e) {
      try {
        obs::Scope span("pool/slice", nullptr, static_cast<i64>(s));
        job.fn(s, b, e);
      } catch (...) {
        err = std::current_exception();
      }
    }
    std::lock_guard lk(job.mu);
    if (err && !job.error) job.error = err;
    if (++job.done == job.n_slices) job.done_cv.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return stop_ || !jobs_.empty(); });
    if (stop_) return;
    std::shared_ptr<Job> job = jobs_.front();
    if (job->next.load(std::memory_order_relaxed) >= job->n_slices) {
      // Fully claimed; drop it so the next job (if any) becomes visible.
      jobs_.pop_front();
      continue;
    }
    lk.unlock();
    run_claimed(*job);
    lk.lock();
    if (!jobs_.empty() && jobs_.front() == job) jobs_.pop_front();
  }
}

void ThreadPool::run_slices(std::size_t n, std::size_t n_slices,
                            const SliceFn& fn) {
  if (n == 0) return;
  if (n_slices == 0) n_slices = 1;
  if (n_threads_ == 1 || n_slices == 1) {
    // Inline path: same slice geometry as the parallel path so per-slice
    // scratch state behaves identically, run in slice order on the caller.
    for (std::size_t s = 0; s < n_slices; ++s) {
      const std::size_t b = n * s / n_slices;
      const std::size_t e = n * (s + 1) / n_slices;
      if (b < e) {
        obs::Scope span("pool/slice", nullptr, static_cast<i64>(s));
        fn(s, b, e);
      }
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->n = n;
  job->n_slices = n_slices;
  {
    std::lock_guard lk(mu_);
    jobs_.push_back(job);
  }
  cv_.notify_all();

  // The caller always helps with its own job, so completion never depends on
  // a worker being free (two parties can share the pool without deadlock).
  run_claimed(*job);
  {
    std::unique_lock jlk(job->mu);
    job->done_cv.wait(jlk, [&] { return job->done == job->n_slices; });
  }
  {
    // The job may still sit in the queue if the caller claimed everything
    // before any worker woke up; remove it.
    std::lock_guard lk(mu_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (*it == job) {
        jobs_.erase(it);
        break;
      }
    }
  }
  if (job->error) std::rethrow_exception(job->error);
}

namespace {

std::size_t default_threads() {
  if (const char* env = std::getenv("ABNN2_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

ThreadPool& pool() {
  std::lock_guard lk(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(default_threads());
  return *g_pool;
}

void set_threads(std::size_t n) {
  auto next = std::make_unique<ThreadPool>(n == 0 ? default_threads() : n);
  std::lock_guard lk(g_pool_mu);
  g_pool = std::move(next);
}

std::size_t num_threads() { return pool().threads(); }

}  // namespace abnn2::runtime
