// Two-party garbled circuit protocol: garbler + evaluator sessions over a
// Channel. Evaluator input labels are transferred with IKNP OT extension;
// outputs are decoded by the evaluator (matching Algorithm 2 of the paper,
// where the server S evaluates and obtains the result).
//
// A session reuses one OT-extension setup and keeps garbling tweaks unique
// across runs, so per-layer invocations during inference are cheap.
#pragma once

#include <vector>

#include "gc/garble.h"
#include "net/channel.h"
#include "ot/iknp.h"

namespace abnn2::gc {

class GcGarbler {
 public:
  explicit GcGarbler(u64 tag = 0x6C6A'0001) : ot_(tag) {}

  /// Garbles `n` instances of `c` with this party's input bits
  /// (`g_bits`: row-major n x |in_g|, one byte per bit) and serves the
  /// evaluator's input labels over OT.
  void run(Channel& ch, const Circuit& c, std::size_t n,
           std::span<const u8> g_bits, Prg& prg);

 private:
  IknpSender ot_;
  bool ot_ready_ = false;
  u64 tweak_ = 0;
};

class GcEvaluator {
 public:
  explicit GcEvaluator(u64 tag = 0x6C6A'0001) : ot_(tag) {}

  /// Returns decoded output bits, row-major n x |out|, one byte per bit.
  std::vector<u8> run(Channel& ch, const Circuit& c, std::size_t n,
                      std::span<const u8> e_bits, Prg& prg);

 private:
  IknpReceiver ot_;
  bool ot_ready_ = false;
  u64 tweak_ = 0;
};

}  // namespace abnn2::gc
