#include "gc/protocol.h"

#include "obs/obs.h"

namespace abnn2::gc {

void GcGarbler::run(Channel& ch, const Circuit& c, std::size_t n,
                    std::span<const u8> g_bits, Prg& prg) {
  ABNN2_CHECK_ARG(g_bits.size() == n * c.in_g.size(), "input bit count mismatch");
  obs::Scope span("gc/garbler-run", &ch);
  if (!ot_ready_) {
    ot_.setup(ch, prg);
    ot_ready_ = true;
  }

  Garbler garbler(c, n, tweak_, prg);
  tweak_ += n * c.and_count();

  // Evaluator input labels over OT.
  const std::size_t m = n * c.in_e.size();
  if (m > 0) {
    ot_.extend(ch, m);
    std::vector<std::array<Block, 2>> pairs(m);
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < c.in_e.size(); ++i) {
        const Block l0 = garbler.e_input_label0(k, i);
        pairs[k * c.in_e.size() + i] = {l0, l0 ^ garbler.delta()};
      }
    }
    ot_.send_blocks(ch, pairs);
  }

  // Tables + decode bits + garbler's active input labels.
  const GarbledBatch& b = garbler.batch();
  ch.send_blocks(b.tables.data(), b.tables.size());
  if (!b.decode_bits.empty())
    ch.send(b.decode_bits.data(), b.decode_bits.size());
  if (!g_bits.empty()) {
    std::vector<Block> labels(g_bits.size());
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t i = 0; i < c.in_g.size(); ++i) {
        const std::size_t idx = k * c.in_g.size() + i;
        labels[idx] = garbler.encode(garbler.g_input_label0(k, i),
                                     g_bits[idx] & 1);
      }
    ch.send_blocks(labels.data(), labels.size());
  }
}

std::vector<u8> GcEvaluator::run(Channel& ch, const Circuit& c, std::size_t n,
                                 std::span<const u8> e_bits, Prg& prg) {
  ABNN2_CHECK_ARG(e_bits.size() == n * c.in_e.size(), "input bit count mismatch");
  obs::Scope span("gc/eval-run", &ch);
  if (!ot_ready_) {
    ot_.setup(ch, prg);
    ot_ready_ = true;
  }

  std::vector<Block> e_labels;
  const std::size_t m = n * c.in_e.size();
  if (m > 0) {
    BitVec choices(m);
    for (std::size_t i = 0; i < m; ++i) choices.set(i, e_bits[i] & 1);
    ot_.extend(ch, choices);
    e_labels = ot_.recv_blocks(ch);
  }

  GarbledBatch b;
  b.n_instances = n;
  b.tables.resize(n * 2 * c.and_count());
  ch.recv_blocks(b.tables.data(), b.tables.size());
  b.decode_bits.resize(n * c.out.size());
  if (!b.decode_bits.empty())
    ch.recv(b.decode_bits.data(), b.decode_bits.size());
  std::vector<Block> g_labels(n * c.in_g.size());
  if (!g_labels.empty()) ch.recv_blocks(g_labels.data(), g_labels.size());

  auto out = Evaluator::eval(c, b, tweak_, g_labels, e_labels);
  tweak_ += n * c.and_count();
  return out;
}

}  // namespace abnn2::gc
