// Half-gates garbling (Zahur-Rosulek-Evans, EUROCRYPT'15) with free-XOR and
// point-and-permute. Two ciphertexts per AND gate; XOR and NOT are free.
//
// The hash is the tweakable circular-correlation-robust hash
//   H(x, t) = pi(2x ^ t) ^ 2x ^ t
// over the fixed-key AES permutation pi (JustGarble model), with globally
// unique tweaks across gates, instances and protocol runs.
#pragma once

#include <vector>

#include "common/block.h"
#include "crypto/prg.h"
#include "gc/circuit.h"

namespace abnn2::gc {

/// Garbled tables plus output-decode bits for a batch of instances of one
/// circuit. The wire format is:
///   per instance: [2 blocks per AND gate, in gate order]
///   then decode bits: one byte per (instance, output wire).  (Kept simple;
///   bit-packing outputs would save 7/8 of a typically tiny field.)
struct GarbledBatch {
  std::vector<Block> tables;     // n_instances * 2 * and_count
  std::vector<u8> decode_bits;   // n_instances * out.size()
  std::size_t n_instances = 0;
};

/// Garbler state for one batch. Holds the global offset Delta and all input
/// wire zero-labels so the caller can encode inputs.
class Garbler {
 public:
  /// Garbles `n_instances` copies of `c`. `tweak_base` must be unique per
  /// batch within a session (the protocol layer manages it).
  Garbler(const Circuit& c, std::size_t n_instances, u64 tweak_base, Prg& prg);

  const GarbledBatch& batch() const { return batch_; }
  Block delta() const { return delta_; }

  /// Zero-label of garbler input wire `i` of instance `k`.
  Block g_input_label0(std::size_t k, std::size_t i) const {
    return in_g_labels_[k * circ_->in_g.size() + i];
  }
  /// Zero-label of evaluator input wire `i` of instance `k` (the OT sends
  /// (label0, label0 ^ Delta)).
  Block e_input_label0(std::size_t k, std::size_t i) const {
    return in_e_labels_[k * circ_->in_e.size() + i];
  }

  /// Label for a concrete input bit.
  Block encode(Block label0, bool bit) const {
    return bit ? (label0 ^ delta_) : label0;
  }

 private:
  const Circuit* circ_;
  Block delta_;
  GarbledBatch batch_;
  std::vector<Block> in_g_labels_;
  std::vector<Block> in_e_labels_;
};

/// Evaluates one batch. Inputs are active labels; outputs are decoded bits.
class Evaluator {
 public:
  /// `g_labels`: n_instances x |in_g| active labels (row-major), `e_labels`
  /// likewise. Returns n_instances x |out| bits (row-major).
  static std::vector<u8> eval(const Circuit& c, const GarbledBatch& batch,
                              u64 tweak_base,
                              std::span<const Block> g_labels,
                              std::span<const Block> e_labels);
};

}  // namespace abnn2::gc
