#include "gc/garble.h"

#include "crypto/aes.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace abnn2::gc {
namespace {

// Batched label hash H(x, t) = pi(2x ^ t) ^ 2x ^ t (TMMO over fixed-key
// AES): callers stage in[i] = 2x_i ^ t_i and get h[i] = pi(in[i]) ^ in[i].
// One AES call per gate instead of one per label keeps the 8-way pipelined
// kernel fed; the hashes are bit-identical to per-label evaluation.
inline void hash_labels(const Aes128& pi, Block* in, Block* h, std::size_t n) {
  pi.encrypt_blocks(in, h, n);
  for (std::size_t i = 0; i < n; ++i) h[i] ^= in[i];
}

}  // namespace

Garbler::Garbler(const Circuit& c, std::size_t n_instances, u64 tweak_base,
                 Prg& prg)
    : circ_(&c) {
  ABNN2_CHECK_ARG(n_instances > 0, "empty batch");
  obs::Scope span("gc/garble");
  obs::add_count("gc.and_gates", n_instances * c.and_count());
  delta_ = prg.next_block();
  delta_.set_bit(0, true);  // lsb(Delta) = 1 for point-and-permute

  const std::size_t n_and = c.and_count();
  batch_.n_instances = n_instances;
  batch_.tables.resize(n_instances * 2 * n_and);
  batch_.decode_bits.resize(n_instances * c.out.size());
  in_g_labels_.resize(n_instances * c.in_g.size());
  in_e_labels_.resize(n_instances * c.in_e.size());

  // Input zero-labels for instance k come from Prg(label_seed, k), not from
  // the shared `prg` stream, so instances garble independently on the thread
  // pool with a schedule- and thread-count-independent result. The labels
  // are garbler-local secrets; only the (already per-instance) tables and
  // masked labels ever hit the wire.
  const Block label_seed = prg.next_block();
  runtime::parallel_slices(
      n_instances, runtime::num_threads(),
      [&](std::size_t, std::size_t kb, std::size_t ke) {
        const Aes128& pi = fixed_key_aes();
        std::vector<Block> w(c.num_wires);  // zero-labels
        for (std::size_t k = kb; k < ke; ++k) {
          Prg kprg(label_seed, static_cast<u64>(k));
          for (std::size_t i = 0; i < c.in_g.size(); ++i) {
            w[c.in_g[i]] = kprg.next_block();
            in_g_labels_[k * c.in_g.size() + i] = w[c.in_g[i]];
          }
          for (std::size_t i = 0; i < c.in_e.size(); ++i) {
            w[c.in_e[i]] = kprg.next_block();
            in_e_labels_[k * c.in_e.size() + i] = w[c.in_e[i]];
          }
          Block* table = batch_.tables.data() + k * 2 * n_and;
          u64 tweak = tweak_base + k * n_and;
          for (const Gate& g : c.gates) {
            switch (g.op) {
              case Op::kXor:
                w[g.out] = w[g.a] ^ w[g.b];
                break;
              case Op::kNot:
                w[g.out] = w[g.a] ^ delta_;
                break;
              case Op::kAnd: {
                const Block a0 = w[g.a], b0 = w[g.b];
                const bool pa = a0.lsb(), pb = b0.lsb();
                const u64 j0 = 2 * tweak, j1 = 2 * tweak + 1;
                ++tweak;
                // All four half-gate hashes of this gate in one AES batch.
                Block in[4] = {a0.gf_double() ^ Block{0, j0},
                               (a0 ^ delta_).gf_double() ^ Block{0, j0},
                               b0.gf_double() ^ Block{0, j1},
                               (b0 ^ delta_).gf_double() ^ Block{0, j1}};
                Block h[4];
                hash_labels(pi, in, h, 4);
                // Garbler half gate.
                const Block ha0 = h[0], ha1 = h[1];
                Block tg = ha0 ^ ha1;
                if (pb) tg ^= delta_;
                Block wg = ha0;
                if (pa) wg ^= tg;
                // Evaluator half gate.
                const Block hb0 = h[2], hb1 = h[3];
                const Block te = hb0 ^ hb1 ^ a0;
                Block we = hb0;
                if (pb) we ^= te ^ a0;
                table[0] = tg;
                table[1] = te;
                table += 2;
                w[g.out] = wg ^ we;
                break;
              }
            }
          }
          for (std::size_t i = 0; i < c.out.size(); ++i)
            batch_.decode_bits[k * c.out.size() + i] =
                static_cast<u8>(w[c.out[i]].lsb());
        }
      });
}

std::vector<u8> Evaluator::eval(const Circuit& c, const GarbledBatch& batch,
                                u64 tweak_base,
                                std::span<const Block> g_labels,
                                std::span<const Block> e_labels) {
  const std::size_t n_instances = batch.n_instances;
  const std::size_t n_and = c.and_count();
  ABNN2_CHECK(batch.tables.size() == n_instances * 2 * n_and,
              "garbled table size mismatch");
  ABNN2_CHECK(batch.decode_bits.size() == n_instances * c.out.size(),
              "decode bits size mismatch");
  ABNN2_CHECK(g_labels.size() == n_instances * c.in_g.size(),
              "garbler label count mismatch");
  ABNN2_CHECK(e_labels.size() == n_instances * c.in_e.size(),
              "evaluator label count mismatch");
  obs::Scope span("gc/eval");

  std::vector<u8> out(n_instances * c.out.size());
  // Instances are independent (per-instance tables, tweaks, labels, output
  // bytes), so evaluation parallelizes over k with disjoint writes; each
  // slice reuses one wire-label scratch vector.
  runtime::parallel_slices(
      n_instances, runtime::num_threads(),
      [&](std::size_t, std::size_t kb, std::size_t ke) {
        const Aes128& pi = fixed_key_aes();
        std::vector<Block> w(c.num_wires);
        for (std::size_t k = kb; k < ke; ++k) {
          for (std::size_t i = 0; i < c.in_g.size(); ++i)
            w[c.in_g[i]] = g_labels[k * c.in_g.size() + i];
          for (std::size_t i = 0; i < c.in_e.size(); ++i)
            w[c.in_e[i]] = e_labels[k * c.in_e.size() + i];
          const Block* table = batch.tables.data() + k * 2 * n_and;
          u64 tweak = tweak_base + k * n_and;
          for (const Gate& g : c.gates) {
            switch (g.op) {
              case Op::kXor:
                w[g.out] = w[g.a] ^ w[g.b];
                break;
              case Op::kNot:
                w[g.out] = w[g.a];  // evaluator keeps label; decode flips bit
                break;
              case Op::kAnd: {
                const Block a = w[g.a], b = w[g.b];
                const u64 j0 = 2 * tweak, j1 = 2 * tweak + 1;
                ++tweak;
                // Both half-gate hashes of this gate in one AES batch.
                Block in[2] = {a.gf_double() ^ Block{0, j0},
                               b.gf_double() ^ Block{0, j1}};
                Block h[2];
                hash_labels(pi, in, h, 2);
                Block wg = h[0];
                if (a.lsb()) wg ^= table[0];
                Block we = h[1];
                if (b.lsb()) we ^= table[1] ^ a;
                table += 2;
                w[g.out] = wg ^ we;
                break;
              }
            }
          }
          for (std::size_t i = 0; i < c.out.size(); ++i)
            out[k * c.out.size() + i] =
                static_cast<u8>(w[c.out[i]].lsb() ^
                                (batch.decode_bits[k * c.out.size() + i] & 1));
        }
      });
  return out;
}

}  // namespace abnn2::gc
