#include "gc/circuit.h"

namespace abnn2::gc {

std::vector<bool> eval_plain(const Circuit& c, const std::vector<bool>& g_bits,
                             const std::vector<bool>& e_bits) {
  ABNN2_CHECK_ARG(g_bits.size() == c.in_g.size(), "garbler input size mismatch");
  ABNN2_CHECK_ARG(e_bits.size() == c.in_e.size(), "evaluator input size mismatch");
  std::vector<bool> w(c.num_wires, false);
  for (std::size_t i = 0; i < g_bits.size(); ++i) w[c.in_g[i]] = g_bits[i];
  for (std::size_t i = 0; i < e_bits.size(); ++i) w[c.in_e[i]] = e_bits[i];
  for (const Gate& g : c.gates) {
    switch (g.op) {
      case Op::kXor: w[g.out] = w[g.a] ^ w[g.b]; break;
      case Op::kAnd: w[g.out] = w[g.a] && w[g.b]; break;
      case Op::kNot: w[g.out] = !w[g.a]; break;
    }
  }
  std::vector<bool> out(c.out.size());
  for (std::size_t i = 0; i < c.out.size(); ++i) out[i] = w[c.out[i]];
  return out;
}

u32 Builder::fresh() { return c_.num_wires++; }

std::vector<u32> Builder::garbler_inputs(std::size_t n) {
  ABNN2_CHECK(!inputs_done_, "inputs must be allocated before gates");
  std::vector<u32> ws(n);
  for (auto& w : ws) {
    w = fresh();
    c_.in_g.push_back(w);
  }
  return ws;
}

std::vector<u32> Builder::evaluator_inputs(std::size_t n) {
  ABNN2_CHECK(!inputs_done_, "inputs must be allocated before gates");
  std::vector<u32> ws(n);
  for (auto& w : ws) {
    w = fresh();
    c_.in_e.push_back(w);
  }
  return ws;
}

u32 Builder::XOR(u32 a, u32 b) {
  inputs_done_ = true;
  const u32 o = fresh();
  c_.gates.push_back({Op::kXor, a, b, o});
  return o;
}

u32 Builder::AND(u32 a, u32 b) {
  inputs_done_ = true;
  const u32 o = fresh();
  c_.gates.push_back({Op::kAnd, a, b, o});
  return o;
}

u32 Builder::NOT(u32 a) {
  inputs_done_ = true;
  const u32 o = fresh();
  c_.gates.push_back({Op::kNot, a, 0, o});
  return o;
}

std::vector<u32> Builder::add_mod(std::span<const u32> a,
                                  std::span<const u32> b) {
  ABNN2_CHECK_ARG(a.size() == b.size() && !a.empty(), "operand size mismatch");
  const std::size_t l = a.size();
  std::vector<u32> sum(l);
  // Bit 0: half adder (carry = a0 & b0).
  sum[0] = XOR(a[0], b[0]);
  if (l == 1) return sum;
  u32 carry = AND(a[0], b[0]);
  for (std::size_t i = 1; i < l; ++i) {
    const u32 axc = XOR(a[i], carry);
    sum[i] = XOR(axc, b[i]);
    if (i + 1 < l) {
      // carry' = carry ^ ((a^carry) & (b^carry))
      const u32 bxc = XOR(b[i], carry);
      carry = XOR(carry, AND(axc, bxc));
    }
  }
  return sum;
}

std::vector<u32> Builder::sub_mod(std::span<const u32> a,
                                  std::span<const u32> b) {
  ABNN2_CHECK_ARG(a.size() == b.size() && !a.empty(), "operand size mismatch");
  const std::size_t l = a.size();
  // a - b = a + ~b + 1: fold the +1 into the first full adder (cin = 1).
  std::vector<u32> diff(l);
  diff[0] = XOR(a[0], b[0]);  // a0 ^ ~b0 ^ 1 == a0 ^ b0
  if (l == 1) return diff;
  // carry0 = majority(a0, ~b0, 1) = a0 | ~b0 = NOT(~a0 & b0)
  u32 carry = NOT(AND(NOT(a[0]), b[0]));
  for (std::size_t i = 1; i < l; ++i) {
    const u32 nb = NOT(b[i]);
    const u32 axc = XOR(a[i], carry);
    diff[i] = XOR(axc, nb);
    if (i + 1 < l) {
      const u32 bxc = XOR(nb, carry);
      carry = XOR(carry, AND(axc, bxc));
    }
  }
  return diff;
}

u32 Builder::less_than(std::span<const u32> a, std::span<const u32> b) {
  ABNN2_CHECK_ARG(a.size() == b.size() && !a.empty(), "operand size mismatch");
  // Borrow chain of a - b; final borrow == 1 iff a < b.
  // borrow' = majority(~a_i, b_i, borrow) = borrow ^ ((~a_i ^ borrow) & (b_i ^ borrow))
  u32 borrow = AND(NOT(a[0]), b[0]);
  for (std::size_t i = 1; i < a.size(); ++i) {
    const u32 na = NOT(a[i]);
    const u32 axc = XOR(na, borrow);
    const u32 bxc = XOR(b[i], borrow);
    borrow = XOR(borrow, AND(axc, bxc));
  }
  return borrow;
}

std::vector<u32> Builder::mux(u32 sel, std::span<const u32> a,
                              std::span<const u32> b) {
  ABNN2_CHECK_ARG(a.size() == b.size(), "operand size mismatch");
  // out = b ^ (sel & (a ^ b))
  std::vector<u32> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = XOR(b[i], AND(sel, XOR(a[i], b[i])));
  return out;
}

std::vector<u32> Builder::and_bit(u32 bit, std::span<const u32> a) {
  std::vector<u32> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = AND(bit, a[i]);
  return out;
}

}  // namespace abnn2::gc
