// Boolean circuit representation and builder for the garbled-circuit
// protocols (paper section 4.2). Gates are XOR / AND / NOT; XOR and NOT are
// free under free-XOR garbling, so circuit cost is the AND count.
#pragma once

#include <span>
#include <vector>

#include "common/defines.h"

namespace abnn2::gc {

enum class Op : u8 { kXor, kAnd, kNot };

struct Gate {
  Op op;
  u32 a = 0;
  u32 b = 0;  // unused for kNot
  u32 out = 0;
};

/// A circuit with two input bundles: garbler wires and evaluator wires.
/// Wires are numbered 0..num_wires-1; inputs first, gate outputs after, in
/// topological order.
struct Circuit {
  std::vector<u32> in_g;   // garbler input wires
  std::vector<u32> in_e;   // evaluator input wires
  std::vector<u32> out;    // output wires
  std::vector<Gate> gates;
  u32 num_wires = 0;

  std::size_t and_count() const {
    std::size_t n = 0;
    for (const Gate& g : gates) n += (g.op == Op::kAnd);
    return n;
  }
};

/// Reference (cleartext) evaluation, used by tests as ground truth.
std::vector<bool> eval_plain(const Circuit& c, const std::vector<bool>& g_bits,
                             const std::vector<bool>& e_bits);

/// Incremental builder. Allocate inputs first, then combine with gate
/// helpers, then mark outputs.
class Builder {
 public:
  /// Allocates `n` garbler (party-G) input wires.
  std::vector<u32> garbler_inputs(std::size_t n);
  /// Allocates `n` evaluator (party-E) input wires.
  std::vector<u32> evaluator_inputs(std::size_t n);

  u32 XOR(u32 a, u32 b);
  u32 AND(u32 a, u32 b);
  u32 NOT(u32 a);
  u32 OR(u32 a, u32 b) { return NOT(AND(NOT(a), NOT(b))); }

  void mark_output(u32 w) { c_.out.push_back(w); }
  void mark_outputs(std::span<const u32> ws) {
    for (u32 w : ws) c_.out.push_back(w);
  }

  /// Finish building; the builder must not be used afterwards.
  Circuit build() { return std::move(c_); }

  // ---- word-level library (little-endian bit vectors) -----------------

  /// a + b mod 2^l (l = a.size() = b.size()); l-1 AND gates.
  std::vector<u32> add_mod(std::span<const u32> a, std::span<const u32> b);
  /// a - b mod 2^l.
  std::vector<u32> sub_mod(std::span<const u32> a, std::span<const u32> b);
  /// 1 iff a < b as unsigned integers (borrow out of a - b).
  u32 less_than(std::span<const u32> a, std::span<const u32> b);
  /// sel ? a : b, bitwise; |a| AND gates.
  std::vector<u32> mux(u32 sel, std::span<const u32> a, std::span<const u32> b);
  /// Bitwise AND of a word with one bit.
  std::vector<u32> and_bit(u32 bit, std::span<const u32> a);

 private:
  u32 fresh();
  Circuit c_;
  bool inputs_done_ = false;
};

}  // namespace abnn2::gc
