// Minimal unsigned big integer on base-2^32 limbs. Only what BFV decryption
// needs: CRT composition, addition, multiplication by small values,
// comparison and Knuth-D division. Sizes stay tiny (<= 256 bits), so
// simplicity beats asymptotics.
#pragma once

#include <vector>

#include "common/defines.h"

namespace abnn2::he {

class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(u64 v) {
    limbs_ = {static_cast<u32>(v), static_cast<u32>(v >> 32)};
    trim();
  }

  static BigUint from_u128(u128 v) {
    BigUint b;
    for (int i = 0; i < 4; ++i)
      b.limbs_.push_back(static_cast<u32>(v >> (32 * i)));
    b.trim();
    return b;
  }

  bool is_zero() const { return limbs_.empty(); }
  std::size_t bit_length() const;

  /// Low 64 bits.
  u64 low_u64() const {
    u64 v = 0;
    for (std::size_t i = 0; i < limbs_.size() && i < 2; ++i)
      v |= static_cast<u64>(limbs_[i]) << (32 * i);
    return v;
  }

  BigUint& add(const BigUint& o);
  BigUint& sub(const BigUint& o);  // requires *this >= o
  BigUint& mul_small(u64 v);
  BigUint& shift_left_bits(std::size_t bits);

  static int compare(const BigUint& a, const BigUint& b);
  friend bool operator<(const BigUint& a, const BigUint& b) {
    return compare(a, b) < 0;
  }
  friend bool operator==(const BigUint& a, const BigUint& b) {
    return a.limbs_ == b.limbs_;
  }

  friend BigUint operator+(BigUint a, const BigUint& b) { return a.add(b); }
  friend BigUint operator-(BigUint a, const BigUint& b) { return a.sub(b); }
  friend BigUint operator*(BigUint a, u64 b) { return a.mul_small(b); }
  BigUint operator%(const BigUint& m) const { return divmod(m).second; }
  BigUint operator/(const BigUint& m) const { return divmod(m).first; }

  /// Knuth Algorithm D. `d` must be non-zero.
  std::pair<BigUint, BigUint> divmod(const BigUint& d) const;

 private:
  void trim() {
    while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  }
  std::vector<u32> limbs_;  // little-endian base 2^32
};

}  // namespace abnn2::he
