#include "he/bfv.h"

namespace abnn2::he {
namespace {

// Deterministic parameter derivation: both parties construct identical
// params from (t_bits, n) alone.
Prg param_prg(std::size_t t_bits, std::size_t n) {
  return Prg(Block{0xBF5B'F5B0, (static_cast<u64>(t_bits) << 32) | n});
}

// Small noise: uniform in [-16, 16]. (A centered binomial would be the
// production choice; the bound is what the noise analysis uses.)
i64 small_noise(Prg& prg) { return static_cast<i64>(prg.next_below(33)) - 16; }

u64 to_mod(i64 v, u64 p) {
  return v >= 0 ? static_cast<u64>(v) % p
                : p - (static_cast<u64>(-v) % p);
}

}  // namespace

BfvParams::BfvParams(std::size_t t_bits, std::size_t n)
    : n_(n), t_bits_(t_bits) {
  ABNN2_CHECK_ARG(t_bits >= 8 && t_bits <= 64, "t_bits out of range");
  ABNN2_CHECK_ARG(n >= 16 && (n & (n - 1)) == 0, "n must be a power of two");
  const std::size_t k = t_bits <= 32 ? 2 : 3;
  Prg prg = param_prg(t_bits, n);
  u64 start = u64{1} << 59;
  for (std::size_t i = 0; i < k; ++i) {
    const u64 p = next_ntt_prime(start, 2 * n);
    primes_.push_back(p);
    ntt_.push_back(std::make_unique<NttTables>(n, p, prg));
    start = p + 2 * n;
  }
  q_ = BigUint(1);
  for (u64 p : primes_) q_.mul_small(p);
  BigUint t(1);
  t.shift_left_bits(t_bits);
  delta_ = q_ / t;
  for (u64 p : primes_)
    delta_mod_.push_back((delta_ % BigUint(p)).low_u64());
  for (u64 p : primes_) {
    const BigUint mi = q_ / BigUint(p);
    const u64 mi_mod_p = (mi % BigUint(p)).low_u64();
    const u64 yi = inv_mod(mi_mod_p, p);
    crt_term_.push_back((mi * yi) % q_);
  }
}

RnsPoly RnsPoly::zero(const BfvParams& p) {
  RnsPoly r;
  r.c.resize(p.num_primes());
  for (auto& v : r.c) v.assign(p.n(), 0);
  return r;
}

void Ciphertext::serialize(Writer& w) const {
  for (const auto* poly : {&c0, &c1})
    for (const auto& v : poly->c) w.bytes(v.data(), v.size() * 8);
}

Ciphertext Ciphertext::deserialize(Reader& r, const BfvParams& p) {
  Ciphertext ct;
  for (auto* poly : {&ct.c0, &ct.c1}) {
    *poly = RnsPoly::zero(p);
    for (auto& v : poly->c) r.bytes(v.data(), v.size() * 8);
  }
  for (auto* poly : {&ct.c0, &ct.c1})
    for (std::size_t i = 0; i < p.num_primes(); ++i)
      for (u64 x : poly->c[i])
        ABNN2_CHECK(x < p.prime(i), "ciphertext coefficient out of range");
  return ct;
}

SecretKey::SecretKey(const BfvParams& p, Prg& prg) {
  // Ternary key, shared across primes, stored in the evaluation domain.
  std::vector<i64> s(p.n());
  for (auto& v : s) v = static_cast<i64>(prg.next_below(3)) - 1;
  s_ntt_.c.resize(p.num_primes());
  for (std::size_t i = 0; i < p.num_primes(); ++i) {
    s_ntt_.c[i].resize(p.n());
    for (std::size_t j = 0; j < p.n(); ++j)
      s_ntt_.c[i][j] = to_mod(s[j], p.prime(i));
    p.ntt(i).forward(s_ntt_.c[i].data());
  }
}

Ciphertext SecretKey::encrypt(const BfvParams& p, std::span<const u64> pt,
                              Prg& prg) const {
  ABNN2_CHECK_ARG(pt.size() <= p.n(), "plaintext too long");
  Ciphertext ct;
  ct.c0 = RnsPoly::zero(p);
  ct.c1 = RnsPoly::zero(p);
  // One error polynomial shared across the RNS components (it is a single
  // integer polynomial).
  std::vector<i64> e(p.n());
  for (auto& v : e) v = small_noise(prg);
  // a is uniform: sample once per prime directly.
  for (std::size_t i = 0; i < p.num_primes(); ++i) {
    const u64 pi = p.prime(i);
    auto& a = ct.c1.c[i];
    for (auto& v : a) v = prg.next_below(pi);
    // as = a * s (negacyclic)
    std::vector<u64> as(a);
    p.ntt(i).forward(as.data());
    for (std::size_t j = 0; j < p.n(); ++j)
      as[j] = mul_mod(as[j], s_ntt_.c[i][j], pi);
    p.ntt(i).inverse(as.data());
    auto& c0 = ct.c0.c[i];
    const u64 delta = p.delta_mod(i);
    const u64 tmask = mask_l(p.t_bits());
    for (std::size_t j = 0; j < p.n(); ++j) {
      const u64 m = j < pt.size() ? (pt[j] & tmask) : 0;
      u64 v = sub_mod(to_mod(e[j], pi), as[j], pi);
      v = add_mod(v, mul_mod(delta, m % pi, pi), pi);
      c0[j] = v;
    }
  }
  return ct;
}

std::vector<u64> SecretKey::decrypt(const BfvParams& p,
                                    const Ciphertext& ct) const {
  const std::size_t k = p.num_primes();
  // v = c0 + c1 * s per prime.
  std::vector<std::vector<u64>> v(k);
  for (std::size_t i = 0; i < k; ++i) {
    const u64 pi = p.prime(i);
    std::vector<u64> cs(ct.c1.c[i]);
    p.ntt(i).forward(cs.data());
    for (std::size_t j = 0; j < p.n(); ++j)
      cs[j] = mul_mod(cs[j], s_ntt_.c[i][j], pi);
    p.ntt(i).inverse(cs.data());
    v[i].resize(p.n());
    for (std::size_t j = 0; j < p.n(); ++j)
      v[i][j] = add_mod(ct.c0.c[i][j], cs[j], pi);
  }
  // CRT-compose each coefficient and round-divide by Delta.
  std::vector<u64> out(p.n());
  const u64 tmask = mask_l(p.t_bits());
  for (std::size_t j = 0; j < p.n(); ++j) {
    BigUint acc;
    for (std::size_t i = 0; i < k; ++i) {
      BigUint term = p.crt_term(i);
      term.mul_small(v[i][j]);
      acc.add(term);
    }
    acc = acc % p.q();
    auto [q0, r] = acc.divmod(p.delta());
    BigUint r2 = r;
    r2.add(r);
    if (!(r2 < p.delta())) q0.add(BigUint(1));
    out[j] = q0.low_u64() & tmask;
  }
  return out;
}

Ciphertext mul_plain(const BfvParams& p, const Ciphertext& ct,
                     std::span<const i64> pt) {
  ABNN2_CHECK_ARG(pt.size() <= p.n(), "plaintext too long");
  for (i64 v : pt)
    ABNN2_CHECK_ARG(v <= (i64{1} << 30) && v >= -(i64{1} << 30),
                    "plaintext multiplier too large for the noise budget");
  Ciphertext out;
  out.c0 = RnsPoly::zero(p);
  out.c1 = RnsPoly::zero(p);
  for (std::size_t i = 0; i < p.num_primes(); ++i) {
    const u64 pi = p.prime(i);
    std::vector<u64> w(p.n(), 0);
    for (std::size_t j = 0; j < pt.size(); ++j) w[j] = to_mod(pt[j], pi);
    p.ntt(i).forward(w.data());
    const std::pair<const RnsPoly*, RnsPoly*> polys[2] = {
        {&ct.c0, &out.c0}, {&ct.c1, &out.c1}};
    for (const auto& [src, dst] : polys) {
      std::vector<u64> a(src->c[i]);
      p.ntt(i).forward(a.data());
      for (std::size_t j = 0; j < p.n(); ++j)
        a[j] = mul_mod(a[j], w[j], pi);
      p.ntt(i).inverse(a.data());
      dst->c[i] = std::move(a);
    }
  }
  return out;
}

PlainNtt prepare_plain(const BfvParams& p, std::span<const i64> pt) {
  ABNN2_CHECK_ARG(pt.size() <= p.n(), "plaintext too long");
  for (i64 v : pt)
    ABNN2_CHECK_ARG(v <= (i64{1} << 30) && v >= -(i64{1} << 30),
                    "plaintext multiplier too large for the noise budget");
  PlainNtt out;
  out.c.resize(p.num_primes());
  for (std::size_t i = 0; i < p.num_primes(); ++i) {
    const u64 pi = p.prime(i);
    out.c[i].assign(p.n(), 0);
    for (std::size_t j = 0; j < pt.size(); ++j) out.c[i][j] = to_mod(pt[j], pi);
    p.ntt(i).forward(out.c[i].data());
  }
  return out;
}

CiphertextNtt to_ntt(const BfvParams& p, const Ciphertext& ct) {
  CiphertextNtt out{ct.c0, ct.c1};
  for (std::size_t i = 0; i < p.num_primes(); ++i) {
    p.ntt(i).forward(out.c0.c[i].data());
    p.ntt(i).forward(out.c1.c[i].data());
  }
  return out;
}

Ciphertext mul_prepared(const BfvParams& p, const CiphertextNtt& ct,
                        const PlainNtt& w) {
  Ciphertext out;
  out.c0 = RnsPoly::zero(p);
  out.c1 = RnsPoly::zero(p);
  for (std::size_t i = 0; i < p.num_primes(); ++i) {
    const u64 pi = p.prime(i);
    for (std::size_t j = 0; j < p.n(); ++j) {
      out.c0.c[i][j] = mul_mod(ct.c0.c[i][j], w.c[i][j], pi);
      out.c1.c[i][j] = mul_mod(ct.c1.c[i][j], w.c[i][j], pi);
    }
    p.ntt(i).inverse(out.c0.c[i].data());
    p.ntt(i).inverse(out.c1.c[i].data());
  }
  return out;
}

Ciphertext add_ct(const BfvParams& p, const Ciphertext& a,
                  const Ciphertext& b) {
  Ciphertext out = a;
  for (std::size_t i = 0; i < p.num_primes(); ++i) {
    const u64 pi = p.prime(i);
    for (std::size_t j = 0; j < p.n(); ++j) {
      out.c0.c[i][j] = add_mod(out.c0.c[i][j], b.c0.c[i][j], pi);
      out.c1.c[i][j] = add_mod(out.c1.c[i][j], b.c1.c[i][j], pi);
    }
  }
  return out;
}

void add_plain_inplace(const BfvParams& p, Ciphertext& ct,
                       std::span<const u64> pt) {
  ABNN2_CHECK_ARG(pt.size() <= p.n(), "plaintext too long");
  const u64 tmask = mask_l(p.t_bits());
  for (std::size_t i = 0; i < p.num_primes(); ++i) {
    const u64 pi = p.prime(i);
    const u64 delta = p.delta_mod(i);
    for (std::size_t j = 0; j < pt.size(); ++j)
      ct.c0.c[i][j] =
          add_mod(ct.c0.c[i][j], mul_mod(delta, (pt[j] & tmask) % pi, pi), pi);
  }
}

void flood_noise_inplace(const BfvParams& p, Ciphertext& ct, Prg& prg,
                         std::size_t flood_bits) {
  // Centered uniform noise of ~2^flood_bits, identical across RNS
  // components (one integer polynomial).
  for (std::size_t j = 0; j < p.n(); ++j) {
    const i64 e = static_cast<i64>(prg.next_bits(flood_bits)) -
                  (i64{1} << (flood_bits - 1));
    for (std::size_t i = 0; i < p.num_primes(); ++i) {
      const u64 pi = p.prime(i);
      ct.c0.c[i][j] = add_mod(ct.c0.c[i][j], to_mod(e, pi), pi);
    }
  }
}

}  // namespace abnn2::he
