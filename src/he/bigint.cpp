#include "he/bigint.h"

namespace abnn2::he {

std::size_t BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  return 32 * (limbs_.size() - 1) +
         (32 - static_cast<std::size_t>(__builtin_clz(limbs_.back())));
}

BigUint& BigUint::add(const BigUint& o) {
  limbs_.resize(std::max(limbs_.size(), o.limbs_.size()) + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 s = carry + limbs_[i];
    if (i < o.limbs_.size()) s += o.limbs_[i];
    limbs_[i] = static_cast<u32>(s);
    carry = s >> 32;
  }
  ABNN2_CHECK(carry == 0, "bigint add overflow");
  trim();
  return *this;
}

BigUint& BigUint::sub(const BigUint& o) {
  ABNN2_CHECK(compare(*this, o) >= 0, "bigint sub underflow");
  i64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    i64 s = static_cast<i64>(limbs_[i]) - borrow;
    if (i < o.limbs_.size()) s -= static_cast<i64>(o.limbs_[i]);
    borrow = s < 0;
    limbs_[i] = static_cast<u32>(s + (borrow << 32));
  }
  trim();
  return *this;
}

BigUint& BigUint::mul_small(u64 v) {
  const u32 lo = static_cast<u32>(v), hi = static_cast<u32>(v >> 32);
  BigUint a = *this, b = *this;
  // *this * lo
  u64 carry = 0;
  for (auto& limb : a.limbs_) {
    const u64 p = static_cast<u64>(limb) * lo + carry;
    limb = static_cast<u32>(p);
    carry = p >> 32;
  }
  if (carry) a.limbs_.push_back(static_cast<u32>(carry));
  if (hi) {
    carry = 0;
    for (auto& limb : b.limbs_) {
      const u64 p = static_cast<u64>(limb) * hi + carry;
      limb = static_cast<u32>(p);
      carry = p >> 32;
    }
    if (carry) b.limbs_.push_back(static_cast<u32>(carry));
    b.limbs_.insert(b.limbs_.begin(), 0);  // * 2^32
    a.add(b);
  }
  a.trim();
  *this = std::move(a);
  return *this;
}

BigUint& BigUint::shift_left_bits(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  const std::size_t words = bits / 32, rem = bits % 32;
  limbs_.insert(limbs_.begin(), words, 0);
  if (rem) {
    u32 carry = 0;
    for (std::size_t i = words; i < limbs_.size(); ++i) {
      const u32 nc = limbs_[i] >> (32 - rem);
      limbs_[i] = (limbs_[i] << rem) | carry;
      carry = nc;
    }
    if (carry) limbs_.push_back(carry);
  }
  return *this;
}

int BigUint::compare(const BigUint& a, const BigUint& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

std::pair<BigUint, BigUint> BigUint::divmod(const BigUint& d) const {
  ABNN2_CHECK_ARG(!d.is_zero(), "division by zero");
  if (compare(*this, d) < 0) return {BigUint{}, *this};
  if (d.limbs_.size() == 1) {  // short division
    BigUint q;
    q.limbs_.resize(limbs_.size());
    u64 rem = 0;
    const u64 dv = d.limbs_[0];
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const u64 cur = (rem << 32) | limbs_[i];
      q.limbs_[i] = static_cast<u32>(cur / dv);
      rem = cur % dv;
    }
    q.trim();
    return {q, BigUint(rem)};
  }

  // Knuth Algorithm D (TAOCP 4.3.1), base 2^32.
  const std::size_t shift =
      static_cast<std::size_t>(__builtin_clz(d.limbs_.back()));
  BigUint u = *this, v = d;
  u.shift_left_bits(shift);
  v.shift_left_bits(shift);
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;
  u.limbs_.push_back(0);

  BigUint q;
  q.limbs_.resize(m + 1, 0);
  const u64 vtop = v.limbs_[n - 1];
  const u64 vsec = v.limbs_[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    const u64 num = (static_cast<u64>(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    u64 qhat = num / vtop;
    u64 rhat = num % vtop;
    while (qhat >= (u64{1} << 32) ||
           qhat * vsec > ((rhat << 32) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += vtop;
      if (rhat >= (u64{1} << 32)) break;
    }
    // u[j..j+n] -= qhat * v
    i64 borrow = 0;
    u64 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u64 p = qhat * v.limbs_[i] + carry;
      carry = p >> 32;
      const i64 t = static_cast<i64>(u.limbs_[i + j]) -
                    static_cast<i64>(p & 0xffffffffu) - borrow;
      u.limbs_[i + j] = static_cast<u32>(t);
      borrow = t < 0;
    }
    const i64 t = static_cast<i64>(u.limbs_[j + n]) - static_cast<i64>(carry) -
                  borrow;
    u.limbs_[j + n] = static_cast<u32>(t);
    if (t < 0) {  // add back
      --qhat;
      u64 c2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const u64 s = static_cast<u64>(u.limbs_[i + j]) + v.limbs_[i] + c2;
        u.limbs_[i + j] = static_cast<u32>(s);
        c2 = s >> 32;
      }
      u.limbs_[j + n] = static_cast<u32>(u.limbs_[j + n] + c2);
    }
    q.limbs_[j] = static_cast<u32>(qhat);
  }
  q.trim();
  // Remainder = u[0..n) >> shift.
  BigUint r;
  r.limbs_.assign(u.limbs_.begin(), u.limbs_.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  if (shift) {
    u32 carry = 0;
    for (std::size_t i = r.limbs_.size(); i-- > 0;) {
      const u32 nc = r.limbs_[i] << (32 - shift);
      r.limbs_[i] = (r.limbs_[i] >> shift) | carry;
      carry = nc;
    }
    r.trim();
  }
  return {q, r};
}

}  // namespace abnn2::he
