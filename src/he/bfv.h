// BFV-style RLWE additively homomorphic encryption with power-of-two
// plaintext modulus t = 2^l: the lattice-AHE substrate of the MiniONN
// baseline (DESIGN.md substitution #4).
//
// Supported homomorphic operations — exactly what MiniONN's offline
// triplet generation needs:
//   - ciphertext addition,
//   - ciphertext x plaintext-polynomial multiplication (negacyclic
//     convolution, used for the dot-product packing),
//   - plaintext addition (the server folds its random blinds in),
//   - noise flooding (circuit privacy of the server's weights).
//
// Parameters: ring dimension n = 4096, coefficient modulus q = product of
// 2 (l <= 32) or 3 (l <= 64) NTT-friendly ~59-bit primes, chosen so that the
// invariant-noise budget covers one plaintext multiplication by a polynomial
// of 1-norm up to n * 2^8 plus 2^40 flooding noise. Encryption is symmetric
// (the client owns the key; the server only computes homomorphically).
#pragma once

#include <memory>

#include "he/bigint.h"
#include "he/ntt.h"
#include "net/channel.h"

namespace abnn2::he {

class BfvParams {
 public:
  /// `t_bits` in [8, 64]; n defaults to 4096 (use smaller powers of two for
  /// tests).
  BfvParams(std::size_t t_bits, std::size_t n = 4096);

  std::size_t n() const { return n_; }
  std::size_t t_bits() const { return t_bits_; }
  std::size_t num_primes() const { return primes_.size(); }
  u64 prime(std::size_t i) const { return primes_[i]; }
  const NttTables& ntt(std::size_t i) const { return *ntt_[i]; }

  /// floor(q / t) reduced mod prime i (the Delta scaling).
  u64 delta_mod(std::size_t i) const { return delta_mod_[i]; }
  const BigUint& q() const { return q_; }
  const BigUint& delta() const { return delta_; }
  /// CRT composition helpers: garner_[i] = (q / p_i) * ((q/p_i)^-1 mod p_i).
  const BigUint& crt_term(std::size_t i) const { return crt_term_[i]; }

  /// Ciphertext size on the wire in bytes (2 polys x n x num_primes x 8).
  std::size_t ciphertext_bytes() const { return 2 * n_ * num_primes() * 8; }

 private:
  std::size_t n_, t_bits_;
  std::vector<u64> primes_;
  std::vector<std::unique_ptr<NttTables>> ntt_;
  std::vector<u64> delta_mod_;
  BigUint q_, delta_;
  std::vector<BigUint> crt_term_;
};

/// An RNS polynomial: per-prime coefficient vectors.
struct RnsPoly {
  std::vector<std::vector<u64>> c;  // c[prime][coeff]

  static RnsPoly zero(const BfvParams& p);
};

struct Ciphertext {
  RnsPoly c0, c1;

  void serialize(Writer& w) const;
  static Ciphertext deserialize(Reader& r, const BfvParams& p);
};

class SecretKey {
 public:
  /// Fresh ternary key.
  SecretKey(const BfvParams& p, Prg& prg);

  /// Encrypts a plaintext polynomial with coefficients mod t (given as
  /// ring elements of Z_{2^t_bits}).
  Ciphertext encrypt(const BfvParams& p, std::span<const u64> pt,
                     Prg& prg) const;

  /// Decrypts to coefficients mod t.
  std::vector<u64> decrypt(const BfvParams& p, const Ciphertext& ct) const;

 private:
  RnsPoly s_ntt_;  // key kept in evaluation domain
};

/// ct * pt-polynomial (negacyclic convolution); pt coefficients are SIGNED
/// integers (weights).
Ciphertext mul_plain(const BfvParams& p, const Ciphertext& ct,
                     std::span<const i64> pt);

/// Precomputed NTT-domain plaintext polynomial: amortizes the forward
/// transform of a weight block across all batch columns.
struct PlainNtt {
  std::vector<std::vector<u64>> c;
};
PlainNtt prepare_plain(const BfvParams& p, std::span<const i64> pt);

/// Ciphertext transformed to the evaluation domain once, multiplied by many
/// prepared plaintexts.
struct CiphertextNtt {
  RnsPoly c0, c1;
};
CiphertextNtt to_ntt(const BfvParams& p, const Ciphertext& ct);
Ciphertext mul_prepared(const BfvParams& p, const CiphertextNtt& ct,
                        const PlainNtt& w);

/// ct + ct.
Ciphertext add_ct(const BfvParams& p, const Ciphertext& a,
                  const Ciphertext& b);

/// ct + Delta * pt (plaintext addition, pt mod t).
void add_plain_inplace(const BfvParams& p, Ciphertext& ct,
                       std::span<const u64> pt);

/// Adds uniform flooding noise of ~2^flood_bits to c0 (circuit privacy).
void flood_noise_inplace(const BfvParams& p, Ciphertext& ct, Prg& prg,
                         std::size_t flood_bits = 40);

}  // namespace abnn2::he
