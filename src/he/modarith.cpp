#include "he/modarith.h"

namespace abnn2::he {

bool is_prime(u64 n) {
  if (n < 2) return false;
  for (u64 p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull,
                29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  u64 d = n - 1;
  int s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  // Witness set proven sufficient for all n < 3.3e24.
  for (u64 a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull,
                29ull, 31ull, 37ull}) {
    u64 x = pow_mod(a % n, d, n);
    if (x == 0 || x == 1 || x == n - 1) continue;
    bool witness = true;
    for (int i = 0; i < s - 1; ++i) {
      x = mul_mod(x, x, n);
      if (x == n - 1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

u64 next_ntt_prime(u64 start, u64 modulus_step) {
  u64 p = start - (start % modulus_step) + 1;
  if (p < start) p += modulus_step;
  while (!is_prime(p)) p += modulus_step;
  return p;
}

u64 find_primitive_root(u64 p, u64 two_n, Prg& prg) {
  ABNN2_CHECK_ARG((p - 1) % two_n == 0, "2n does not divide p-1");
  const u64 cofactor = (p - 1) / two_n;
  for (int attempt = 0; attempt < 4096; ++attempt) {
    const u64 x = prg.next_below(p - 2) + 2;
    const u64 r = pow_mod(x, cofactor, p);
    // r has order dividing 2n; it is primitive iff r^n == -1.
    if (pow_mod(r, two_n / 2, p) == p - 1) return r;
  }
  throw ProtocolError("no primitive root found");
}

}  // namespace abnn2::he
