// 64-bit modular arithmetic, deterministic Miller-Rabin primality, and
// NTT-friendly prime / primitive-root search. Substrate for the RLWE
// additively-homomorphic scheme used by the MiniONN baseline.
#pragma once

#include <vector>

#include "common/defines.h"
#include "crypto/prg.h"

namespace abnn2::he {

inline u64 add_mod(u64 a, u64 b, u64 p) {
  const u64 s = a + b;
  return (s >= p || s < a) ? s - p : s;
}

inline u64 sub_mod(u64 a, u64 b, u64 p) { return a >= b ? a - b : a + p - b; }

inline u64 mul_mod(u64 a, u64 b, u64 p) {
  return static_cast<u64>((static_cast<u128>(a) * b) % p);
}

inline u64 pow_mod(u64 base, u64 exp, u64 p) {
  u64 r = 1 % p;
  base %= p;
  while (exp) {
    if (exp & 1) r = mul_mod(r, base, p);
    base = mul_mod(base, base, p);
    exp >>= 1;
  }
  return r;
}

inline u64 inv_mod(u64 a, u64 p) { return pow_mod(a, p - 2, p); }  // p prime

/// Deterministic Miller-Rabin for 64-bit integers (fixed witness set that is
/// proven complete below 3.3 * 10^24).
bool is_prime(u64 n);

/// Smallest prime p >= start with p = 1 (mod modulus_step); used to find
/// NTT-friendly primes (step = 2n).
u64 next_ntt_prime(u64 start, u64 modulus_step);

/// A primitive 2n-th root of unity mod p (requires 2n | p-1).
u64 find_primitive_root(u64 p, u64 two_n, Prg& prg);

}  // namespace abnn2::he
