#include "he/ntt.h"

namespace abnn2::he {
namespace {

u32 bit_reverse(u32 x, int bits) {
  u32 r = 0;
  for (int i = 0; i < bits; ++i) {
    r = (r << 1) | (x & 1);
    x >>= 1;
  }
  return r;
}

}  // namespace

NttTables::NttTables(std::size_t n, u64 p, Prg& prg) : n_(n), p_(p) {
  ABNN2_CHECK_ARG(n >= 2 && (n & (n - 1)) == 0, "n must be a power of two");
  ABNN2_CHECK_ARG((p - 1) % (2 * n) == 0, "p must be 1 mod 2n");
  const u64 psi = find_primitive_root(p, 2 * n, prg);
  const u64 psi_inv = inv_mod(psi, p);
  const int bits = __builtin_ctzll(n);
  psi_.resize(n);
  psi_inv_.resize(n);
  u64 pw = 1, pwi = 1;
  std::vector<u64> fwd(n), inv(n);
  for (std::size_t i = 0; i < n; ++i) {
    fwd[i] = pw;
    inv[i] = pwi;
    pw = mul_mod(pw, psi, p);
    pwi = mul_mod(pwi, psi_inv, p);
  }
  for (std::size_t i = 0; i < n; ++i) {
    psi_[i] = fwd[bit_reverse(static_cast<u32>(i), bits)];
    psi_inv_[i] = inv[bit_reverse(static_cast<u32>(i), bits)];
  }
  n_inv_ = inv_mod(n, p);
}

void NttTables::forward(u64* a) const {
  // Harvey-style CT butterflies (plain Barrett via u128 here).
  std::size_t t = n_ >> 1;
  for (std::size_t m = 1; m < n_; m <<= 1) {
    for (std::size_t i = 0; i < m; ++i) {
      const u64 s = psi_[m + i];
      const std::size_t j1 = 2 * i * t;
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const u64 u = a[j];
        const u64 v = mul_mod(a[j + t], s, p_);
        a[j] = add_mod(u, v, p_);
        a[j + t] = sub_mod(u, v, p_);
      }
    }
    t >>= 1;
  }
}

void NttTables::inverse(u64* a) const {
  // Gentleman-Sande butterflies.
  std::size_t t = 1;
  for (std::size_t m = n_ >> 1; m >= 1; m >>= 1) {
    for (std::size_t i = 0; i < m; ++i) {
      const u64 s = psi_inv_[m + i];
      const std::size_t j1 = 2 * i * t;
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const u64 u = a[j];
        const u64 v = a[j + t];
        a[j] = add_mod(u, v, p_);
        a[j + t] = mul_mod(sub_mod(u, v, p_), s, p_);
      }
    }
    t <<= 1;
  }
  for (std::size_t i = 0; i < n_; ++i) a[i] = mul_mod(a[i], n_inv_, p_);
}

}  // namespace abnn2::he
