// Negacyclic number-theoretic transform over Z_p[x]/(x^n + 1) (n a power of
// two, p = 1 mod 2n). Standard Cooley-Tukey / Gentleman-Sande butterflies
// with the 2n-th root powers folded in, so pointwise products realize
// negacyclic convolution directly.
#pragma once

#include <vector>

#include "he/modarith.h"

namespace abnn2::he {

class NttTables {
 public:
  NttTables(std::size_t n, u64 p, Prg& prg);

  std::size_t n() const { return n_; }
  u64 modulus() const { return p_; }

  /// In-place forward NTT (coefficient -> evaluation domain).
  void forward(u64* a) const;
  /// In-place inverse NTT.
  void inverse(u64* a) const;

 private:
  std::size_t n_;
  u64 p_;
  std::vector<u64> psi_;      // psi powers, bit-reversed order
  std::vector<u64> psi_inv_;  // inverse psi powers, bit-reversed order
  u64 n_inv_;
};

}  // namespace abnn2::he
