#include "serve/supervisor.h"

#include <cinttypes>
#include <cstdio>

#include "net/framed_channel.h"
#include "nn/model_io.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "serve/progress_channel.h"

namespace abnn2::serve {

// ---- ModelRegistry --------------------------------------------------------

std::array<u8, 32> ModelRegistry::add(nn::Model m) {
  auto sp = std::make_shared<const nn::Model>(std::move(m));
  sp->validate();
  const auto digest = nn::model_digest(*sp);
  if (models_.empty()) default_digest_ = digest;
  models_[digest] = std::move(sp);
  return digest;
}

ModelRegistry::Resolved ModelRegistry::resolve(
    const std::array<u8, 32>& digest) const {
  ABNN2_CHECK(!models_.empty(), "model registry is empty");
  const auto it = models_.find(digest);
  if (it != models_.end()) return {it->second, it->first};
  // All-zeros ("any model") and unknown digests both resolve to the default;
  // a client that pinned a digest we do not serve rejects the handshake on
  // its side with the digest it actually got.
  return {models_.at(default_digest_), default_digest_};
}

// ---- per-worker / per-session state --------------------------------------

/// Watchdog state for one worker. `in_use`/`sock` are guarded by `mu` so the
/// watchdog's timeout check cannot interleave with a session starting or
/// ending on the slot; the activity stamp and cancel flag are atomics shared
/// with the worker's ProgressChannel.
struct Supervisor::Slot {
  std::mutex mu;
  bool in_use = false;            // guarded by mu
  SocketChannel* sock = nullptr;  // guarded by mu
  std::atomic<bool> cancelled{false};
  std::atomic<u64> last_activity_ms{0};
};

/// Retained per-session state, keyed by token in sessions_. The
/// InferenceServer inside holds any completed offline material between
/// connections; `in_use` (guarded by sessions_mu_) keeps two connections
/// presenting the same token from sharing it.
struct Supervisor::Entry {
  std::array<u8, 32> digest;
  core::InferenceServer server;
  bool in_use = false;    // guarded by sessions_mu_
  u64 last_used_ms = 0;   // guarded by sessions_mu_; LRU eviction key

  Entry(std::shared_ptr<const nn::Model> model,
        const core::InferenceConfig& cfg, const std::array<u8, 32>& d)
      : digest(d), server(std::move(model), cfg, &digest) {}
};

// ---- Supervisor -----------------------------------------------------------

Supervisor::Supervisor(ModelRegistry registry, core::InferenceConfig cfg,
                       ServeOptions opts)
    : registry_(std::move(registry)),
      cfg_(cfg),
      opts_(opts),
      listener_(opts.port) {
  ABNN2_CHECK_ARG(registry_.size() > 0, "supervisor needs at least one model");
  ABNN2_CHECK_ARG(opts_.max_sessions >= 1, "max_sessions must be >= 1");
  if (cfg_.threads != 0) {
    // Size the process-wide pool once; set_threads is not safe while
    // sessions are running, so per-session servers get threads == 0.
    runtime::set_threads(cfg_.threads);
    cfg_.threads = 0;
  }
  slots_.reserve(opts_.max_sessions);
  for (std::size_t i = 0; i < opts_.max_sessions; ++i)
    slots_.push_back(std::make_unique<Slot>());
  workers_.reserve(opts_.max_sessions);
  for (std::size_t i = 0; i < opts_.max_sessions; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
  watchdog_thread_ = std::thread([this] { watchdog_main(); });
  listener_thread_ = std::thread([this] { listener_main(); });
}

Supervisor::~Supervisor() { stop(); }

void Supervisor::listener_main() {
  SocketOptions aopts;
  aopts.accept_timeout_ms = 100;  // re-check the draining flag between waits
  aopts.recv_timeout_ms = opts_.recv_timeout_ms;
  while (!draining_.load(std::memory_order_acquire)) {
    std::unique_ptr<SocketChannel> sock;
    try {
      sock = listener_.accept(aopts);
    } catch (const ChannelTimeout&) {
      continue;
    } catch (const ChannelError& e) {
      if (draining_.load(std::memory_order_acquire)) break;
      std::fprintf(stderr, "[serve] accept failed: %s\n", e.what());
      continue;
    }
    ++accepted_;
    // Admission control: beyond the cap the client gets a fast, explicit
    // BUSY instead of a connection that hangs until some session finishes.
    if (active_.load(std::memory_order_acquire) >= opts_.max_sessions) {
      reject_busy(std::move(sock));
      continue;
    }
    const u64 n = ++active_;
    obs::set_gauge("serve.active_sessions", static_cast<double>(n));
    {
      std::lock_guard<std::mutex> lk(queue_mu_);
      if (queue_shutdown_) {  // drain won the race; drop the connection
        --active_;
        continue;
      }
      queue_.push_back(std::move(sock));
    }
    queue_cv_.notify_one();
  }
}

void Supervisor::reject_busy(std::unique_ptr<SocketChannel> sock) {
  ++rejected_busy_;
  obs::add_count("serve.sessions.rejected_busy", 1);
  try {
    // Read the hello before replying: it is already in flight, and closing
    // with unread data pending can RST the BUSY reply out from under the
    // client. The short deadline keeps a silent peer from stalling the
    // listener thread.
    sock->set_recv_timeout_ms(2'000);
    FramedChannel ch(*sock);
    (void)core::read_client_hello(ch);
    core::send_busy(ch, opts_.busy_retry_ms);
  } catch (const std::exception& e) {
    if (opts_.verbose)
      std::fprintf(stderr, "[serve] busy reject not delivered: %s\n", e.what());
  }
}

void Supervisor::worker_main(std::size_t idx) {
  Slot& slot = *slots_[idx];
  for (;;) {
    std::unique_ptr<SocketChannel> sock;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [this] { return queue_shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown, queue fully drained
      sock = std::move(queue_.front());
      queue_.pop_front();
    }
    serve_connection(slot, std::move(sock));
    const u64 n = --active_;
    obs::set_gauge("serve.active_sessions", static_cast<double>(n));
  }
}

void Supervisor::serve_connection(Slot& slot,
                                  std::unique_ptr<SocketChannel> sock) {
  {
    std::lock_guard<std::mutex> lk(slot.mu);
    slot.last_activity_ms.store(steady_ms(), std::memory_order_relaxed);
    slot.cancelled.store(false, std::memory_order_release);
    slot.sock = sock.get();
    slot.in_use = true;
  }

  Entry* entry = nullptr;
  u64 token = 0;
  try {
    ProgressChannel prog(*sock, slot.last_activity_ms, slot.cancelled);
    FramedChannel ch(prog);
    obs::ScopedParty party(0);
    // One connection serves batches until the client hangs up (ChannelError
    // on the next hello read), a fault kills it, or a drain begins. The
    // hello is re-read every batch — the client sends a fresh one each time
    // — but the connection is routed to its session entry exactly once.
    for (;;) {
      const core::ClientHello hello = core::read_client_hello(ch);
      if (entry == nullptr) entry = route(hello, token);
      if (entry == nullptr) {
        // The session is still bound to its previous connection (teardown
        // lag after a reconnect, or a half-dead peer the watchdog has not
        // reaped yet). That is load, not a protocol violation: explicit
        // BUSY, the client backs off and retries with its token intact.
        ++rejected_busy_;
        obs::add_count("serve.sessions.rejected_busy", 1);
        if (opts_.verbose)
          std::fprintf(stderr,
                       "[serve] session token %" PRIu64
                       " still bound to its previous connection — BUSY\n",
                       hello.session_token);
        core::send_busy(ch, opts_.busy_retry_ms);
        break;
      }
      obs::Scope span("session", &ch, static_cast<i64>(token));
      entry->server.run_offline(ch, hello);
      if (entry->server.last_resume_granted()) {
        ++resumed_;
        obs::add_count("serve.sessions.resumed", 1);
        if (opts_.verbose)
          std::fprintf(stderr,
                       "[serve] session %" PRIu64
                       " resumed at the online phase\n",
                       token);
      }
      entry->server.run_online(ch);
      ++batches_served_;
      obs::add_count("serve.batches_served", 1);
      if (draining_.load(std::memory_order_acquire)) break;
    }
  } catch (const ProtocolError& e) {
    ++protocol_errors_;
    if (opts_.verbose)
      std::fprintf(stderr, "[serve] session %" PRIu64 " protocol error: %s\n",
                   token, e.what());
  } catch (const ChannelError& e) {
    ++channel_errors_;
    if (opts_.verbose)
      std::fprintf(stderr, "[serve] session %" PRIu64 " connection lost: %s\n",
                   token, e.what());
  }

  {
    std::lock_guard<std::mutex> lk(slot.mu);
    slot.in_use = false;
    slot.sock = nullptr;
  }
  if (entry) release_entry(entry, token);
}

Supervisor::Entry* Supervisor::route(const core::ClientHello& hello,
                                     u64& token_out) {
  if (hello.session_token != 0) {
    // A reconnect routinely races the teardown of the session's previous
    // connection: the client has already closed its old socket, but the
    // worker bound to it has not observed the EOF yet. Wait briefly for the
    // binding to release; if it stays bound (a half-dead connection only
    // the watchdog will clear), report BUSY via nullptr rather than failing
    // the handshake — the client's token and retained material stay valid.
    for (int waited_ms = 0;; waited_ms += 5) {
      {
        std::lock_guard<std::mutex> lk(sessions_mu_);
        const auto it = sessions_.find(hello.session_token);
        if (it == sessions_.end()) break;  // evicted or server restarted:
                                           // fall through to a fresh session;
                                           // run_offline denies the resume
                                           // cleanly and the client learns
                                           // its new token from the hello.
        Entry* e = it->second.get();
        if (!e->in_use) {
          e->in_use = true;
          token_out = hello.session_token;
          return e;
        }
      }
      if (waited_ms >= 250) return nullptr;  // still bound: caller sends BUSY
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  std::lock_guard<std::mutex> lk(sessions_mu_);
  auto resolved = registry_.resolve(hello.model_digest);
  const u64 token = next_token_++;
  auto entry = std::make_unique<Entry>(std::move(resolved.model), cfg_,
                                       resolved.digest);
  entry->server.set_session_token(token);
  Entry* raw = entry.get();
  raw->in_use = true;
  sessions_[token] = std::move(entry);
  token_out = token;
  return raw;
}

void Supervisor::release_entry(Entry* entry, u64 token) {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  entry->server.reset_session();  // per-connection crypto state dies here
  entry->in_use = false;
  entry->last_used_ms = steady_ms();
  (void)token;
  // Bound memory: LRU-evict idle entries beyond the cap. Evicting an entry
  // that still holds offline material costs its client a full offline rerun
  // (counted, so capacity pressure is visible).
  for (;;) {
    std::size_t idle = 0;
    auto lru = sessions_.end();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->second->in_use) continue;
      ++idle;
      if (lru == sessions_.end() ||
          it->second->last_used_ms < lru->second->last_used_ms)
        lru = it;
    }
    if (idle <= opts_.retained_cap || lru == sessions_.end()) break;
    if (lru->second->server.has_offline_material()) {
      ++retained_evicted_;
      std::fprintf(stderr,
                   "[serve] evicting idle session %" PRIu64
                   " with retained offline material (retained_cap %zu)\n",
                   lru->first, opts_.retained_cap);
    }
    sessions_.erase(lru);
  }
}

void Supervisor::watchdog_main() {
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (opts_.watchdog_ms <= 0) continue;
    const u64 now = steady_ms();
    for (auto& sp : slots_) {
      Slot& s = *sp;
      std::lock_guard<std::mutex> lk(s.mu);
      if (!s.in_use) continue;
      const u64 last = s.last_activity_ms.load(std::memory_order_relaxed);
      if (now <= last + static_cast<u64>(opts_.watchdog_ms)) continue;
      if (s.cancelled.exchange(true, std::memory_order_acq_rel)) continue;
      if (s.sock) s.sock->shutdown_now();
      ++reaped_;
      obs::add_count("serve.sessions.reaped", 1);
      std::fprintf(stderr,
                   "[serve] watchdog: no frame progress in %d ms — reaping "
                   "session (completed offline material retained for resume)\n",
                   opts_.watchdog_ms);
    }
  }
}

void Supervisor::drain() { drain_with_deadline(opts_.drain_deadline_ms); }

void Supervisor::stop() { drain_with_deadline(0); }

void Supervisor::drain_with_deadline(int deadline_ms) {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) {
    // Someone else is (or was) draining; wait for teardown to finish.
    while (!stopped_.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return;
  }
  if (listener_thread_.joinable()) listener_thread_.join();

  // Admitted-but-unstarted connections are dropped, not served: "in flight"
  // means a worker is in the middle of a batch. Their clients see a closed
  // connection and retry elsewhere/later.
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    queue_shutdown_ = true;
    active_ -= queue_.size();
    queue_.clear();
  }
  queue_cv_.notify_all();

  const u64 deadline =
      steady_ms() + static_cast<u64>(deadline_ms < 0 ? 0 : deadline_ms);
  while (active_.load(std::memory_order_acquire) > 0 && steady_ms() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // Force-reap sessions still running at the deadline; their clients keep
  // resumable material on both sides.
  for (auto& sp : slots_) {
    Slot& s = *sp;
    std::lock_guard<std::mutex> lk(s.mu);
    if (!s.in_use) continue;
    if (s.cancelled.exchange(true, std::memory_order_acq_rel)) continue;
    if (s.sock) s.sock->shutdown_now();
    ++reaped_;
    obs::add_count("serve.sessions.reaped", 1);
    std::fprintf(stderr,
                 "[serve] drain: session still in flight at the %d ms "
                 "deadline — reaping\n",
                 deadline_ms);
  }
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  watchdog_stop_.store(true, std::memory_order_release);
  if (watchdog_thread_.joinable()) watchdog_thread_.join();

  // Checkpoint: what a restarted server would want to know about this one.
  const SupervisorStats st = stats();
  std::fprintf(
      stderr,
      "[serve] drained: %" PRIu64 " batches served, %" PRIu64
      " resumed, %" PRIu64 " reaped, %" PRIu64 " busy-rejected, %" PRIu64
      " evicted; retained offline material for %" PRIu64 " session(s)\n",
      st.batches_served, st.resumed, st.reaped, st.rejected_busy,
      st.retained_evicted, st.retained_with_material);
  stopped_.store(true, std::memory_order_release);
}

SupervisorStats Supervisor::stats() const {
  SupervisorStats st;
  st.accepted = accepted_.load(std::memory_order_relaxed);
  st.rejected_busy = rejected_busy_.load(std::memory_order_relaxed);
  st.reaped = reaped_.load(std::memory_order_relaxed);
  st.resumed = resumed_.load(std::memory_order_relaxed);
  st.batches_served = batches_served_.load(std::memory_order_relaxed);
  st.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  st.channel_errors = channel_errors_.load(std::memory_order_relaxed);
  st.retained_evicted = retained_evicted_.load(std::memory_order_relaxed);
  st.active_sessions = active_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (const auto& [tok, e] : sessions_)
      // Entries bound to a live connection are the worker's to touch;
      // idle ones are frozen under sessions_mu_ and safe to inspect.
      if (!e->in_use && e->server.has_offline_material())
        ++st.retained_with_material;
  }
  return st;
}

}  // namespace abnn2::serve
