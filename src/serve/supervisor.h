// Supervised concurrent inference service.
//
// A Supervisor owns one listening socket and a bounded pool of worker
// threads, each serving one framed TCP session at a time. Every session is
// its own fault domain:
//
//   admission   — at most `max_sessions` sessions are admitted; excess
//                 connections get an explicit BUSY handshake reply (with a
//                 retry-after hint) instead of queueing unboundedly or
//                 hanging the client.
//   watchdog    — a session that makes no frame progress within
//                 `watchdog_ms` is reaped: its socket is shut down, its
//                 per-connection crypto state dropped, but any *completed*
//                 offline triplet material is retained so the client can
//                 reconnect and resume at the online phase.
//   drain       — drain() (wired to SIGTERM/SIGINT by tools/abnn2_server)
//                 stops accepting, lets in-flight batches finish under
//                 `drain_deadline_ms`, force-reaps laggards, and logs a
//                 checkpoint of retained offline material.
//
// Sessions are keyed by a server-assigned token carried in the protocol v3
// handshake: a reconnecting client presents its token and is routed back to
// the InferenceServer instance holding its retained material, regardless of
// which worker picks the connection up. The model itself is resolved from a
// ModelRegistry by the SHA-256 digest in the client hello, so one process
// can serve several models; per-session InferenceServers share each model
// via shared_ptr (weights are read-only during serving).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/inference.h"
#include "net/socket_channel.h"
#include "nn/model.h"

namespace abnn2::serve {

/// Read-only model catalogue, fully populated before the Supervisor starts
/// (immutable during serving — lock-free lookups). The first model added is
/// the default, served to clients whose hello carries an all-zeros digest.
class ModelRegistry {
 public:
  /// Validates, hashes and stores the model; returns its digest.
  std::array<u8, 32> add(nn::Model m);

  struct Resolved {
    std::shared_ptr<const nn::Model> model;
    std::array<u8, 32> digest;  // the served model's digest, already computed
  };

  /// Resolves a hello digest. All-zeros or unknown digests resolve to the
  /// default model — an unknown digest is NOT a server-side error, the
  /// client's own digest pin rejects the mismatch (the established
  /// trust-but-verify split from the v2 handshake). Throws on empty registry.
  Resolved resolve(const std::array<u8, 32>& digest) const;
  std::shared_ptr<const nn::Model> find(const std::array<u8, 32>& digest) const {
    return resolve(digest).model;
  }

  const std::array<u8, 32>& default_digest() const { return default_digest_; }
  std::size_t size() const { return models_.size(); }

 private:
  std::map<std::array<u8, 32>, std::shared_ptr<const nn::Model>> models_;
  std::array<u8, 32> default_digest_{};
};

struct ServeOptions {
  u16 port = 0;                   // 0 = ephemeral; read back with port()
  std::size_t max_sessions = 8;   // admission hard cap == worker pool size
  int watchdog_ms = 30'000;       // no frame progress within T => reaped
  int drain_deadline_ms = 10'000; // in-flight budget once drain() starts
  int recv_timeout_ms = 60'000;   // per-recv deadline inside a session
  u64 busy_retry_ms = 200;        // retry-after hint in the BUSY reply
  std::size_t retained_cap = 64;  // idle session entries kept for resume
  bool verbose = false;           // per-event log lines on stderr
};

/// Monotonic counters; snapshot via Supervisor::stats().
struct SupervisorStats {
  u64 accepted = 0;
  u64 rejected_busy = 0;
  u64 reaped = 0;
  u64 resumed = 0;
  u64 batches_served = 0;
  u64 protocol_errors = 0;
  u64 channel_errors = 0;
  u64 retained_evicted = 0;
  u64 active_sessions = 0;        // gauge: admitted and not yet torn down
  u64 retained_with_material = 0; // gauge: idle entries holding triplets
};

class Supervisor {
 public:
  /// Binds the port and starts the listener, worker pool and watchdog.
  /// `registry` must hold at least one model. cfg.threads is applied to the
  /// process-wide pool once here and zeroed for per-session servers
  /// (runtime::set_threads is not safe mid-flight).
  Supervisor(ModelRegistry registry, core::InferenceConfig cfg,
             ServeOptions opts);
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  u16 port() const { return listener_.port(); }

  /// Graceful shutdown: stop accepting, finish in-flight batches within the
  /// drain deadline, force-reap laggards, stop all threads, log a summary
  /// with retained-material counts. Idempotent; called by the destructor.
  void drain();
  /// drain() with a zero deadline: in-flight sessions are reaped now.
  void stop();

  SupervisorStats stats() const;

 private:
  struct Slot;   // per-worker watchdog state
  struct Entry;  // per-session retained state (token -> InferenceServer)

  void listener_main();
  void worker_main(std::size_t idx);
  void watchdog_main();
  void reject_busy(std::unique_ptr<SocketChannel> sock);
  void serve_connection(Slot& slot, std::unique_ptr<SocketChannel> sock);
  /// Binds the connection to its session entry. Returns nullptr when the
  /// token is still bound to its previous connection after a bounded wait
  /// (reconnect/teardown race) — the caller replies BUSY, not an error.
  Entry* route(const core::ClientHello& hello, u64& token_out);
  void release_entry(Entry* entry, u64 token);
  void drain_with_deadline(int deadline_ms);

  ModelRegistry registry_;
  core::InferenceConfig cfg_;
  ServeOptions opts_;
  SocketListener listener_;

  // ---- session registry (token -> retained state) ----------------------
  mutable std::mutex sessions_mu_;
  std::map<u64, std::unique_ptr<Entry>> sessions_;
  u64 next_token_ = 1;

  // ---- accepted-connection queue ---------------------------------------
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<SocketChannel>> queue_;
  bool queue_shutdown_ = false;

  // ---- threads & flags --------------------------------------------------
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> workers_;
  std::thread listener_thread_;
  std::thread watchdog_thread_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> watchdog_stop_{false};
  std::atomic<bool> stopped_{false};

  // ---- counters ----------------------------------------------------------
  std::atomic<u64> active_{0};
  std::atomic<u64> accepted_{0};
  std::atomic<u64> rejected_busy_{0};
  std::atomic<u64> reaped_{0};
  std::atomic<u64> resumed_{0};
  std::atomic<u64> batches_served_{0};
  std::atomic<u64> protocol_errors_{0};
  std::atomic<u64> channel_errors_{0};
  std::atomic<u64> retained_evicted_{0};
};

}  // namespace abnn2::serve
