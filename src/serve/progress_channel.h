// Liveness decorator for supervised sessions.
//
// Sits between the raw SocketChannel and the FramedChannel of a served
// session. Every successful send/recv stamps a shared atomic with the
// current steady-clock time; the supervisor's watchdog thread reads the
// stamp to detect sessions that have made no frame progress within the
// deadline. A shared `cancelled` flag lets the supervisor (watchdog reap or
// drain force-stop) fail the session's next channel operation even when the
// worker is between blocking calls — the companion to
// SocketChannel::shutdown_now(), which unblocks a call already in flight.
//
// Granularity note: the stamp advances once per completed frame-sized
// operation, not per byte, so a single transfer larger than
// watchdog_ms * link_bandwidth can be reaped mid-flight. Frames in this
// codebase are at most a few MB; on any realistic link that is far below
// the default 30 s deadline.
#pragma once

#include <atomic>
#include <chrono>

#include "net/channel.h"

namespace abnn2::serve {

/// Milliseconds on the steady clock; the supervisor's common time base.
inline u64 steady_ms() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class ProgressChannel final : public Channel {
 public:
  /// Does not own `inner`; `last_activity_ms` and `cancelled` are owned by
  /// the supervisor's per-worker slot and outlive this channel.
  ProgressChannel(Channel& inner, std::atomic<u64>& last_activity_ms,
                  std::atomic<bool>& cancelled)
      : inner_(inner), last_(last_activity_ms), cancelled_(cancelled) {
    last_.store(steady_ms(), std::memory_order_relaxed);
  }

 protected:
  void do_send(const void* data, std::size_t n) override {
    check_cancelled();
    inner_.send(data, n);
    last_.store(steady_ms(), std::memory_order_relaxed);
  }
  void do_recv(void* data, std::size_t n) override {
    check_cancelled();
    inner_.recv(data, n);
    last_.store(steady_ms(), std::memory_order_relaxed);
  }

 private:
  void check_cancelled() const {
    if (cancelled_.load(std::memory_order_acquire))
      throw ChannelError(
          "session cancelled by supervisor (watchdog reap or drain)");
  }

  Channel& inner_;
  std::atomic<u64>& last_;
  std::atomic<bool>& cancelled_;
};

}  // namespace abnn2::serve
