// Observability layer: protocol tracing spans and per-layer metrics.
//
// One instrumentation API shared by the engine, the benches, the examples
// and the tests, instead of every caller diffing raw ChannelStats by hand:
//
//   obs::Collector col;                    // owns spans + counters + gauges
//   obs::Collector* prev = obs::set_collector(&col);
//   { obs::Scope s("triplets", &ch, li);   // RAII span, channel-attributed
//     ... protocol work ...
//   }                                      // dtor records wall time + the
//                                          // ChannelStats delta on `ch`
//   obs::set_collector(prev);
//   col.write_chrome_trace(os);            // chrome://tracing / Perfetto
//   col.write_summary(os);                 // plain-text per-layer table
//
// Overhead contract: with no collector installed (the default), a Scope is
// one relaxed atomic load — no allocation, no clock read, no channel
// snapshot, and nothing is ever sent on the wire either way, so the
// transcript is byte-identical with tracing on or off. The engine is
// instrumented unconditionally; only an installed collector makes the
// spans observable.
//
// Span taxonomy (see DESIGN.md "Observability"): top-level phase spans
// ("offline", "online") nest the protocol steps ("handshake", "model-arch",
// "backend-setup", "triplets[i]", "linear[i]", "relu[i]", "maxpool[i]",
// "reveal", "argmax", "send-input") above the primitive spans emitted by the
// OT extensions ("iknp/base-ot", "iknp/extend", "kk13/base-ot",
// "kk13/extend"), the garbled-circuit engine ("gc/garbler-run",
// "gc/eval-run", "gc/garble", "gc/eval") and the thread pool
// ("pool/slice[s]", tagged with the executing pool thread id).
//
// Parties: both endpoints of an in-process two-party run share one
// process-global collector; spans carry the party tag of their thread
// (obs::ScopedParty, set by InferenceServer/Client: 0 = server,
// 1 = client, -1 = untagged, e.g. pool workers). Exporters map the party to
// the Chrome trace pid. Nesting depth is tracked per thread, so "sum the
// depth-0 spans of one party" reproduces that endpoint's ChannelStats
// exactly when all traffic flows inside top-level spans (golden-schema
// tested).
#pragma once

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "net/channel.h"

namespace abnn2::obs {

/// One closed span. `name` already carries the index suffix ("triplets[2]").
struct SpanRecord {
  std::string name;
  int party = -1;       // 0 server, 1 client, -1 untagged (pool workers, ...)
  u32 tid = 0;          // stable small id of the recording thread
  u32 depth = 0;        // nesting depth on the recording thread when opened
  double start_us = 0;  // relative to the collector's epoch
  double dur_us = 0;
  bool has_traffic = false;  // true iff a Channel was attributed
  ChannelStats traffic;      // endpoint ChannelStats delta over the span
};

/// Thread-safe sink for spans, counters and gauges, with two exporters.
/// A Collector must outlive every Scope opened while it is installed.
class Collector {
 public:
  Collector();

  void record(SpanRecord r);
  void add_count(std::string_view name, u64 v);
  void set_gauge(std::string_view name, double v);

  std::vector<SpanRecord> spans() const;
  std::map<std::string, u64> counters() const;
  std::map<std::string, double> gauges() const;
  std::size_t span_count() const;
  void clear();

  /// Microseconds since this collector's construction (span timestamps).
  double now_us() const;

  /// Chrome trace_event JSON ("X" complete events + process-name metadata
  /// + "C" counter events); loads in chrome://tracing and Perfetto.
  void write_chrome_trace(std::ostream& os) const;
  /// Plain-text per-span aggregate table (per party, insertion order),
  /// followed by counters and gauges.
  void write_summary(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::map<std::string, u64> counters_;
  std::map<std::string, double> gauges_;
  double epoch_ns_ = 0;  // steady_clock origin, captured at construction
};

namespace detail {
inline std::atomic<Collector*> g_collector{nullptr};
/// Count of Scope activations (spans actually opened against a collector).
/// With tracing disabled this never moves — the zero-overhead test pins it.
inline std::atomic<u64> g_activations{0};
inline int& tl_party() {
  thread_local int party = -1;
  return party;
}
inline u32& tl_depth() {
  thread_local u32 depth = 0;
  return depth;
}
}  // namespace detail

/// Installs `c` as the process-global collector (nullptr disables tracing).
/// Returns the previously installed collector so callers can restore it.
inline Collector* set_collector(Collector* c) {
  return detail::g_collector.exchange(c, std::memory_order_acq_rel);
}
inline Collector* collector() {
  return detail::g_collector.load(std::memory_order_acquire);
}
inline bool enabled() { return collector() != nullptr; }

/// Stable small per-thread id (assigned on first use; used as trace tid).
inline u32 thread_id() {
  static std::atomic<u32> next{1};
  thread_local const u32 id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

inline u64 debug_activation_count() {
  return detail::g_activations.load(std::memory_order_relaxed);
}

/// Tags every span opened on this thread (and only this thread) with a
/// party id for the span's lifetime. InferenceServer uses 0, InferenceClient
/// uses 1; threads that never set it stay -1 (untagged).
class ScopedParty {
 public:
  explicit ScopedParty(int party) : prev_(detail::tl_party()) {
    detail::tl_party() = party;
  }
  ~ScopedParty() { detail::tl_party() = prev_; }
  ScopedParty(const ScopedParty&) = delete;
  ScopedParty& operator=(const ScopedParty&) = delete;

 private:
  int prev_;
};

inline int current_party() { return detail::tl_party(); }

/// RAII tracing span. When a Channel is attributed, the span records that
/// endpoint's ChannelStats delta (bytes/messages/rounds) between open and
/// close; `index >= 0` suffixes the name ("triplets[3]") so per-layer spans
/// aggregate into per-layer rows. With no collector installed, construction
/// is a single relaxed atomic load and nothing else happens.
class Scope {
 public:
  explicit Scope(const char* name, Channel* ch = nullptr, i64 index = -1) {
    Collector* c = detail::g_collector.load(std::memory_order_acquire);
    if (!c) return;
    col_ = c;
    name_ = name;
    index_ = index;
    ch_ = ch;
    party_ = detail::tl_party();
    depth_ = detail::tl_depth()++;
    detail::g_activations.fetch_add(1, std::memory_order_relaxed);
    if (ch_) start_traffic_ = ch_->snapshot();
    start_us_ = c->now_us();
  }
  ~Scope() {
    if (!col_) return;
    --detail::tl_depth();
    SpanRecord r;
    r.name = index_ >= 0
                 ? std::string(name_) + "[" + std::to_string(index_) + "]"
                 : std::string(name_);
    r.party = party_;
    r.tid = thread_id();
    r.depth = depth_;
    r.start_us = start_us_;
    r.dur_us = col_->now_us() - start_us_;
    if (ch_) {
      r.traffic = ch_->snapshot() - start_traffic_;
      r.has_traffic = true;
    }
    col_->record(std::move(r));
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Collector* col_ = nullptr;
  Channel* ch_ = nullptr;
  const char* name_ = nullptr;
  i64 index_ = -1;
  int party_ = -1;
  u32 depth_ = 0;
  double start_us_ = 0;
  ChannelStats start_traffic_;
};

/// Monotonic counter / gauge convenience wrappers; no-ops when disabled.
inline void add_count(std::string_view name, u64 v) {
  if (Collector* c = collector()) c->add_count(name, v);
}
inline void set_gauge(std::string_view name, double v) {
  if (Collector* c = collector()) c->set_gauge(name, v);
}

// ---- process-global trace file ------------------------------------------
//
// `ABNN2_TRACE=<path>` (or InferenceConfig::trace_path) installs a
// process-lifetime collector whose Chrome trace JSON is written to <path> by
// flush_trace() and automatically at process exit. The first path wins;
// later calls are no-ops, so the server and client constructors of an
// in-process two-party run share one trace.

/// Installs the global trace collector writing to `path` (empty = no-op,
/// idempotent, first path wins). Returns the active global collector.
Collector* init_trace(const std::string& path);
/// Initializes from the ABNN2_TRACE environment variable (checked once per
/// process). Returns true when a global trace collector is active.
bool init_trace_from_env();
/// Writes the global trace JSON to its path now (harmless without a trace).
void flush_trace();
/// Path of the active global trace file ("" when tracing is off).
const std::string& trace_path();

}  // namespace abnn2::obs
