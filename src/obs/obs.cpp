#include "obs/obs.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

namespace abnn2::obs {
namespace {

double steady_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Chrome trace pids: one synthetic "process" per party so Perfetto groups
// the two endpoints of an in-process run side by side.
int party_pid(int party) { return party < 0 ? 2 : party; }

const char* party_pname(int pid) {
  switch (pid) {
    case 0: return "party0 (server)";
    case 1: return "party1 (client)";
    default: return "untagged (pool workers)";
  }
}

void json_escape(std::ostream& os, std::string_view s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
}

void json_number(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  os << buf;
}

}  // namespace

Collector::Collector() : epoch_ns_(steady_ns()) {}

double Collector::now_us() const { return (steady_ns() - epoch_ns_) / 1e3; }

void Collector::record(SpanRecord r) {
  std::lock_guard lk(mu_);
  spans_.push_back(std::move(r));
}

void Collector::add_count(std::string_view name, u64 v) {
  std::lock_guard lk(mu_);
  counters_[std::string(name)] += v;
}

void Collector::set_gauge(std::string_view name, double v) {
  std::lock_guard lk(mu_);
  gauges_[std::string(name)] = v;
}

std::vector<SpanRecord> Collector::spans() const {
  std::lock_guard lk(mu_);
  return spans_;
}

std::map<std::string, u64> Collector::counters() const {
  std::lock_guard lk(mu_);
  return counters_;
}

std::map<std::string, double> Collector::gauges() const {
  std::lock_guard lk(mu_);
  return gauges_;
}

std::size_t Collector::span_count() const {
  std::lock_guard lk(mu_);
  return spans_.size();
}

void Collector::clear() {
  std::lock_guard lk(mu_);
  spans_.clear();
  counters_.clear();
  gauges_.clear();
}

void Collector::write_chrome_trace(std::ostream& os) const {
  std::vector<SpanRecord> spans;
  std::map<std::string, u64> counters;
  std::map<std::string, double> gauges;
  {
    std::lock_guard lk(mu_);
    spans = spans_;
    counters = counters_;
    gauges = gauges_;
  }

  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Process-name metadata for every pid that appears.
  bool pid_seen[3] = {false, false, false};
  for (const SpanRecord& s : spans) pid_seen[party_pid(s.party)] = true;
  for (int pid = 0; pid < 3; ++pid) {
    if (!pid_seen[pid]) continue;
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"";
    json_escape(os, party_pname(pid));
    os << "\"}}";
  }

  double end_us = 0;
  for (const SpanRecord& s : spans) {
    end_us = std::max(end_us, s.start_us + s.dur_us);
    sep();
    os << "{\"ph\":\"X\",\"cat\":\"abnn2\",\"name\":\"";
    json_escape(os, s.name);
    os << "\",\"pid\":" << party_pid(s.party) << ",\"tid\":" << s.tid
       << ",\"ts\":";
    json_number(os, s.start_us);
    os << ",\"dur\":";
    json_number(os, s.dur_us);
    os << ",\"args\":{\"party\":" << s.party << ",\"depth\":" << s.depth;
    if (s.has_traffic) {
      os << ",\"bytes_sent\":" << s.traffic.bytes_sent
         << ",\"bytes_received\":" << s.traffic.bytes_received
         << ",\"messages_sent\":" << s.traffic.messages_sent
         << ",\"rounds\":" << s.traffic.rounds;
    }
    os << "}}";
  }

  for (const auto& [name, v] : counters) {
    sep();
    os << "{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"name\":\"";
    json_escape(os, name);
    os << "\",\"ts\":";
    json_number(os, end_us);
    os << ",\"args\":{\"value\":" << v << "}}";
  }
  for (const auto& [name, v] : gauges) {
    sep();
    os << "{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"name\":\"";
    json_escape(os, name);
    os << "\",\"ts\":";
    json_number(os, end_us);
    os << ",\"args\":{\"value\":";
    json_number(os, v);
    os << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void Collector::write_summary(std::ostream& os) const {
  std::vector<SpanRecord> spans;
  std::map<std::string, u64> counters;
  std::map<std::string, double> gauges;
  {
    std::lock_guard lk(mu_);
    spans = spans_;
    counters = counters_;
    gauges = gauges_;
  }

  // Aggregate by (party, name), first-seen order.
  struct Agg {
    int party;
    std::string name;
    u64 count = 0;
    double wall_us = 0;
    bool has_traffic = false;
    ChannelStats traffic;
  };
  std::vector<Agg> rows;
  std::map<std::pair<int, std::string>, std::size_t> idx;
  for (const SpanRecord& s : spans) {
    const auto key = std::make_pair(s.party, s.name);
    auto it = idx.find(key);
    if (it == idx.end()) {
      it = idx.emplace(key, rows.size()).first;
      rows.push_back(Agg{s.party, s.name});
    }
    Agg& a = rows[it->second];
    ++a.count;
    a.wall_us += s.dur_us;
    if (s.has_traffic) {
      a.has_traffic = true;
      a.traffic.bytes_sent += s.traffic.bytes_sent;
      a.traffic.bytes_received += s.traffic.bytes_received;
      a.traffic.messages_sent += s.traffic.messages_sent;
      a.traffic.rounds += s.traffic.rounds;
    }
  }

  char buf[256];
  os << "==== obs summary ====\n";
  std::snprintf(buf, sizeof buf, "%-6s %-28s %8s %12s %12s %12s %7s %7s\n",
                "party", "span", "count", "wall(ms)", "sent(B)", "recv(B)",
                "msgs", "rounds");
  os << buf;
  for (const Agg& a : rows) {
    char party[8];
    if (a.party < 0)
      std::snprintf(party, sizeof party, "-");
    else
      std::snprintf(party, sizeof party, "%d", a.party);
    if (a.has_traffic) {
      std::snprintf(buf, sizeof buf,
                    "%-6s %-28s %8llu %12.3f %12llu %12llu %7llu %7llu\n",
                    party, a.name.c_str(),
                    static_cast<unsigned long long>(a.count), a.wall_us / 1e3,
                    static_cast<unsigned long long>(a.traffic.bytes_sent),
                    static_cast<unsigned long long>(a.traffic.bytes_received),
                    static_cast<unsigned long long>(a.traffic.messages_sent),
                    static_cast<unsigned long long>(a.traffic.rounds));
    } else {
      std::snprintf(buf, sizeof buf,
                    "%-6s %-28s %8llu %12.3f %12s %12s %7s %7s\n", party,
                    a.name.c_str(), static_cast<unsigned long long>(a.count),
                    a.wall_us / 1e3, "-", "-", "-", "-");
    }
    os << buf;
  }
  if (!counters.empty()) {
    os << "---- counters ----\n";
    for (const auto& [name, v] : counters) {
      std::snprintf(buf, sizeof buf, "%-35s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(v));
      os << buf;
    }
  }
  if (!gauges.empty()) {
    os << "---- gauges ----\n";
    for (const auto& [name, v] : gauges) {
      std::snprintf(buf, sizeof buf, "%-35s %.3f\n", name.c_str(), v);
      os << buf;
    }
  }
}

// ---- process-global trace file ------------------------------------------

namespace {

struct GlobalTrace {
  std::mutex mu;
  std::unique_ptr<Collector> col;
  std::string path;
};

GlobalTrace& global_trace() {
  static GlobalTrace gt;
  return gt;
}

const std::string& empty_path() {
  static const std::string empty;
  return empty;
}

}  // namespace

Collector* init_trace(const std::string& path) {
  GlobalTrace& gt = global_trace();
  std::lock_guard lk(gt.mu);
  if (gt.col) return gt.col.get();  // first path wins
  if (path.empty()) return nullptr;
  gt.col = std::make_unique<Collector>();
  gt.path = path;
  set_collector(gt.col.get());
  std::atexit([] { flush_trace(); });
  return gt.col.get();
}

bool init_trace_from_env() {
  static const bool env_checked = [] {
    const char* path = std::getenv("ABNN2_TRACE");
    if (path != nullptr && path[0] != '\0') init_trace(std::string(path));
    return true;
  }();
  (void)env_checked;
  GlobalTrace& gt = global_trace();
  std::lock_guard lk(gt.mu);
  return gt.col != nullptr;
}

void flush_trace() {
  GlobalTrace& gt = global_trace();
  std::lock_guard lk(gt.mu);
  if (!gt.col || gt.path.empty()) return;
  std::ofstream os(gt.path, std::ios::trunc);
  if (!os) {
    std::fprintf(stderr, "obs: cannot write trace file %s\n", gt.path.c_str());
    return;
  }
  gt.col->write_chrome_trace(os);
}

const std::string& trace_path() {
  GlobalTrace& gt = global_trace();
  std::lock_guard lk(gt.mu);
  return gt.col ? gt.path : empty_path();
}

}  // namespace abnn2::obs
