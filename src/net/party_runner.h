// Runs the two protocol parties as threads over a MemChannel pair and
// propagates exceptions. The standard driver for tests and benchmarks.
#pragma once

#include <chrono>
#include <exception>
#include <functional>
#include <thread>
#include <utility>

#include "net/mem_channel.h"

namespace abnn2 {

/// Result of a two-party run: per-party return values, channel stats and the
/// wall-clock compute time (both parties interleaved on shared cores).
template <class R0, class R1>
struct TwoPartyResult {
  R0 party0;
  R1 party1;
  ChannelStats stats0;
  ChannelStats stats1;
  double wall_seconds = 0;

  u64 total_comm_bytes() const { return stats0.bytes_sent + stats1.bytes_sent; }
  double simulated_seconds(const NetworkModel& net) const {
    return net.simulate(wall_seconds, stats0, stats1);
  }
};

/// Runs `f0` (party 0 / server) and `f1` (party 1 / client), each receiving a
/// Channel&. Exceptions from either party are re-thrown in the caller (party
/// 0's first).
template <class F0, class F1>
auto run_two_parties(F0&& f0, F1&& f1)
    -> TwoPartyResult<std::invoke_result_t<F0, Channel&>,
                      std::invoke_result_t<F1, Channel&>> {
  using R0 = std::invoke_result_t<F0, Channel&>;
  using R1 = std::invoke_result_t<F1, Channel&>;
  auto [c0, c1] = MemChannel::make_pair();

  R0 r0{};
  R1 r1{};
  std::exception_ptr e0, e1;

  const auto start = std::chrono::steady_clock::now();
  std::thread t1([&] {
    try {
      r1 = f1(*c1);
    } catch (...) {
      e1 = std::current_exception();
      c1->close();  // unblock party 0
    }
  });
  try {
    r0 = f0(*c0);
  } catch (...) {
    e0 = std::current_exception();
    c0->close();  // unblock party 1
  }
  t1.join();
  const auto stop = std::chrono::steady_clock::now();

  // Prefer the root cause: when one party fails, the peer usually dies with
  // a consequent ChannelError from the torn-down pipe.
  const auto is_channel_error = [](const std::exception_ptr& e) {
    try {
      std::rethrow_exception(e);
    } catch (const ChannelError&) {
      return true;
    } catch (...) {
      return false;
    }
  };
  if (e0 && e1) std::rethrow_exception(is_channel_error(e0) ? e1 : e0);
  if (e0) std::rethrow_exception(e0);
  if (e1) std::rethrow_exception(e1);

  TwoPartyResult<R0, R1> res;
  res.party0 = std::move(r0);
  res.party1 = std::move(r1);
  res.stats0 = c0->stats();
  res.stats1 = c1->stats();
  res.wall_seconds = std::chrono::duration<double>(stop - start).count();
  return res;
}

}  // namespace abnn2
