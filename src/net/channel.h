// Transport abstraction for two-party protocols.
//
// All protocol code is written against Channel, so the same protocol runs
// over an in-process MemChannel (tests, benchmarks) or a TCP SocketChannel
// (real deployments). The base class meters traffic: bytes in each direction
// and communication rounds (a round is counted whenever the direction flips
// from sending to receiving), which feeds the LAN/WAN NetworkModel.
//
// Round-counting convention: every round trip is observed at *both*
// endpoints (each side flips send->recv once per ping-pong), so the
// protocol-level round count of a run is max(a.rounds, b.rounds) — never the
// sum, which double-counts. NetworkModel::simulate and bench::summarize both
// use the max.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "common/block.h"
#include "common/defines.h"
#include "common/serial.h"

namespace abnn2 {

struct ChannelStats {
  u64 bytes_sent = 0;
  u64 bytes_received = 0;
  u64 messages_sent = 0;
  u64 rounds = 0;  // direction changes send->recv observed at this endpoint

  u64 total_bytes() const { return bytes_sent + bytes_received; }
};

/// Field-wise delta between two snapshots of the SAME channel, `a` taken
/// after `b`. The standard way to attribute traffic to a protocol phase:
///
///   const ChannelStats before = ch.snapshot();
///   ... phase ...
///   const ChannelStats cost = ch.snapshot() - before;
inline ChannelStats operator-(const ChannelStats& a, const ChannelStats& b) {
  return {a.bytes_sent - b.bytes_sent, a.bytes_received - b.bytes_received,
          a.messages_sent - b.messages_sent, a.rounds - b.rounds};
}

inline bool operator==(const ChannelStats& a, const ChannelStats& b) {
  return a.bytes_sent == b.bytes_sent &&
         a.bytes_received == b.bytes_received &&
         a.messages_sent == b.messages_sent && a.rounds == b.rounds;
}

class Channel {
 public:
  virtual ~Channel() = default;

  void send(const void* data, std::size_t n) {
    stats_.bytes_sent += n;
    ++stats_.messages_sent;
    sent_since_recv_ = true;
    do_send(data, n);
  }
  void recv(void* data, std::size_t n) {
    if (sent_since_recv_) {
      ++stats_.rounds;
      sent_since_recv_ = false;
    }
    do_recv(data, n);
    stats_.bytes_received += n;
  }

  // ---- typed helpers -------------------------------------------------
  void send_u64(u64 v) { send(&v, 8); }
  u64 recv_u64() { u64 v; recv(&v, 8); return v; }

  void send_block(const Block& b) { send(b.w.data(), 16); }
  Block recv_block() { Block b; recv(b.w.data(), 16); return b; }

  void send_blocks(const Block* p, std::size_t n) { send(p, n * 16); }
  void recv_blocks(Block* p, std::size_t n) { recv(p, n * 16); }

  void send_u64s(const u64* p, std::size_t n) { send(p, n * 8); }
  void recv_u64s(u64* p, std::size_t n) { recv(p, n * 8); }

  /// Default recv_msg bound: 64 MiB. Large enough for every message the
  /// protocols exchange today; small enough that a corrupted or hostile
  /// length prefix cannot drive a multi-GiB allocation. Call sites that know
  /// the exact expected size pass it explicitly.
  static constexpr std::size_t kDefaultMaxMsg = std::size_t{1} << 26;

  /// Length-prefixed message send/recv (for variable-size payloads).
  void send_msg(std::span<const u8> payload) {
    send_u64(payload.size());
    if (!payload.empty()) send(payload.data(), payload.size());
  }
  void send_msg(const Writer& w) { send_msg(std::span<const u8>(w.data())); }
  std::vector<u8> recv_msg(std::size_t max_size = kDefaultMaxMsg) {
    const u64 n = recv_u64();
    if (n > max_size)
      throw ProtocolError(
          "recv_msg: length prefix " + std::to_string(n) +
          " exceeds bound " + std::to_string(max_size) +
          " (truncated, corrupted or desynchronized stream?)");
    std::vector<u8> v(n);
    if (n) recv(v.data(), n);
    return v;
  }

  const ChannelStats& stats() const { return stats_; }
  /// Copy of the current stats, for before/after deltas via operator-.
  ChannelStats snapshot() const { return stats_; }
  void reset_stats() { stats_ = {}; sent_since_recv_ = false; }

 protected:
  virtual void do_send(const void* data, std::size_t n) = 0;
  virtual void do_recv(void* data, std::size_t n) = 0;

 private:
  ChannelStats stats_;
  bool sent_since_recv_ = false;
};

/// Network cost model used to translate metered traffic into simulated
/// wall-clock time (see DESIGN.md substitution #2).
struct NetworkModel {
  double bandwidth_bytes_per_s;
  double rtt_s;
  const char* name;

  /// Simulated elapsed time for a protocol run: compute time plus transfer
  /// time for all traffic plus one RTT per communication round.
  ///
  /// The round count is max(a.rounds, b.rounds): both endpoints observe the
  /// same direction flip for every round trip, so summing the two counters
  /// would charge each RTT roughly twice (see the convention note at the top
  /// of this header).
  double simulate(double compute_s, const ChannelStats& a,
                  const ChannelStats& b) const {
    const double bytes =
        static_cast<double>(a.bytes_sent) + static_cast<double>(b.bytes_sent);
    const double rounds = static_cast<double>(std::max(a.rounds, b.rounds));
    return compute_s + bytes / bandwidth_bytes_per_s + rounds * rtt_s;
  }
};

/// LAN model (paper does not state parameters; typical 1 GbE loopback-ish).
inline constexpr NetworkModel kLan{1.0e9, 0.2e-3, "LAN"};
/// WAN model of Table 3: 9 MB/s bandwidth, 72 ms RTT.
inline constexpr NetworkModel kWanTable3{9.0e6, 72e-3, "WAN(9MB/s,72ms)"};
/// WAN model of Tables 4-5 (QUOTIENT setting): 24.3 MB/s, 40 ms RTT.
inline constexpr NetworkModel kWanQuotient{24.3e6, 40e-3, "WAN(24.3MB/s,40ms)"};

}  // namespace abnn2
