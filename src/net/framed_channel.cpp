#include "net/framed_channel.h"

#include "common/crc32c.h"

namespace abnn2 {
namespace {

void put_u32(u8* p, u32 v) { std::memcpy(p, &v, 4); }
void put_u64(u8* p, u64 v) { std::memcpy(p, &v, 8); }
u32 get_u32(const u8* p) { u32 v; std::memcpy(&v, p, 4); return v; }
u64 get_u64(const u8* p) { u64 v; std::memcpy(&v, p, 8); return v; }

}  // namespace

FramedChannel::FramedChannel(Channel& inner, std::size_t max_frame)
    : inner_(inner), max_frame_(max_frame) {
  ABNN2_CHECK_ARG(max_frame >= 1, "max_frame must be positive");
}

void FramedChannel::do_send(const void* data, std::size_t n) {
  const u8* p = static_cast<const u8*>(data);
  // Split oversized payloads so both endpoints can enforce the same bound.
  do {
    const std::size_t chunk = std::min(n, max_frame_);
    send_frame(p, chunk);
    p += chunk;
    n -= chunk;
  } while (n > 0);
}

void FramedChannel::send_frame(const u8* payload, std::size_t n) {
  tx_scratch_.resize(kHeaderBytes + n + kTrailerBytes);
  u8* h = tx_scratch_.data();
  put_u32(h, kFrameMagic);
  put_u32(h + 4, static_cast<u32>(n));
  put_u64(h + 8, tx_seq_);
  put_u32(h + 16, crc32c(h, 16));
  if (n) std::memcpy(h + kHeaderBytes, payload, n);
  put_u32(h + kHeaderBytes + n, crc32c(payload, n));
  ++tx_seq_;
  // One inner send per frame: header, payload and trailer travel together,
  // so a mid-frame transport cut never leaves a valid header followed by
  // silence from this layer's own buffering.
  inner_.send(tx_scratch_.data(), tx_scratch_.size());
}

void FramedChannel::refill() {
  u8 h[kHeaderBytes];
  inner_.recv(h, kHeaderBytes);
  if (get_u32(h) != kFrameMagic)
    throw ProtocolError(
        "framed channel: bad frame magic (stream desynchronized, or peer is "
        "not framing)");
  if (get_u32(h + 16) != crc32c(h, 16))
    throw ProtocolError("framed channel: frame header CRC mismatch");
  const u32 len = get_u32(h + 4);
  if (len > max_frame_)
    throw ProtocolError("framed channel: frame of " + std::to_string(len) +
                        " bytes exceeds max_frame " +
                        std::to_string(max_frame_));
  const u64 seq = get_u64(h + 8);
  if (seq != rx_seq_)
    throw ProtocolError("framed channel: sequence mismatch (got frame " +
                        std::to_string(seq) + ", expected " +
                        std::to_string(rx_seq_) +
                        "; a frame was lost, duplicated or the peer "
                        "restarted its stream)");
  rx_buf_.resize(len);
  rx_pos_ = 0;
  if (len) inner_.recv(rx_buf_.data(), len);
  u8 t[kTrailerBytes];
  inner_.recv(t, kTrailerBytes);
  if (get_u32(t) != crc32c(rx_buf_.data(), rx_buf_.size()))
    throw ProtocolError("framed channel: payload CRC mismatch on frame " +
                        std::to_string(seq) + " (corrupted stream)");
  ++rx_seq_;
}

void FramedChannel::do_recv(void* data, std::size_t n) {
  u8* p = static_cast<u8*>(data);
  while (n > 0) {
    if (rx_pos_ == rx_buf_.size()) refill();
    const std::size_t take = std::min(n, rx_buf_.size() - rx_pos_);
    std::memcpy(p, rx_buf_.data() + rx_pos_, take);
    rx_pos_ += take;
    p += take;
    n -= take;
  }
}

}  // namespace abnn2
