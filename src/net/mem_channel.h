// In-process duplex channel: two endpoints connected by a pair of byte
// pipes. Thread-safe; recv blocks until the requested bytes are available or
// the peer endpoint is destroyed (then throws ChannelError).
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

#include "net/channel.h"

namespace abnn2 {

namespace detail {

class BytePipe {
 public:
  void write(const void* data, std::size_t n) {
    const u8* p = static_cast<const u8*>(data);
    std::lock_guard lk(mu_);
    if (closed_) throw ChannelError("write on closed mem channel");
    buf_.insert(buf_.end(), p, p + n);
    cv_.notify_one();
  }

  void read(void* data, std::size_t n) {
    u8* p = static_cast<u8*>(data);
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return buf_.size() >= n || closed_; });
    if (buf_.size() < n)
      throw ChannelError("mem channel closed with pending read");
    std::copy(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(n), p);
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(n));
  }

  void close() {
    std::lock_guard lk(mu_);
    closed_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<u8> buf_;
  bool closed_ = false;
};

}  // namespace detail

class MemChannel final : public Channel {
 public:
  /// Creates a connected pair of endpoints.
  static std::pair<std::unique_ptr<MemChannel>, std::unique_ptr<MemChannel>>
  make_pair() {
    auto ab = std::make_shared<detail::BytePipe>();
    auto ba = std::make_shared<detail::BytePipe>();
    auto a = std::unique_ptr<MemChannel>(new MemChannel(ab, ba));
    auto b = std::unique_ptr<MemChannel>(new MemChannel(ba, ab));
    return {std::move(a), std::move(b)};
  }

  ~MemChannel() override { close(); }

  /// Tears down both directions; any blocked or future peer operation throws
  /// ChannelError. Used to unblock the peer when this party fails.
  void close() {
    out_->close();
    in_->close();
  }

 protected:
  void do_send(const void* data, std::size_t n) override { out_->write(data, n); }
  void do_recv(void* data, std::size_t n) override { in_->read(data, n); }

 private:
  MemChannel(std::shared_ptr<detail::BytePipe> out,
             std::shared_ptr<detail::BytePipe> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  std::shared_ptr<detail::BytePipe> out_;
  std::shared_ptr<detail::BytePipe> in_;
};

}  // namespace abnn2
