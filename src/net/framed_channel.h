// Framed transport decorator: wraps any Channel with per-message framing so
// stream corruption and desynchronization surface as typed errors instead of
// undefined protocol behavior (a raw byte stream that loses or flips one
// byte silently decodes into garbage shares).
//
// Wire format of one frame, little-endian:
//
//   u32 magic  = "ABFR"                       |
//   u32 len    = payload bytes                 | 20-byte header
//   u64 seq    = frame sequence number         |
//   u32 hcrc   = CRC32C(magic..seq)            |
//   u8  payload[len]
//   u32 pcrc   = CRC32C(payload)
//
// The header carries its own CRC so a corrupted `len` is detected BEFORE it
// is trusted — otherwise a single bit flip in the length field could leave
// the receiver blocked forever waiting for bytes the sender never sends.
// Sequence numbers detect lost/duplicated/reordered frames (e.g. a peer that
// restarted mid-session and began a fresh stream).
//
// Failure mapping: any framing violation throws ProtocolError (fatal —
// the stream is unusable); transport failures from the inner channel
// propagate as ChannelError (transient). One do_send() call produces one
// frame (split if it exceeds max_frame); receives are buffered, so send and
// recv granularity need not match across the two endpoints.
#pragma once

#include <vector>

#include "net/channel.h"

namespace abnn2 {

class FramedChannel final : public Channel {
 public:
  static constexpr std::size_t kDefaultMaxFrame = std::size_t{1} << 30;
  static constexpr u32 kFrameMagic = 0x52464241;  // "ABFR"
  static constexpr std::size_t kHeaderBytes = 20;
  static constexpr std::size_t kTrailerBytes = 4;

  /// Does not own `inner`; the caller keeps it alive. Both endpoints must
  /// agree on framing (wrap both or neither) and on `max_frame`.
  explicit FramedChannel(Channel& inner,
                         std::size_t max_frame = kDefaultMaxFrame);

  u64 frames_sent() const { return tx_seq_; }
  u64 frames_received() const { return rx_seq_; }

 protected:
  void do_send(const void* data, std::size_t n) override;
  void do_recv(void* data, std::size_t n) override;

 private:
  void send_frame(const u8* payload, std::size_t n);
  void refill();

  Channel& inner_;
  std::size_t max_frame_;
  u64 tx_seq_ = 0;
  u64 rx_seq_ = 0;
  std::vector<u8> rx_buf_;     // payload of the current partially-read frame
  std::size_t rx_pos_ = 0;     // consumed prefix of rx_buf_
  std::vector<u8> tx_scratch_;  // reused header+payload+trailer buffer
};

}  // namespace abnn2
