// TCP transport. Used by deployments (and exercised by tests over loopback);
// benchmarks use MemChannel + NetworkModel instead (DESIGN.md, substitution
// #2).
//
// Robustness: every blocking point takes a configurable deadline
// (SocketOptions). connect() retries with exponential backoff + jitter under
// an overall deadline; accept() and recv() poll with per-call timeouts.
// Deadline expiry throws ChannelTimeout (a ChannelError, i.e. transient);
// hard transport failures throw ChannelError.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/channel.h"

namespace abnn2 {

struct SocketOptions {
  /// Overall budget for connect() including all retries; <0 = one attempt
  /// per 10 s forever (not recommended outside interactive tools).
  int connect_timeout_ms = 10'000;
  /// accept() wait; <0 = block until a client arrives.
  int accept_timeout_ms = -1;
  /// Per-recv() deadline once connected; <0 = block forever.
  int recv_timeout_ms = -1;
  /// Backoff for connect retries: sleep min(base << attempt, max) plus
  /// deterministic jitter derived from `backoff_seed`.
  int backoff_base_ms = 1;
  int backoff_max_ms = 100;
  u64 backoff_seed = 0x5EED'F00D;
};

class SocketChannel;

/// Owns a listening socket. Separating bind/listen from accept lets a server
/// accept many connections over its lifetime (reconnect-and-resume) and
/// guarantees the listen fd is released on every path (RAII — the seed code
/// leaked it when accept() failed).
class SocketListener {
 public:
  /// Bind to loopback:`port` and listen. Port 0 picks an ephemeral port;
  /// read it back with port().
  explicit SocketListener(u16 port, int backlog = 8);
  ~SocketListener();
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Accept one connection. Transient failures (EINTR, ECONNABORTED — peer
  /// gave up while queued; EMFILE/ENFILE — fd pressure, waits briefly for
  /// one to free up) are retried against opts.accept_timeout_ms instead of
  /// throwing out of the accept loop. Throws ChannelTimeout when the
  /// deadline expires, ChannelError on hard socket failure.
  std::unique_ptr<SocketChannel> accept(const SocketOptions& opts = {});

  u16 port() const { return port_; }

  /// Test hook: the next accept() calls fail with these errnos (consumed
  /// front to back) before touching the real socket. Lets unit tests
  /// exercise the EINTR/ECONNABORTED/EMFILE retry paths deterministically.
  void inject_accept_errors(std::vector<int> errnos) {
    injected_errors_ = std::move(errnos);
  }

 private:
  int lfd_;
  u16 port_;
  std::vector<int> injected_errors_;
};

class SocketChannel final : public Channel {
 public:
  /// Listen on `port` (loopback) and accept one connection. Convenience for
  /// tests/examples; servers that outlive one connection use SocketListener.
  static std::unique_ptr<SocketChannel> listen(u16 port,
                                               const SocketOptions& opts = {});
  /// Connect to host:port with exponential-backoff retries (so a race with
  /// listen() in another thread/process resolves) under an overall deadline.
  static std::unique_ptr<SocketChannel> connect(const std::string& host,
                                                u16 port,
                                                const SocketOptions& opts = {});

  ~SocketChannel() override;
  SocketChannel(const SocketChannel&) = delete;
  SocketChannel& operator=(const SocketChannel&) = delete;

  /// Shuts down both directions of the socket without closing the fd, so a
  /// thread blocked in send/recv on this channel fails promptly with
  /// ChannelError. Safe to call from another thread (the watchdog): fd_ is
  /// immutable after construction and the fd itself stays valid until the
  /// owner destroys the channel.
  void shutdown_now() noexcept;

  /// Tightens/loosens the per-recv deadline after accept. Used by the serve
  /// supervisor: a connection it is about to reject as BUSY gets a short
  /// deadline so a silent peer cannot stall the listener thread.
  void set_recv_timeout_ms(int ms) { opts_.recv_timeout_ms = ms; }

 protected:
  void do_send(const void* data, std::size_t n) override;
  void do_recv(void* data, std::size_t n) override;

 private:
  friend class SocketListener;
  SocketChannel(int fd, const SocketOptions& opts) : fd_(fd), opts_(opts) {}
  int fd_;
  SocketOptions opts_;
};

}  // namespace abnn2
