// TCP transport. Used by deployments (and exercised by tests over loopback);
// benchmarks use MemChannel + NetworkModel instead (DESIGN.md, substitution
// #2).
#pragma once

#include <memory>
#include <string>

#include "net/channel.h"

namespace abnn2 {

class SocketChannel final : public Channel {
 public:
  /// Listen on `port` (loopback) and accept one connection.
  static std::unique_ptr<SocketChannel> listen(u16 port);
  /// Connect to host:port, retrying briefly so a races with listen() in
  /// another thread resolve.
  static std::unique_ptr<SocketChannel> connect(const std::string& host,
                                                u16 port);

  ~SocketChannel() override;
  SocketChannel(const SocketChannel&) = delete;
  SocketChannel& operator=(const SocketChannel&) = delete;

 protected:
  void do_send(const void* data, std::size_t n) override;
  void do_recv(void* data, std::size_t n) override;

 private:
  explicit SocketChannel(int fd) : fd_(fd) {}
  int fd_;
};

}  // namespace abnn2
