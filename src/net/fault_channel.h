// Deterministic fault-injection decorator for chaos-testing protocols.
//
// Wraps any Channel and, at a byte offset chosen up front (deterministically
// from a seed), injects one of:
//
//   kCutSend      — transmit a prefix of the triggering send, then fail this
//                   endpoint with ChannelError (models a connection dying
//                   mid-message; the peer sees a short/closed stream).
//   kTruncateSend — silently swallow the tail of the triggering send (the
//                   call "succeeds"), then fail the endpoint on its next
//                   operation (models a half-broken link whose death is
//                   discovered one step late; the peer is left blocked
//                   mid-message until the link is torn down).
//   kCorruptSend  — flip one bit of the triggering send (models in-flight
//                   corruption; a FramedChannel above the peer detects it).
//   kCorruptRecv  — flip one bit of the triggering recv (same, but on the
//                   inbound path of this endpoint).
//   kDelaySend    — sleep a bounded number of milliseconds once, then send
//                   normally (models a stall; exercises recv deadlines).
//   kNone         — pass-through (control runs in a seed sweep).
//
// Everything is derived from `FaultPlan::from_seed(seed, traffic_hint)`, so
// a failing chaos-test seed replays exactly. The decorator never throws
// ProtocolError itself: corruption is only *detected* by the layers above,
// which is precisely what the chaos test asserts.
#pragma once

#include <string>

#include "net/channel.h"

namespace abnn2 {

struct FaultPlan {
  enum class Kind : u32 {
    kNone,
    kCutSend,
    kTruncateSend,
    kCorruptSend,
    kCorruptRecv,
    kDelaySend,
  };

  Kind kind = Kind::kNone;
  u64 trigger_offset = 0;  // byte offset in this endpoint's send/recv stream
  u32 bit_in_byte = 0;     // for corruption: which bit of the trigger byte
  u32 delay_ms = 0;        // for kDelaySend

  /// Deterministic plan from a seed. `traffic_hint` is the approximate
  /// number of bytes this endpoint will move in a clean run; the trigger is
  /// placed uniformly in [0, traffic_hint), so every protocol phase gets
  /// hit across a seed sweep. A fraction of seeds yield kNone controls.
  static FaultPlan from_seed(u64 seed, u64 traffic_hint) {
    return from_seed(seed, traffic_hint, traffic_hint);
  }
  /// Same, with direction-specific hints: an endpoint's sent and received
  /// volumes can differ by an order of magnitude (GC tables flow one way),
  /// and a send-kind trigger placed past the end of the send stream would
  /// never fire.
  static FaultPlan from_seed(u64 seed, u64 send_hint, u64 recv_hint);

  /// Per-session plan for concurrent chaos: mixes `session_id` into the seed
  /// so each session of a multi-client run draws an independent fault from
  /// one base seed, and the whole run still replays from that one seed.
  static FaultPlan for_session(u64 base_seed, u64 session_id, u64 send_hint,
                               u64 recv_hint);

  std::string describe() const;
};

class FaultInjectingChannel final : public Channel {
 public:
  /// Does not own `inner`.
  FaultInjectingChannel(Channel& inner, FaultPlan plan)
      : inner_(inner), plan_(plan) {}

  /// True once the planned fault has been injected.
  bool fired() const { return fired_; }
  const FaultPlan& plan() const { return plan_; }

  /// Re-arms the decorator with a fresh plan and zeroed stream offsets.
  /// A session that reconnects after a fault reuses its decorator (the
  /// supervisor tests schedule several faults against one logical session).
  void rearm(FaultPlan plan) {
    plan_ = plan;
    sent_ = received_ = 0;
    fired_ = dead_ = false;
  }

 protected:
  void do_send(const void* data, std::size_t n) override;
  void do_recv(void* data, std::size_t n) override;

 private:
  Channel& inner_;
  FaultPlan plan_;
  u64 sent_ = 0;
  u64 received_ = 0;
  bool fired_ = false;
  bool dead_ = false;  // endpoint failed (kCutSend) or muted (kTruncateSend)
};

}  // namespace abnn2
