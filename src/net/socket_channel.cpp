#include "net/socket_channel.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace abnn2 {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw ChannelError(std::string(what) + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

std::unique_ptr<SocketChannel> SocketChannel::listen(u16 port) {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(lfd);
    throw_errno("bind");
  }
  if (::listen(lfd, 1) < 0) {
    ::close(lfd);
    throw_errno("listen");
  }
  const int fd = ::accept(lfd, nullptr, nullptr);
  ::close(lfd);
  if (fd < 0) throw_errno("accept");
  set_nodelay(fd);
  return std::unique_ptr<SocketChannel>(new SocketChannel(fd));
}

std::unique_ptr<SocketChannel> SocketChannel::connect(const std::string& host,
                                                      u16 port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw ChannelError("bad address: " + host);
  for (int attempt = 0;; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      set_nodelay(fd);
      return std::unique_ptr<SocketChannel>(new SocketChannel(fd));
    }
    ::close(fd);
    if (attempt >= 200) throw_errno("connect");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

SocketChannel::~SocketChannel() {
  if (fd_ >= 0) ::close(fd_);
}

void SocketChannel::do_send(const void* data, std::size_t n) {
  const u8* p = static_cast<const u8*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      throw_errno("send");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void SocketChannel::do_recv(void* data, std::size_t n) {
  u8* p = static_cast<u8*>(data);
  while (n > 0) {
    const ssize_t r = ::recv(fd_, p, n, 0);
    if (r == 0) throw ChannelError("peer closed connection");
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
}

}  // namespace abnn2
