#include "net/socket_channel.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace abnn2 {
namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const char* what) {
  throw ChannelError(std::string(what) + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in make_addr(const std::string& host, u16 port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw ChannelError("bad address: " + host);
  return addr;
}

/// poll() for `events` on fd. Returns true when ready, false on timeout
/// (timeout_ms >= 0); retries EINTR against the same deadline.
bool poll_fd(int fd, short events, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           timeout_ms < 0 ? 0 : timeout_ms);
  for (;;) {
    int wait = -1;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      wait = left > 0 ? static_cast<int>(left) : 0;
    }
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, wait);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) throw_errno("poll");
  }
}

// splitmix64 for backoff jitter (deterministic per SocketOptions seed, so
// retry schedules are reproducible in tests).
u64 splitmix(u64& s) {
  u64 z = (s += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// One non-blocking connect attempt with its own small deadline. Returns the
/// connected fd or -1 (errno describes the failure).
int try_connect_once(const sockaddr_in& addr, int attempt_timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) throw_errno("socket");
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) return fd;
  if (errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  if (!poll_fd(fd, POLLOUT, attempt_timeout_ms)) {
    ::close(fd);
    errno = ETIMEDOUT;
    return -1;
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
    ::close(fd);
    errno = err ? err : EINVAL;
    return -1;
  }
  return fd;
}

void set_blocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
}

}  // namespace

SocketListener::SocketListener(u16 port, int backlog) : lfd_(-1), port_(port) {
  lfd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd_ < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(lfd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(lfd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int e = errno;
    ::close(lfd_);
    lfd_ = -1;
    errno = e;
    throw_errno("bind");
  }
  if (::listen(lfd_, backlog) < 0) {
    const int e = errno;
    ::close(lfd_);
    lfd_ = -1;
    errno = e;
    throw_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(lfd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
}

SocketListener::~SocketListener() {
  if (lfd_ >= 0) ::close(lfd_);
}

std::unique_ptr<SocketChannel> SocketListener::accept(
    const SocketOptions& opts) {
  const bool bounded = opts.accept_timeout_ms >= 0;
  const auto deadline =
      Clock::now() +
      std::chrono::milliseconds(bounded ? opts.accept_timeout_ms : 0);
  const auto left_ms = [&]() -> int {
    if (!bounded) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    return left > 0 ? static_cast<int>(left) : 0;
  };
  for (;;) {
    // A zero wait still polls once: a connection already queued at the
    // deadline is accepted rather than dropped.
    if (!poll_fd(lfd_, POLLIN, left_ms()))
      throw ChannelTimeout("accept timed out after " +
                           std::to_string(opts.accept_timeout_ms) + " ms");
    int fd = -1;
    if (!injected_errors_.empty()) {
      errno = injected_errors_.front();
      injected_errors_.erase(injected_errors_.begin());
    } else {
      fd = ::accept(lfd_, nullptr, nullptr);
    }
    if (fd >= 0) {
      set_nodelay(fd);
      return std::unique_ptr<SocketChannel>(new SocketChannel(fd, opts));
    }
    switch (errno) {
      case EINTR:        // signal — retry immediately
      case ECONNABORTED: // the queued peer hung up before we got to it
        break;
      case EMFILE:       // out of fds (this process / system-wide): a busy
      case ENFILE:       // server sheds load by waiting for one to free up
                         // instead of crashing the accept loop
        std::this_thread::sleep_for(std::chrono::milliseconds(
            bounded ? std::min(10, left_ms()) : 10));
        break;
      default:
        throw_errno("accept");
    }
    // Transient failures retry only inside the deadline; without this check
    // sustained fd pressure with a connection still queued would busy-spin
    // here forever (poll keeps reporting ready, the sleep clamps to 0).
    if (bounded && left_ms() == 0)
      throw ChannelTimeout("accept timed out after " +
                           std::to_string(opts.accept_timeout_ms) + " ms");
  }
}

std::unique_ptr<SocketChannel> SocketChannel::listen(u16 port,
                                                     const SocketOptions& opts) {
  SocketListener listener(port);  // RAII: listen fd closed on every path
  return listener.accept(opts);
}

std::unique_ptr<SocketChannel> SocketChannel::connect(const std::string& host,
                                                      u16 port,
                                                      const SocketOptions& opts) {
  const sockaddr_in addr = make_addr(host, port);
  const bool bounded = opts.connect_timeout_ms >= 0;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(
                         bounded ? opts.connect_timeout_ms : 0);
  u64 jitter_state = opts.backoff_seed;
  int last_errno = ECONNREFUSED;
  for (int attempt = 0;; ++attempt) {
    int attempt_budget_ms = 10'000;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      if (left <= 0) break;
      attempt_budget_ms = static_cast<int>(left);
    }
    const int fd = try_connect_once(addr, attempt_budget_ms);
    if (fd >= 0) {
      set_blocking(fd);
      set_nodelay(fd);
      return std::unique_ptr<SocketChannel>(new SocketChannel(fd, opts));
    }
    last_errno = errno;
    // Exponential backoff with jitter; capped so a listener that comes up
    // late is still found quickly.
    const int shift = attempt < 16 ? attempt : 16;
    i64 sleep_ms = std::min<i64>(static_cast<i64>(opts.backoff_base_ms) << shift,
                                 opts.backoff_max_ms);
    if (sleep_ms < 1) sleep_ms = 1;
    sleep_ms += static_cast<i64>(splitmix(jitter_state) % 3);
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      if (left <= 0) break;
      sleep_ms = std::min<i64>(sleep_ms, left);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  throw ChannelTimeout("connect to " + host + ":" + std::to_string(port) +
                       " timed out after " +
                       std::to_string(opts.connect_timeout_ms) +
                       " ms (last error: " + std::strerror(last_errno) + ")");
}

SocketChannel::~SocketChannel() {
  if (fd_ >= 0) ::close(fd_);
}

void SocketChannel::shutdown_now() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void SocketChannel::do_send(const void* data, std::size_t n) {
  const u8* p = static_cast<const u8*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      throw_errno("send");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void SocketChannel::do_recv(void* data, std::size_t n) {
  u8* p = static_cast<u8*>(data);
  while (n > 0) {
    if (opts_.recv_timeout_ms >= 0 &&
        !poll_fd(fd_, POLLIN, opts_.recv_timeout_ms))
      throw ChannelTimeout("recv timed out after " +
                           std::to_string(opts_.recv_timeout_ms) + " ms");
    const ssize_t r = ::recv(fd_, p, n, 0);
    if (r == 0) throw ChannelError("peer closed connection");
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_errno("recv");
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
}

}  // namespace abnn2
