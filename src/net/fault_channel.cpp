#include "net/fault_channel.h"

#include <chrono>
#include <thread>
#include <vector>

namespace abnn2 {
namespace {

// splitmix64: tiny, deterministic, and independent of the crypto PRG (a
// fault plan must not perturb protocol randomness derived from Prg).
u64 splitmix(u64& s) {
  u64 z = (s += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultPlan FaultPlan::from_seed(u64 seed, u64 send_hint, u64 recv_hint) {
  u64 s = seed * 0x2545F4914F6CDD1DULL + 0x9E3779B9ULL;
  FaultPlan p;
  // ~1 in 6 seeds is a fault-free control run.
  const u64 roll = splitmix(s) % 6;
  switch (roll) {
    case 0: p.kind = Kind::kNone; break;
    case 1: p.kind = Kind::kCutSend; break;
    case 2: p.kind = Kind::kTruncateSend; break;
    case 3: p.kind = Kind::kCorruptSend; break;
    case 4: p.kind = Kind::kCorruptRecv; break;
    case 5: p.kind = Kind::kDelaySend; break;
  }
  const u64 hint = p.kind == Kind::kCorruptRecv ? recv_hint : send_hint;
  p.trigger_offset = hint ? splitmix(s) % hint : 0;
  p.bit_in_byte = static_cast<u32>(splitmix(s) % 8);
  p.delay_ms = static_cast<u32>(splitmix(s) % 20);
  return p;
}

FaultPlan FaultPlan::for_session(u64 base_seed, u64 session_id, u64 send_hint,
                                 u64 recv_hint) {
  // Decorrelate sessions with one splitmix round; from_seed then applies its
  // own mixing, so nearby (seed, id) pairs share no structure.
  u64 s = base_seed ^ (session_id * 0x9E3779B97F4A7C15ULL);
  return from_seed(splitmix(s), send_hint, recv_hint);
}

std::string FaultPlan::describe() const {
  const char* k = "none";
  switch (kind) {
    case Kind::kNone: k = "none"; break;
    case Kind::kCutSend: k = "cut-send"; break;
    case Kind::kTruncateSend: k = "truncate-send"; break;
    case Kind::kCorruptSend: k = "corrupt-send"; break;
    case Kind::kCorruptRecv: k = "corrupt-recv"; break;
    case Kind::kDelaySend: k = "delay-send"; break;
  }
  return std::string(k) + "@" + std::to_string(trigger_offset) + ".bit" +
         std::to_string(bit_in_byte);
}

void FaultInjectingChannel::do_send(const void* data, std::size_t n) {
  if (dead_) throw ChannelError("fault injection: link is down");
  const u8* p = static_cast<const u8*>(data);
  const bool triggers = !fired_ && plan_.trigger_offset < sent_ + n &&
                        plan_.trigger_offset >= sent_;
  switch (plan_.kind) {
    case FaultPlan::Kind::kCutSend:
      if (triggers) {
        const std::size_t prefix =
            static_cast<std::size_t>(plan_.trigger_offset - sent_);
        if (prefix) inner_.send(p, prefix);
        sent_ += prefix;
        fired_ = dead_ = true;
        throw ChannelError("fault injection: connection cut after " +
                           std::to_string(sent_) + " bytes sent");
      }
      break;
    case FaultPlan::Kind::kTruncateSend:
      if (triggers) {
        // Deliver a silent partial write; the endpoint then dies on its NEXT
        // operation (modeling a half-broken link whose failure is only
        // discovered later). Failing on the next op — rather than swallowing
        // forever — guarantees the peer is eventually unblocked by the
        // harness/socket teardown instead of deadlocking both parties.
        const std::size_t prefix =
            static_cast<std::size_t>(plan_.trigger_offset - sent_);
        if (prefix) inner_.send(p, prefix);
        sent_ += n;
        fired_ = dead_ = true;
        return;
      }
      break;
    case FaultPlan::Kind::kCorruptSend:
      if (triggers) {
        std::vector<u8> copy(p, p + n);
        copy[static_cast<std::size_t>(plan_.trigger_offset - sent_)] ^=
            static_cast<u8>(1u << plan_.bit_in_byte);
        fired_ = true;
        sent_ += n;
        inner_.send(copy.data(), n);
        return;
      }
      break;
    case FaultPlan::Kind::kDelaySend:
      if (triggers) {
        fired_ = true;
        std::this_thread::sleep_for(std::chrono::milliseconds(plan_.delay_ms));
      }
      break;
    case FaultPlan::Kind::kCorruptRecv:
    case FaultPlan::Kind::kNone:
      break;
  }
  sent_ += n;
  inner_.send(p, n);
}

void FaultInjectingChannel::do_recv(void* data, std::size_t n) {
  if (dead_) throw ChannelError("fault injection: link is down");
  inner_.recv(data, n);
  if (plan_.kind == FaultPlan::Kind::kCorruptRecv && !fired_ &&
      plan_.trigger_offset >= received_ &&
      plan_.trigger_offset < received_ + n) {
    static_cast<u8*>(
        data)[static_cast<std::size_t>(plan_.trigger_offset - received_)] ^=
        static_cast<u8>(1u << plan_.bit_in_byte);
    fired_ = true;
  }
  received_ += n;
}

}  // namespace abnn2
