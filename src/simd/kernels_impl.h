// Internal: raw kernel entry points implemented in the per-target TUs
// (kernels_portable.cpp always; kernels_x86.cpp with -maes; kernels_avx2.cpp
// with -mavx2). dispatch.cpp assembles the active KernelTable from these,
// field by field, based on what was compiled in and what CPUID reports.
// Nothing outside src/simd/ includes this header.
#pragma once

#include "simd/kernels.h"

// Set by src/CMakeLists.txt when the corresponding TU is compiled with its
// ISA flag (never under -DABNN2_FORCE_PORTABLE=ON).
//   ABNN2_SIMD_COMPILED_X86  -> kernels_x86.cpp  (-maes, implies SSE2)
//   ABNN2_SIMD_COMPILED_AVX2 -> kernels_avx2.cpp (-mavx2)

namespace abnn2::simd::detail {

// ---- portable (always available) ----------------------------------------
void portable_aes128_key_expand(Block key, Block* rk11);
void portable_aes128_encrypt_blocks(const Block* rk11, const Block* in,
                                    Block* out, std::size_t n);
void portable_xor_bytes(u8* dst, const u8* src, std::size_t n);
void portable_xor3_bytes(u8* dst, const u8* a, const u8* b, std::size_t n);
void portable_transpose_bits(const u8* in, std::size_t in_stride,
                             std::size_t n_rows, std::size_t n_cols, u8* out,
                             std::size_t out_stride);

#if defined(ABNN2_SIMD_COMPILED_X86)
// ---- x86 TU (-maes): AES-NI + SSE2 kernels -------------------------------
void aesni_aes128_key_expand(Block key, Block* rk11);
void aesni_aes128_encrypt_blocks(const Block* rk11, const Block* in,
                                 Block* out, std::size_t n);
void sse2_xor_bytes(u8* dst, const u8* src, std::size_t n);
void sse2_xor3_bytes(u8* dst, const u8* a, const u8* b, std::size_t n);
void sse2_transpose_bits(const u8* in, std::size_t in_stride,
                         std::size_t n_rows, std::size_t n_cols, u8* out,
                         std::size_t out_stride);
void sse2_sha256_x4(const u8* blocks_4x64, u8* out_4x32);
#endif

#if defined(ABNN2_SIMD_COMPILED_AVX2)
// ---- AVX2 TU (-mavx2) ----------------------------------------------------
void avx2_xor_bytes(u8* dst, const u8* src, std::size_t n);
void avx2_xor3_bytes(u8* dst, const u8* a, const u8* b, std::size_t n);
#endif

}  // namespace abnn2::simd::detail
