// Batched crypto kernel table — the functions behind every hot loop.
//
// All kernels are pure functions of their inputs; the table only selects
// *how* the result is computed (scalar vs 8-way AES pipelining, scalar vs
// 4-lane SHA-256, byte loops vs AVX2 XOR), never *what* is computed. Batch
// variants must be bit-identical to n calls of the width-1 path.
//
// Callers fetch the table once per operation via active_kernels(); tests can
// pin a specific table (portable_kernels() / native_kernels()) to cross-check
// paths against each other in one binary.
#pragma once

#include <cstddef>

#include "common/block.h"
#include "common/defines.h"

namespace abnn2::simd {

struct KernelTable {
  const char* name;

  /// AES-128 key schedule: 11 round keys from `key`. The AES-NI and portable
  /// expansions produce byte-identical round keys, so Aes128 objects survive
  /// a dispatch flip.
  void (*aes128_key_expand)(Block key, Block* rk11);

  /// ECB over `n` independent blocks (the CTR-PRG / GC-hash / OT-pad hot
  /// path). The AES-NI variant interleaves the 10 rounds across 8 blocks at
  /// a time — throughput-bound instead of latency-bound. `in` may alias
  /// `out`.
  void (*aes128_encrypt_blocks)(const Block* rk11, const Block* in, Block* out,
                                std::size_t n);

  /// dst[i] ^= src[i] for n bytes.
  void (*xor_bytes)(u8* dst, const u8* src, std::size_t n);

  /// dst[i] ^= a[i] ^ b[i] for n bytes (the OT column-correction step).
  void (*xor3_bytes)(u8* dst, const u8* a, const u8* b, std::size_t n);

  /// Bit-transpose: bit (r, c) of the input region becomes bit (c, r) of the
  /// output. `n_rows` must be a multiple of 8; `n_cols` is arbitrary. Rows
  /// are LSB-first packed at `in_stride` bytes apart; the output region
  /// holds `n_cols` rows at `out_stride` bytes apart and must be
  /// zero-initialised (kernels may skip zero bytes). The SSE2 variant moves
  /// 16x8 tiles per movemask; the portable one 8x8 tiles (Hacker's Delight).
  void (*transpose_bits)(const u8* in, std::size_t in_stride,
                         std::size_t n_rows, std::size_t n_cols, u8* out,
                         std::size_t out_stride);

  /// Four independent SHA-256 compressions of one already-padded 64-byte
  /// block each, from the standard IV: out = 4 x 32-byte digests. Null when
  /// no multi-buffer path is compiled in (callers fall back to scalar
  /// SHA-256, which produces the same digests).
  void (*sha256_x4)(const u8* blocks_4x64, u8* out_4x32);
};

/// The dispatched table (honours force-portable overrides). Cheap: one
/// atomic load.
const KernelTable& active_kernels();

/// The scalar reference table — always available.
const KernelTable& portable_kernels();

/// The best table for this CPU and build (== portable when nothing faster is
/// compiled in or supported). Ignores force-portable overrides; used by
/// tests to cross-check fast paths against the portable ones.
const KernelTable& native_kernels();

}  // namespace abnn2::simd
