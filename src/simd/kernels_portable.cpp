// Scalar reference kernels. These define the semantics every SIMD variant
// must reproduce bit-for-bit; they are also the only kernels in a
// -DABNN2_FORCE_PORTABLE=ON build and the fallback on CPUs without the
// corresponding ISA.
#include "simd/kernels_impl.h"

namespace abnn2::simd::detail {
namespace {

// Portable AES-128 (S-box table based). NOTE: table lookups are not
// constant-time; the fallback exists for portability of this research
// artifact, production deployments should run on AES-NI hardware.
constexpr u8 kSbox[256] = {
    0x63,0x7c,0x77,0x7b,0xf2,0x6b,0x6f,0xc5,0x30,0x01,0x67,0x2b,0xfe,0xd7,0xab,0x76,
    0xca,0x82,0xc9,0x7d,0xfa,0x59,0x47,0xf0,0xad,0xd4,0xa2,0xaf,0x9c,0xa4,0x72,0xc0,
    0xb7,0xfd,0x93,0x26,0x36,0x3f,0xf7,0xcc,0x34,0xa5,0xe5,0xf1,0x71,0xd8,0x31,0x15,
    0x04,0xc7,0x23,0xc3,0x18,0x96,0x05,0x9a,0x07,0x12,0x80,0xe2,0xeb,0x27,0xb2,0x75,
    0x09,0x83,0x2c,0x1a,0x1b,0x6e,0x5a,0xa0,0x52,0x3b,0xd6,0xb3,0x29,0xe3,0x2f,0x84,
    0x53,0xd1,0x00,0xed,0x20,0xfc,0xb1,0x5b,0x6a,0xcb,0xbe,0x39,0x4a,0x4c,0x58,0xcf,
    0xd0,0xef,0xaa,0xfb,0x43,0x4d,0x33,0x85,0x45,0xf9,0x02,0x7f,0x50,0x3c,0x9f,0xa8,
    0x51,0xa3,0x40,0x8f,0x92,0x9d,0x38,0xf5,0xbc,0xb6,0xda,0x21,0x10,0xff,0xf3,0xd2,
    0xcd,0x0c,0x13,0xec,0x5f,0x97,0x44,0x17,0xc4,0xa7,0x7e,0x3d,0x64,0x5d,0x19,0x73,
    0x60,0x81,0x4f,0xdc,0x22,0x2a,0x90,0x88,0x46,0xee,0xb8,0x14,0xde,0x5e,0x0b,0xdb,
    0xe0,0x32,0x3a,0x0a,0x49,0x06,0x24,0x5c,0xc2,0xd3,0xac,0x62,0x91,0x95,0xe4,0x79,
    0xe7,0xc8,0x37,0x6d,0x8d,0xd5,0x4e,0xa9,0x6c,0x56,0xf4,0xea,0x65,0x7a,0xae,0x08,
    0xba,0x78,0x25,0x2e,0x1c,0xa6,0xb4,0xc6,0xe8,0xdd,0x74,0x1f,0x4b,0xbd,0x8b,0x8a,
    0x70,0x3e,0xb5,0x66,0x48,0x03,0xf6,0x0e,0x61,0x35,0x57,0xb9,0x86,0xc1,0x1d,0x9e,
    0xe1,0xf8,0x98,0x11,0x69,0xd9,0x8e,0x94,0x9b,0x1e,0x87,0xe9,0xce,0x55,0x28,0xdf,
    0x8c,0xa1,0x89,0x0d,0xbf,0xe6,0x42,0x68,0x41,0x99,0x2d,0x0f,0xb0,0x54,0xbb,0x16};

inline u8 xtime(u8 x) { return static_cast<u8>((x << 1) ^ ((x >> 7) * 0x1b)); }

// Transpose an 8x8 bit block held in a u64 (byte i = row i, LSB-first bits).
// Hacker's Delight 7-3.
inline u64 transpose8x8(u64 x) {
  u64 t;
  t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAull;
  x = x ^ t ^ (t << 7);
  t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCull;
  x = x ^ t ^ (t << 14);
  t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ull;
  x = x ^ t ^ (t << 28);
  return x;
}

}  // namespace

void portable_aes128_key_expand(Block key, Block* rk11) {
  u8 w[176];
  key.to_bytes(w);
  u8 rcon = 1;
  for (int i = 16; i < 176; i += 4) {
    u8 t[4] = {w[i - 4], w[i - 3], w[i - 2], w[i - 1]};
    if (i % 16 == 0) {
      const u8 tmp = t[0];
      t[0] = static_cast<u8>(kSbox[t[1]] ^ rcon);
      t[1] = kSbox[t[2]];
      t[2] = kSbox[t[3]];
      t[3] = kSbox[tmp];
      rcon = xtime(rcon);
    }
    for (int k = 0; k < 4; ++k) w[i + k] = static_cast<u8>(w[i + k - 16] ^ t[k]);
  }
  for (int r = 0; r < 11; ++r) rk11[r] = Block::from_bytes(w + 16 * r);
}

void portable_aes128_encrypt_blocks(const Block* rk11, const Block* in,
                                    Block* out, std::size_t n) {
  for (std::size_t b = 0; b < n; ++b) {
    u8 s[16];
    in[b].to_bytes(s);
    u8 k[16];
    rk11[0].to_bytes(k);
    for (int i = 0; i < 16; ++i) s[i] ^= k[i];
    for (int round = 1; round <= 10; ++round) {
      for (int i = 0; i < 16; ++i) s[i] = kSbox[s[i]];
      // ShiftRows
      u8 t;
      t = s[1]; s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
      t = s[2]; s[2] = s[10]; s[10] = t; t = s[6]; s[6] = s[14]; s[14] = t;
      t = s[15]; s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
      if (round < 10) {
        for (int c = 0; c < 4; ++c) {
          u8* p = s + 4 * c;
          const u8 a0 = p[0], a1 = p[1], a2 = p[2], a3 = p[3];
          const u8 x = static_cast<u8>(a0 ^ a1 ^ a2 ^ a3);
          p[0] = static_cast<u8>(a0 ^ x ^ xtime(static_cast<u8>(a0 ^ a1)));
          p[1] = static_cast<u8>(a1 ^ x ^ xtime(static_cast<u8>(a1 ^ a2)));
          p[2] = static_cast<u8>(a2 ^ x ^ xtime(static_cast<u8>(a2 ^ a3)));
          p[3] = static_cast<u8>(a3 ^ x ^ xtime(static_cast<u8>(a3 ^ a0)));
        }
      }
      rk11[round].to_bytes(k);
      for (int i = 0; i < 16; ++i) s[i] ^= k[i];
    }
    out[b] = Block::from_bytes(s);
  }
}

void portable_xor_bytes(u8* dst, const u8* src, std::size_t n) {
  std::size_t i = 0;
  // Word-at-a-time keeps the scalar fallback respectable on wide rows.
  for (; i + 8 <= n; i += 8) {
    u64 d, s;
    std::memcpy(&d, dst + i, 8);
    std::memcpy(&s, src + i, 8);
    d ^= s;
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void portable_xor3_bytes(u8* dst, const u8* a, const u8* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    u64 d, x, y;
    std::memcpy(&d, dst + i, 8);
    std::memcpy(&x, a + i, 8);
    std::memcpy(&y, b + i, 8);
    d ^= x ^ y;
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < n; ++i) dst[i] ^= static_cast<u8>(a[i] ^ b[i]);
}

void portable_transpose_bits(const u8* in, std::size_t in_stride,
                             std::size_t n_rows, std::size_t n_cols, u8* out,
                             std::size_t out_stride) {
  const std::size_t byte_cols = bytes_for_bits(n_cols);
  for (std::size_t i0 = 0; i0 + 8 <= n_rows; i0 += 8) {
    const std::size_t out_jb = i0 / 8;
    for (std::size_t jb = 0; jb < byte_cols; ++jb) {
      u64 tile = 0;
      for (int k = 0; k < 8; ++k)
        tile |= static_cast<u64>(in[(i0 + k) * in_stride + jb]) << (8 * k);
      if (tile == 0) continue;
      tile = transpose8x8(tile);
      const std::size_t out_i0 = jb * 8;
      const std::size_t out_rows = n_cols > out_i0 ? n_cols - out_i0 : 0;
      const int lim = static_cast<int>(out_rows < 8 ? out_rows : 8);
      for (int k = 0; k < lim; ++k) {
        const u8 b = static_cast<u8>(tile >> (8 * k));
        if (b) out[(out_i0 + static_cast<std::size_t>(k)) * out_stride + out_jb] = b;
      }
    }
  }
}

}  // namespace abnn2::simd::detail
