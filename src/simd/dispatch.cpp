#include "simd/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "simd/kernels_impl.h"

namespace abnn2::simd {
namespace {

CpuFeatures detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  // __builtin_cpu_supports consults CPUID (and xgetbv for AVX state) via
  // libgcc's __cpu_model, so this is the one-time runtime probe.
  f.sse2 = __builtin_cpu_supports("sse2");
  f.aesni = __builtin_cpu_supports("aes");
  f.avx2 = __builtin_cpu_supports("avx2");
#endif
  return f;
}

const KernelTable kPortableTable = {
    "portable",
    &detail::portable_aes128_key_expand,
    &detail::portable_aes128_encrypt_blocks,
    &detail::portable_xor_bytes,
    &detail::portable_xor3_bytes,
    &detail::portable_transpose_bits,
    nullptr,
};

// Assembled field-by-field: features are orthogonal (a CPU can have SSE2
// without AES-NI; an old binary may lack the AVX2 TU), so each slot
// independently takes the fastest compiled-in + CPUID-confirmed variant.
const KernelTable& build_native_table() {
  // Backing storage for k.name. A plain char array (no destructor) so the
  // pointer stays valid for at-exit readers like the bench JSON reporter,
  // whatever the static destruction order.
  static char name[32];
  static KernelTable t = [] {
    KernelTable k = kPortableTable;
    const CpuFeatures f = detect();
    std::string n = "portable";
#if defined(ABNN2_SIMD_COMPILED_X86)
    if (f.sse2) {
      n = "sse2";
      k.xor_bytes = &detail::sse2_xor_bytes;
      k.xor3_bytes = &detail::sse2_xor3_bytes;
      k.transpose_bits = &detail::sse2_transpose_bits;
      k.sha256_x4 = &detail::sse2_sha256_x4;
    }
    if (f.aesni) {
      n += "+aes-ni";
      k.aes128_key_expand = &detail::aesni_aes128_key_expand;
      k.aes128_encrypt_blocks = &detail::aesni_aes128_encrypt_blocks;
    }
#endif
#if defined(ABNN2_SIMD_COMPILED_AVX2)
    if (f.avx2) {
      n += "+avx2";
      k.xor_bytes = &detail::avx2_xor_bytes;
      k.xor3_bytes = &detail::avx2_xor3_bytes;
    }
#endif
    std::snprintf(name, sizeof(name), "%s", n.c_str());
    k.name = name;
    return k;
  }();
  return t;
}

bool env_force_portable() {
  const char* v = std::getenv("ABNN2_FORCE_PORTABLE");
  return v != nullptr && v[0] == '1';
}

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* initial_table() {
  return env_force_portable() ? &kPortableTable : &build_native_table();
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect();
  return f;
}

const KernelTable& portable_kernels() { return kPortableTable; }

const KernelTable& native_kernels() { return build_native_table(); }

const KernelTable& active_kernels() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    // First use: resolve once. Races are benign (both writers store a valid
    // pointer computed from the same environment).
    t = initial_table();
    g_active.store(t, std::memory_order_release);
  }
  return *t;
}

bool forced_portable() { return &active_kernels() == &kPortableTable; }

void set_force_portable(bool force) {
  g_active.store(force ? &kPortableTable : &build_native_table(),
                 std::memory_order_release);
}

std::string dispatch_summary() {
  const KernelTable& k = active_kernels();
  std::string s = k.name;
  const CpuFeatures& f = cpu_features();
  s += " (cpu:";
  s += f.sse2 ? " sse2" : "";
  s += f.aesni ? " aes-ni" : "";
  s += f.avx2 ? " avx2" : "";
  s += ")";
#if !defined(ABNN2_SIMD_COMPILED_X86)
  s += " [portable-only build]";
#endif
  return s;
}

void log_dispatch(const char* prog) {
  const char* v = std::getenv("ABNN2_VERBOSE");
  if (v == nullptr || v[0] != '1') return;
  std::fprintf(stderr, "%s: simd dispatch: %s\n", prog,
               dispatch_summary().c_str());
}

}  // namespace abnn2::simd
