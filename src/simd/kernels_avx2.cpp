// AVX2 kernels: 32-byte-wide XOR for the OT column-correction and row-mask
// loops. Compiled with -mavx2 regardless of the global -march (see
// src/CMakeLists.txt); installed only after CPUID reports AVX2.
#include "simd/kernels_impl.h"

#if defined(ABNN2_SIMD_COMPILED_AVX2)

#include <immintrin.h>

namespace abnn2::simd::detail {

void avx2_xor_bytes(u8* dst, const u8* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, s));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void avx2_xor3_bytes(u8* dst, const u8* a, const u8* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, _mm256_xor_si256(x, y)));
  }
  for (; i < n; ++i) dst[i] ^= static_cast<u8>(a[i] ^ b[i]);
}

}  // namespace abnn2::simd::detail

#endif  // ABNN2_SIMD_COMPILED_AVX2
