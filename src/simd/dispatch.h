// Runtime CPU-feature dispatch for the batched crypto kernels (src/simd/).
//
// The seed selected AES-NI at *compile time* (-maes via -march=native), so a
// generic Release build silently fell back to the portable byte-wise AES.
// This layer detects AES-NI / AVX2 / SSE2 once at runtime (CPUID) and routes
// every kernel call through a per-feature function table, so one binary hits
// the fastest compiled-in path on whatever machine it lands on.
//
// Dispatch never changes results: every kernel computes the same function
// (AES, SHA-256, XOR, bit-transpose are all deterministic), so wire
// transcripts are byte-identical across targets — asserted by
// tests/test_simd.cpp.
//
// Overrides, in priority order:
//   1. -DABNN2_FORCE_PORTABLE=ON (CMake): SIMD TUs are compiled out; the
//      portable table is the only one linked in.
//   2. ABNN2_FORCE_PORTABLE=1 (environment): runtime-selects the portable
//      table even when fast kernels are compiled in (used by the
//      cross-dispatch determinism tests).
//   3. simd::set_force_portable(bool): programmatic equivalent of (2).
#pragma once

#include <string>

namespace abnn2::simd {

/// CPUID-detected features, intersected with what this binary was compiled
/// with (a kernel can only run if its TU was built with the matching -m flag
/// AND the CPU reports the feature).
struct CpuFeatures {
  bool sse2 = false;
  bool aesni = false;
  bool avx2 = false;
};

/// Raw detection result (independent of force-portable overrides).
const CpuFeatures& cpu_features();

/// True when the portable table is active — either compiled that way,
/// forced by ABNN2_FORCE_PORTABLE=1 in the environment, or set_force_portable.
bool forced_portable();

/// Test hook: atomically swap the active kernel table between the portable
/// and the best-for-this-CPU variant. Safe between protocol runs (kernels
/// are pure; AES round keys are path-independent).
void set_force_portable(bool force);

/// One-line human-readable description of the active kernel table, e.g.
/// "aes-ni(8-way)+sse2-transpose+sse2-sha256-x4+avx2-xor" or "portable".
std::string dispatch_summary();

/// Prints "<prog>: simd dispatch: <summary>" to stderr when ABNN2_VERBOSE=1.
/// Examples and serving CLIs call this at startup so perf reports are
/// attributable to the hardware path actually taken.
void log_dispatch(const char* prog);

}  // namespace abnn2::simd
