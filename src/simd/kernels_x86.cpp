// x86 SIMD kernels: AES-NI 8-way pipelined AES-128, SSE2 movemask
// bit-transpose, SSE2 block XOR and a 4-lane multi-buffer SHA-256.
//
// This TU is compiled with -maes (see src/CMakeLists.txt) even when the rest
// of the build targets generic x86-64, so a stock Release binary still
// carries the fast paths; dispatch.cpp only installs them after CPUID
// confirms the features. Everything here must be bit-identical to the
// portable kernels — the SIMD is an execution strategy, not a different
// function.
#include "simd/kernels_impl.h"

#if defined(ABNN2_SIMD_COMPILED_X86)

#include <emmintrin.h>
#include <wmmintrin.h>

namespace abnn2::simd::detail {
namespace {

template <int RC>
inline __m128i expand_step(__m128i key) {
  __m128i t = _mm_aeskeygenassist_si128(key, RC);
  t = _mm_shuffle_epi32(t, _MM_SHUFFLE(3, 3, 3, 3));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  return _mm_xor_si128(key, t);
}

}  // namespace

void aesni_aes128_key_expand(Block key, Block* rk11) {
  __m128i k = key.m();
  rk11[0] = Block::from_m(k);
  k = expand_step<0x01>(k); rk11[1] = Block::from_m(k);
  k = expand_step<0x02>(k); rk11[2] = Block::from_m(k);
  k = expand_step<0x04>(k); rk11[3] = Block::from_m(k);
  k = expand_step<0x08>(k); rk11[4] = Block::from_m(k);
  k = expand_step<0x10>(k); rk11[5] = Block::from_m(k);
  k = expand_step<0x20>(k); rk11[6] = Block::from_m(k);
  k = expand_step<0x40>(k); rk11[7] = Block::from_m(k);
  k = expand_step<0x80>(k); rk11[8] = Block::from_m(k);
  k = expand_step<0x1B>(k); rk11[9] = Block::from_m(k);
  k = expand_step<0x36>(k); rk11[10] = Block::from_m(k);
}

void aesni_aes128_encrypt_blocks(const Block* rk11, const Block* in,
                                 Block* out, std::size_t n) {
  // 8-way round interleaving: AESENC has ~4-cycle latency but 1-2/cycle
  // throughput, so eight independent streams keep the unit saturated where
  // the seed's 4-way loop left it half idle.
  const __m128i k0 = rk11[0].m();
  const __m128i kl = rk11[10].m();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i s0 = _mm_xor_si128(in[i + 0].m(), k0);
    __m128i s1 = _mm_xor_si128(in[i + 1].m(), k0);
    __m128i s2 = _mm_xor_si128(in[i + 2].m(), k0);
    __m128i s3 = _mm_xor_si128(in[i + 3].m(), k0);
    __m128i s4 = _mm_xor_si128(in[i + 4].m(), k0);
    __m128i s5 = _mm_xor_si128(in[i + 5].m(), k0);
    __m128i s6 = _mm_xor_si128(in[i + 6].m(), k0);
    __m128i s7 = _mm_xor_si128(in[i + 7].m(), k0);
    for (int r = 1; r < 10; ++r) {
      const __m128i k = rk11[r].m();
      s0 = _mm_aesenc_si128(s0, k);
      s1 = _mm_aesenc_si128(s1, k);
      s2 = _mm_aesenc_si128(s2, k);
      s3 = _mm_aesenc_si128(s3, k);
      s4 = _mm_aesenc_si128(s4, k);
      s5 = _mm_aesenc_si128(s5, k);
      s6 = _mm_aesenc_si128(s6, k);
      s7 = _mm_aesenc_si128(s7, k);
    }
    out[i + 0] = Block::from_m(_mm_aesenclast_si128(s0, kl));
    out[i + 1] = Block::from_m(_mm_aesenclast_si128(s1, kl));
    out[i + 2] = Block::from_m(_mm_aesenclast_si128(s2, kl));
    out[i + 3] = Block::from_m(_mm_aesenclast_si128(s3, kl));
    out[i + 4] = Block::from_m(_mm_aesenclast_si128(s4, kl));
    out[i + 5] = Block::from_m(_mm_aesenclast_si128(s5, kl));
    out[i + 6] = Block::from_m(_mm_aesenclast_si128(s6, kl));
    out[i + 7] = Block::from_m(_mm_aesenclast_si128(s7, kl));
  }
  if (i + 4 <= n) {
    __m128i s0 = _mm_xor_si128(in[i + 0].m(), k0);
    __m128i s1 = _mm_xor_si128(in[i + 1].m(), k0);
    __m128i s2 = _mm_xor_si128(in[i + 2].m(), k0);
    __m128i s3 = _mm_xor_si128(in[i + 3].m(), k0);
    for (int r = 1; r < 10; ++r) {
      const __m128i k = rk11[r].m();
      s0 = _mm_aesenc_si128(s0, k);
      s1 = _mm_aesenc_si128(s1, k);
      s2 = _mm_aesenc_si128(s2, k);
      s3 = _mm_aesenc_si128(s3, k);
    }
    out[i + 0] = Block::from_m(_mm_aesenclast_si128(s0, kl));
    out[i + 1] = Block::from_m(_mm_aesenclast_si128(s1, kl));
    out[i + 2] = Block::from_m(_mm_aesenclast_si128(s2, kl));
    out[i + 3] = Block::from_m(_mm_aesenclast_si128(s3, kl));
    i += 4;
  }
  for (; i < n; ++i) {
    __m128i s = _mm_xor_si128(in[i].m(), k0);
    for (int r = 1; r < 10; ++r) s = _mm_aesenc_si128(s, rk11[r].m());
    out[i] = Block::from_m(_mm_aesenclast_si128(s, kl));
  }
}

void sse2_xor_bytes(u8* dst, const u8* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, s));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void sse2_xor3_bytes(u8* dst, const u8* a, const u8* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i y = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, _mm_xor_si128(x, y)));
  }
  for (; i < n; ++i) dst[i] ^= static_cast<u8>(a[i] ^ b[i]);
}

void sse2_transpose_bits(const u8* in, std::size_t in_stride,
                         std::size_t n_rows, std::size_t n_cols, u8* out,
                         std::size_t out_stride) {
  const std::size_t byte_cols = bytes_for_bits(n_cols);
  std::size_t i0 = 0;
  // 16 input rows x 8 input columns per tile: gather one byte from each of
  // 16 rows, then peel bit planes with movemask (MSB of each byte), shifting
  // left one bit per plane. Writes 8 output rows x 16 output columns (one
  // u16 each). Bits within a byte are LSB-first, so plane b (starting at the
  // MSB, b = 7) is input column jb*8+b.
  for (; i0 + 16 <= n_rows; i0 += 16) {
    const std::size_t out_byte = i0 / 8;
    for (std::size_t jb = 0; jb < byte_cols; ++jb) {
      alignas(16) u8 g[16];
      for (int k = 0; k < 16; ++k) g[k] = in[(i0 + k) * in_stride + jb];
      __m128i v = _mm_load_si128(reinterpret_cast<const __m128i*>(g));
      const std::size_t col_base = jb * 8;
      for (int b = 7; b >= 0; --b) {
        const u16 m = static_cast<u16>(_mm_movemask_epi8(v));
        v = _mm_slli_epi64(v, 1);
        const std::size_t oc = col_base + static_cast<std::size_t>(b);
        if (oc < n_cols && m != 0)
          std::memcpy(out + oc * out_stride + out_byte, &m, 2);
      }
    }
  }
  // Leftover multiple-of-8 rows (n_rows % 16 == 8): portable 8x8 tiles.
  if (i0 < n_rows)
    portable_transpose_bits(in + i0 * in_stride, in_stride, n_rows - i0,
                            n_cols, out + i0 / 8, out_stride);
}

// ---- 4-lane multi-buffer SHA-256 -----------------------------------------
//
// Four independent single-block compressions run in the four 32-bit lanes of
// an __m128i (classic multi-buffer layout, cf. libOTe / ISA-L). Only SSE2
// ops are used, so this path is available on every x86-64 CPU.
namespace {

constexpr u32 kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline __m128i rotr32(__m128i x, int n) {
  return _mm_or_si128(_mm_srli_epi32(x, n), _mm_slli_epi32(x, 32 - n));
}

}  // namespace

void sse2_sha256_x4(const u8* blocks_4x64, u8* out_4x32) {
  // Load the message schedule transposed: w[i] lane L = big-endian word i of
  // block L.
  __m128i w[64];
  for (int i = 0; i < 16; ++i) {
    alignas(16) u32 lanes[4];
    for (int l = 0; l < 4; ++l) {
      const u8* p = blocks_4x64 + 64 * l + 4 * i;
      lanes[l] = (u32(p[0]) << 24) | (u32(p[1]) << 16) | (u32(p[2]) << 8) |
                 u32(p[3]);
    }
    w[i] = _mm_load_si128(reinterpret_cast<const __m128i*>(lanes));
  }
  for (int i = 16; i < 64; ++i) {
    const __m128i w15 = w[i - 15], w2 = w[i - 2];
    const __m128i s0 = _mm_xor_si128(_mm_xor_si128(rotr32(w15, 7), rotr32(w15, 18)),
                                     _mm_srli_epi32(w15, 3));
    const __m128i s1 = _mm_xor_si128(_mm_xor_si128(rotr32(w2, 17), rotr32(w2, 19)),
                                     _mm_srli_epi32(w2, 10));
    w[i] = _mm_add_epi32(_mm_add_epi32(w[i - 16], s0),
                         _mm_add_epi32(w[i - 7], s1));
  }
  __m128i a = _mm_set1_epi32(static_cast<int>(0x6a09e667));
  __m128i b = _mm_set1_epi32(static_cast<int>(0xbb67ae85));
  __m128i c = _mm_set1_epi32(static_cast<int>(0x3c6ef372));
  __m128i d = _mm_set1_epi32(static_cast<int>(0xa54ff53a));
  __m128i e = _mm_set1_epi32(static_cast<int>(0x510e527f));
  __m128i f = _mm_set1_epi32(static_cast<int>(0x9b05688c));
  __m128i g = _mm_set1_epi32(static_cast<int>(0x1f83d9ab));
  __m128i h = _mm_set1_epi32(static_cast<int>(0x5be0cd19));
  for (int i = 0; i < 64; ++i) {
    const __m128i s1 =
        _mm_xor_si128(_mm_xor_si128(rotr32(e, 6), rotr32(e, 11)), rotr32(e, 25));
    const __m128i ch =
        _mm_xor_si128(_mm_and_si128(e, f), _mm_andnot_si128(e, g));
    const __m128i t1 = _mm_add_epi32(
        _mm_add_epi32(_mm_add_epi32(h, s1), _mm_add_epi32(ch, w[i])),
        _mm_set1_epi32(static_cast<int>(kK[i])));
    const __m128i s0 =
        _mm_xor_si128(_mm_xor_si128(rotr32(a, 2), rotr32(a, 13)), rotr32(a, 22));
    const __m128i maj = _mm_xor_si128(
        _mm_xor_si128(_mm_and_si128(a, b), _mm_and_si128(a, c)),
        _mm_and_si128(b, c));
    const __m128i t2 = _mm_add_epi32(s0, maj);
    h = g; g = f; f = e; e = _mm_add_epi32(d, t1);
    d = c; c = b; b = a; a = _mm_add_epi32(t1, t2);
  }
  const __m128i iv[8] = {
      _mm_set1_epi32(static_cast<int>(0x6a09e667)),
      _mm_set1_epi32(static_cast<int>(0xbb67ae85)),
      _mm_set1_epi32(static_cast<int>(0x3c6ef372)),
      _mm_set1_epi32(static_cast<int>(0xa54ff53a)),
      _mm_set1_epi32(static_cast<int>(0x510e527f)),
      _mm_set1_epi32(static_cast<int>(0x9b05688c)),
      _mm_set1_epi32(static_cast<int>(0x1f83d9ab)),
      _mm_set1_epi32(static_cast<int>(0x5be0cd19))};
  const __m128i st[8] = {
      _mm_add_epi32(a, iv[0]), _mm_add_epi32(b, iv[1]),
      _mm_add_epi32(c, iv[2]), _mm_add_epi32(d, iv[3]),
      _mm_add_epi32(e, iv[4]), _mm_add_epi32(f, iv[5]),
      _mm_add_epi32(g, iv[6]), _mm_add_epi32(h, iv[7])};
  for (int i = 0; i < 8; ++i) {
    alignas(16) u32 lanes[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), st[i]);
    for (int l = 0; l < 4; ++l) {
      u8* o = out_4x32 + 32 * l + 4 * i;
      o[0] = static_cast<u8>(lanes[l] >> 24);
      o[1] = static_cast<u8>(lanes[l] >> 16);
      o[2] = static_cast<u8>(lanes[l] >> 8);
      o[3] = static_cast<u8>(lanes[l]);
    }
  }
}

}  // namespace abnn2::simd::detail

#endif  // ABNN2_SIMD_COMPILED_X86
