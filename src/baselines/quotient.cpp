#include "baselines/quotient.h"

#include "common/packing.h"

namespace abnn2::baselines {
namespace {

using nn::MatU64;
using ss::Ring;

struct WeightIter {
  std::size_t n;
  std::size_t i(std::size_t t) const { return t / n; }
  std::size_t j(std::size_t t) const { return t % n; }
};

}  // namespace

MatU64 quotient_triplet_server(Channel& ch, IknpReceiver& ot,
                               const MatU64& ternary_codes, std::size_t o,
                               const Ring& ring, std::size_t chunk_weights) {
  const std::size_t l = ring.bits();
  const std::size_t m = ternary_codes.rows(), n = ternary_codes.cols();
  const std::size_t total = m * n;
  const WeightIter it{n};

  MatU64 u(m, o);
  std::vector<u64> pad(o);
  std::size_t t0 = 0;
  while (t0 < total) {
    const std::size_t count = std::min(chunk_weights, total - t0);
    // Two OT instances per weight: [+] then [-].
    BitVec choices(2 * count);
    for (std::size_t c = 0; c < count; ++c) {
      const u64 code = ternary_codes.at(it.i(t0 + c), it.j(t0 + c));
      ABNN2_CHECK_ARG(code <= 2, "not a ternary code");
      choices.set(2 * c, code == 2);      // w_plus
      choices.set(2 * c + 1, code == 0);  // w_minus
    }
    ot.extend(ch, choices);

    const std::vector<u8> blob =
        ch.recv_msg(bytes_for_bits(2 * count * o * l));
    const std::vector<u64> vals = unpack_bits(blob, l, 2 * count * o);
    for (std::size_t c = 0; c < count; ++c) {
      u64* urow = u.row(it.i(t0 + c));
      for (int half = 0; half < 2; ++half) {
        const std::size_t inst = 2 * c + static_cast<std::size_t>(half);
        ro_expand_u64(ot.pad(inst), l, pad.data(), o);
        const bool bit = choices[inst];
        for (std::size_t k = 0; k < o; ++k) {
          // C-OT convention: choice 0 -> -pad0; choice 1 -> unmask message.
          const u64 contrib =
              bit ? ring.reduce(vals[inst * o + k] ^ pad[k])
                  : ring.neg(pad[k]);
          urow[k] = ring.add(urow[k], contrib);
        }
      }
    }
    t0 += count;
  }
  return u;
}

MatU64 quotient_triplet_client(Channel& ch, IknpSender& ot, const MatU64& r,
                               std::size_t m, const Ring& ring,
                               std::size_t chunk_weights) {
  const std::size_t l = ring.bits();
  const std::size_t n = r.rows(), o = r.cols();
  const std::size_t total = m * n;
  const WeightIter it{n};

  MatU64 v(m, o);
  std::vector<u64> pad0(o), pad1(o);
  std::size_t t0 = 0;
  while (t0 < total) {
    const std::size_t count = std::min(chunk_weights, total - t0);
    ot.extend(ch, 2 * count);

    std::vector<u64> fields(2 * count * o);
    for (std::size_t c = 0; c < count; ++c) {
      const u64* rrow = r.row(it.j(t0 + c));
      u64* vrow = v.row(it.i(t0 + c));
      for (int half = 0; half < 2; ++half) {
        const std::size_t inst = 2 * c + static_cast<std::size_t>(half);
        const i64 sign = half == 0 ? 1 : -1;
        ro_expand_u64(ot.pad(inst, false), l, pad0.data(), o);
        ro_expand_u64(ot.pad(inst, true), l, pad1.data(), o);
        for (std::size_t k = 0; k < o; ++k) {
          // Share s = pad0; message for choice 1 is sign*r - s.
          const u64 target =
              sign > 0 ? rrow[k] : ring.neg(rrow[k]);
          fields[inst * o + k] = ring.sub(target, pad0[k]) ^ pad1[k];
          vrow[k] = ring.add(vrow[k], pad0[k]);
        }
      }
    }
    ch.send_msg(pack_bits(fields, l));
    t0 += count;
  }
  return v;
}

}  // namespace abnn2::baselines
