// SecureML-style OT-based offline triplet generation (Mohassel-Zhang,
// S&P'17), the baseline of the paper's Table 3 and the "(1,...,1)" rows of
// Table 2 in spirit: multiplication of an l-bit secret by a bit-decomposed
// operand via l correlated OTs per product (Gilboa multiplication).
//
// Server holds W as plain ring values (m x n), client holds R (n x o);
// output shares satisfy U + V = W * R like the ABNN2 triplet generator, so
// the two are drop-in comparable. The bit-decomposed operand is the WEIGHT
// (server side), so the server acts as the COT receiver with choice bits =
// bits of w, mirroring how SecureML generates matmul triplets for a known
// model.
//
// Message i of the COT for bit i of w carries only the top l-i bits that
// still matter (SecureML's length optimization), which is where the
// l(l+1)/2 bits -> /128 RO-packing accounting of Table 1 comes from.
#pragma once

#include "nn/tensor.h"
#include "ot/iknp.h"
#include "ss/additive.h"

namespace abnn2::baselines {

/// Server: holds the weight VALUES (ring elements, m x n). Returns U (m x o).
nn::MatU64 secureml_triplet_server(Channel& ch, IknpReceiver& ot,
                                   const nn::MatU64& w, std::size_t o,
                                   const ss::Ring& ring,
                                   std::size_t chunk_products = 2048);

/// Client: holds R (n x o). Returns V (m x o).
nn::MatU64 secureml_triplet_client(Channel& ch, IknpSender& ot,
                                   const nn::MatU64& r, std::size_t m,
                                   const ss::Ring& ring, Prg& prg,
                                   std::size_t chunk_products = 2048);

}  // namespace abnn2::baselines
