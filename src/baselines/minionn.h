// MiniONN-style offline triplet generation (Liu et al., CCS'17) on the RLWE
// additively-homomorphic substrate (see DESIGN.md substitution #4).
//
// The client encrypts each column r_k of its random matrix R as a
// polynomial; the server multiplies by weight-block polynomials (several
// output rows packed per ciphertext via the dot-product-in-a-coefficient
// trick of the MiniONN transformations), blinds every coefficient with a
// fresh random plaintext, floods the noise, and returns the ciphertexts.
// The client decrypts and reads its share V at the packed dot-product
// coefficients; the server's blinds at those coefficients form U. As in
// MiniONN, the SIMD-style packing amortizes one ciphertext across
// floor(n_ring / n_in) output rows.
//
// The online phase is identical in structure to ABNN2's (shares + GC ReLU),
// which is also how MiniONN operates, so end-to-end comparisons swap only
// the offline backend.
#pragma once

#include "he/bfv.h"
#include "nn/tensor.h"
#include "ss/additive.h"

namespace abnn2::baselines {

/// Per-connection MiniONN state (deterministic public parameters, client
/// secret key).
class MinionnServer {
 public:
  MinionnServer(std::size_t t_bits, std::size_t ring_n = 4096)
      : params_(t_bits, ring_n) {}

  /// Weights are SIGNED values (|w| <= 2^20). Returns U (m x o).
  nn::MatU64 triplet_gen(Channel& ch, const nn::Matrix<i64>& w, std::size_t o,
                         const ss::Ring& ring, Prg& prg);

  const he::BfvParams& params() const { return params_; }

 private:
  he::BfvParams params_;
};

class MinionnClient {
 public:
  MinionnClient(std::size_t t_bits, Prg& prg, std::size_t ring_n = 4096)
      : params_(t_bits, ring_n), sk_(params_, prg) {}

  /// Returns V (m x o) for its random R (n x o).
  nn::MatU64 triplet_gen(Channel& ch, const nn::MatU64& r, std::size_t m,
                         const ss::Ring& ring, Prg& prg);

  const he::BfvParams& params() const { return params_; }

 private:
  he::BfvParams params_;
  he::SecretKey sk_;
};

}  // namespace abnn2::baselines
