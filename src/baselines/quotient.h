// QUOTIENT-style ternary triplet generation (Agrawal et al., CCS'19): each
// ternary weight w in {-1,0,+1} is written w = w_plus - w_minus with
// w_plus, w_minus in {0,1}, and each binary multiplication is one correlated
// 1-out-of-2 OT ("the author converted the ternary multiplication into two
// binary multiplications, which is completed based on 1-out-of-2 OT").
//
// Batch columns share the OT instance like ABNN2's multi-batch scheme; the
// single correlated message carries o packed l-bit elements.
#pragma once

#include "nn/tensor.h"
#include "ot/iknp.h"
#include "ss/additive.h"

namespace abnn2::baselines {

/// Server: ternary codes (0,1,2 -> -1,0,+1), m x n. Returns U (m x o).
nn::MatU64 quotient_triplet_server(Channel& ch, IknpReceiver& ot,
                                   const nn::MatU64& ternary_codes,
                                   std::size_t o, const ss::Ring& ring,
                                   std::size_t chunk_weights = 4096);

/// Client: R (n x o). Returns V (m x o).
nn::MatU64 quotient_triplet_client(Channel& ch, IknpSender& ot,
                                   const nn::MatU64& r, std::size_t m,
                                   const ss::Ring& ring,
                                   std::size_t chunk_weights = 4096);

}  // namespace abnn2::baselines
