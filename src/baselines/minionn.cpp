#include "baselines/minionn.h"

namespace abnn2::baselines {
namespace {

using nn::MatU64;
using ss::Ring;

}  // namespace

MatU64 MinionnServer::triplet_gen(Channel& ch, const nn::Matrix<i64>& w,
                                  std::size_t o, const Ring& ring, Prg& prg) {
  const std::size_t m = w.rows(), n_in = w.cols();
  const std::size_t nr = params_.n();
  ABNN2_CHECK_ARG(n_in <= nr, "layer wider than the HE ring");
  ABNN2_CHECK_ARG(ring.bits() <= params_.t_bits(), "ring exceeds plaintext modulus");
  const std::size_t rows_per_ct = nr / n_in;
  const std::size_t blocks = ceil_div(m, rows_per_ct);

  // Prepare the weight-block polynomials once (reused for all o columns):
  // block b holds rows b*rows_per_ct .. ; row slot t contributes
  // x^{t*n_in} * reverse(w_row).
  std::vector<he::PlainNtt> wblocks;
  wblocks.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    std::vector<i64> poly(nr, 0);
    for (std::size_t t = 0; t < rows_per_ct; ++t) {
      const std::size_t row = b * rows_per_ct + t;
      if (row >= m) break;
      for (std::size_t j = 0; j < n_in; ++j)
        poly[t * n_in + (n_in - 1 - j)] = w.at(row, j);
    }
    wblocks.push_back(he::prepare_plain(params_, poly));
  }

  MatU64 u(m, o);
  for (std::size_t k = 0; k < o; ++k) {
    // Receive Enc(r_k).
    const std::vector<u8> msg = ch.recv_msg(params_.ciphertext_bytes());
    Reader rd(msg);
    const he::Ciphertext enc_r = he::Ciphertext::deserialize(rd, params_);
    const he::CiphertextNtt enc_r_ntt = he::to_ntt(params_, enc_r);

    Writer wr;
    for (std::size_t b = 0; b < blocks; ++b) {
      he::Ciphertext prod = he::mul_prepared(params_, enc_r_ntt, wblocks[b]);
      // Blind every coefficient; keep the blinds at the dot-product
      // coefficients as this party's share U.
      std::vector<u64> blind(nr);
      for (auto& v : blind) v = prg.next_bits(params_.t_bits());
      for (std::size_t t = 0; t < rows_per_ct; ++t) {
        const std::size_t row = b * rows_per_ct + t;
        if (row >= m) break;
        // (w*r - blind) mod 2^l reconstructs with u = blind mod 2^l because
        // 2^l divides the plaintext modulus.
        u.at(row, k) = ring.reduce(blind[t * n_in + n_in - 1]);
      }
      // Subtract the blind: add (t - blind) mod t.
      std::vector<u64> neg_blind(nr);
      for (std::size_t j = 0; j < nr; ++j)
        neg_blind[j] = (0 - blind[j]) & mask_l(params_.t_bits());
      he::add_plain_inplace(params_, prod, neg_blind);
      he::flood_noise_inplace(params_, prod, prg);
      prod.serialize(wr);
    }
    ch.send_msg(wr);
  }
  return u;
}

MatU64 MinionnClient::triplet_gen(Channel& ch, const MatU64& r, std::size_t m,
                                  const Ring& ring, Prg& prg) {
  const std::size_t n_in = r.rows(), o = r.cols();
  const std::size_t nr = params_.n();
  ABNN2_CHECK_ARG(n_in <= nr, "layer wider than the HE ring");
  const std::size_t rows_per_ct = nr / n_in;
  const std::size_t blocks = ceil_div(m, rows_per_ct);

  MatU64 v(m, o);
  for (std::size_t k = 0; k < o; ++k) {
    std::vector<u64> rpoly(n_in);
    for (std::size_t j = 0; j < n_in; ++j) rpoly[j] = r.at(j, k);
    const he::Ciphertext enc_r = sk_.encrypt(params_, rpoly, prg);
    Writer wr;
    enc_r.serialize(wr);
    ch.send_msg(wr);

    const std::vector<u8> reply =
        ch.recv_msg(blocks * params_.ciphertext_bytes());
    Reader rd(reply);
    for (std::size_t b = 0; b < blocks; ++b) {
      const he::Ciphertext ct = he::Ciphertext::deserialize(rd, params_);
      const std::vector<u64> pt = sk_.decrypt(params_, ct);
      for (std::size_t t = 0; t < rows_per_ct; ++t) {
        const std::size_t row = b * rows_per_ct + t;
        if (row >= m) break;
        v.at(row, k) = ring.reduce(pt[t * n_in + n_in - 1]);
      }
    }
    ABNN2_CHECK(rd.done(), "trailing bytes in MiniONN reply");
  }
  return v;
}

}  // namespace abnn2::baselines
