#include "baselines/secureml.h"

#include "common/packing.h"

namespace abnn2::baselines {
namespace {

using nn::MatU64;
using ss::Ring;

// Product p <-> (i, j, k) with k fastest: p = (i*n + j)*o + k.
struct ProductIter {
  std::size_t n, o;
  std::size_t i(std::size_t p) const { return p / (n * o); }
  std::size_t j(std::size_t p) const { return (p / o) % n; }
  std::size_t k(std::size_t p) const { return p % o; }
};

}  // namespace

MatU64 secureml_triplet_server(Channel& ch, IknpReceiver& ot, const MatU64& w,
                               std::size_t o, const Ring& ring,
                               std::size_t chunk_products) {
  const std::size_t l = ring.bits();
  const std::size_t m = w.rows(), n = w.cols();
  const std::size_t total = m * n * o;
  const ProductIter it{n, o};

  MatU64 u(m, o);
  std::size_t p0 = 0;
  while (p0 < total) {
    const std::size_t count = std::min(chunk_products, total - p0);
    // Choice bits: per product, the l bits of the weight, LSB first.
    BitVec choices(count * l);
    for (std::size_t c = 0; c < count; ++c) {
      const u64 wij = w.at(it.i(p0 + c), it.j(p0 + c));
      for (std::size_t b = 0; b < l; ++b)
        choices.set(c * l + b, (wij >> b) & 1);
    }
    ot.extend(ch, choices);

    // Per product: sum_{b<l} (l-b) = l(l+1)/2 bits on the wire.
    const std::vector<u8> blob =
        ch.recv_msg(bytes_for_bits(count * l * (l + 1) / 2));
    BitReader rd(blob);
    for (std::size_t c = 0; c < count; ++c) {
      const std::size_t p = p0 + c;
      u64 acc = 0;
      for (std::size_t b = 0; b < l; ++b) {
        const std::size_t width = l - b;
        const u64 adj = rd.read(width);
        const u64 pad = ot.pad(c * l + b).low_bits(width);
        const u64 out_b =
            (choices[c * l + b] ? adj + pad : pad) & mask_l(width);
        acc = ring.add(acc, ring.reduce(out_b << b));
      }
      u.at(it.i(p), it.k(p)) = ring.add(u.at(it.i(p), it.k(p)), acc);
    }
    p0 += count;
  }
  return u;
}

MatU64 secureml_triplet_client(Channel& ch, IknpSender& ot, const MatU64& r,
                               std::size_t m, const Ring& ring, Prg& prg,
                               std::size_t chunk_products) {
  (void)prg;  // shares are derived from the COT pads; kept for API symmetry
  const std::size_t l = ring.bits();
  const std::size_t n = r.rows(), o = r.cols();
  const std::size_t total = m * n * o;
  const ProductIter it{n, o};

  MatU64 v(m, o);
  std::size_t p0 = 0;
  while (p0 < total) {
    const std::size_t count = std::min(chunk_products, total - p0);
    ot.extend(ch, count * l);

    BitWriter wr;
    for (std::size_t c = 0; c < count; ++c) {
      const std::size_t p = p0 + c;
      const u64 rjk = r.at(it.j(p), it.k(p));
      u64 share = 0;
      for (std::size_t b = 0; b < l; ++b) {
        const std::size_t width = l - b;
        const u64 wmask = mask_l(width);
        const u64 h0 = ot.pad(c * l + b, false).low_bits(width);
        const u64 h1 = ot.pad(c * l + b, true).low_bits(width);
        wr.write((rjk + h0 - h1) & wmask, width);
        share = ring.add(share, ring.reduce((h0 & wmask) << b));
      }
      v.at(it.i(p), it.k(p)) = ring.sub(v.at(it.i(p), it.k(p)), share);
    }
    ch.send_msg(wr.take());
    p0 += count;
  }
  return v;
}

}  // namespace abnn2::baselines
