// IKNP 1-out-of-2 OT extension (Ishai-Kilian-Nissim-Petrank, CRYPTO'03) with
// the standard optimizations: seed OTs from Chou-Orlandi base OT, AES-CTR
// column expansion, packed bit-matrix transpose, random-oracle message
// masking. Also provides the correlated-OT (C-OT) variant over Z_{2^l} used
// by the SecureML baseline (Gilboa multiplication) and random OT used by the
// GC input-label transfer.
//
// A setup() runs kKappa base OTs once; extend() can then be called any
// number of times, each producing `m` OT instances with globally unique
// random-oracle indices.
//
// Wire format (protocol v2): each extend() exchanges exactly ONE message —
// the receiver sends all kKappa correction rows coalesced into a single
// kKappa * ceil(m/8)-byte buffer (column j at offset j * row_bytes) — rather
// than one tiny message per column. Column expansion and the per-instance
// random-oracle pad loops run on the runtime thread pool; results are
// independent of the pool size (disjoint writes per column/instance).
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "common/bitmatrix.h"
#include "common/bitvec.h"
#include "crypto/prg.h"
#include "crypto/ro.h"
#include "net/channel.h"
#include "ot/base_ot.h"

namespace abnn2 {

class IknpSender {
 public:
  explicit IknpSender(u64 tag = 0x1C19'0001) : tag_(tag) {}

  /// Runs kKappa base OTs (as base-OT receiver with secret choice string s).
  void setup(Channel& ch, Prg& prg);

  /// Receives the receiver's correction matrix for `m` OT instances and
  /// prepares the pad rows q_i. Must follow setup().
  void extend(Channel& ch, std::size_t m);

  std::size_t count() const { return q_.rows(); }

  /// Random-oracle pad for instance i and message index `which`:
  /// H(i, q_i ^ which*s).
  RoDigest pad(std::size_t i, bool which) const;

  /// Batched pads for instances [begin, end): d0[i-begin] = pad(i, false),
  /// d1[i-begin] = pad(i, true). Bit-identical to the scalar pad() — the
  /// batch runs the random oracle through the SIMD kernel layer.
  void pads(std::size_t begin, std::size_t end, RoDigest* d0,
            RoDigest* d1) const;

  /// Chosen-message OT: transfers msgs[i][0], msgs[i][1] (one Block each).
  void send_blocks(Channel& ch, std::span<const std::array<Block, 2>> msgs);

  /// Correlated OT over Z_{2^l}: receiver with choice b_i learns
  /// b_i * delta_i + x_i, sender learns x_i (returned). l <= 64.
  std::vector<u64> send_correlated(Channel& ch, std::span<const u64> deltas,
                                   std::size_t l);

 private:
  u64 tag_;
  BitVec s_;                 // secret choice string (kKappa bits)
  std::vector<Prg> seed_prg_;  // one PRG per base OT seed
  BitMatrix q_;              // m x kKappa pad rows of the current extend
  u64 index_base_ = 0;       // RO index of instance 0 of current extend
  bool setup_done_ = false;
};

class IknpReceiver {
 public:
  explicit IknpReceiver(u64 tag = 0x1C19'0001) : tag_(tag) {}

  /// Runs kKappa base OTs (as base-OT sender).
  void setup(Channel& ch, Prg& prg);

  /// Derives and sends the correction matrix for `choices`.
  void extend(Channel& ch, const BitVec& choices);

  std::size_t count() const { return t_.rows(); }

  /// H(i, t_i): the pad of the chosen message of instance i.
  RoDigest pad(std::size_t i) const;

  /// Batched pads for instances [begin, end); bit-identical to pad().
  void pads(std::size_t begin, std::size_t end, RoDigest* out) const;

  std::vector<Block> recv_blocks(Channel& ch);

  std::vector<u64> recv_correlated(Channel& ch, std::size_t l);

 private:
  u64 tag_;
  std::vector<std::array<Prg, 2>> seed_prg_;
  BitMatrix t_;              // m x kKappa rows t_i
  BitVec choices_;
  u64 index_base_ = 0;
  bool setup_done_ = false;
};

}  // namespace abnn2
