#include "ot/wh_code.h"

namespace abnn2 {

const std::array<CodeWord, kKkMaxN>& wh_table() {
  static const std::array<CodeWord, kKkMaxN> kTable = [] {
    std::array<CodeWord, kKkMaxN> t;
    for (u32 v = 0; v < kKkMaxN; ++v) t[v] = wh_codeword(v);
    return t;
  }();
  return kTable;
}

}  // namespace abnn2
