#include "ot/iknp.h"

#include <algorithm>

#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "simd/kernels.h"

namespace abnn2 {
namespace {

std::span<const u8> row_span(const BitMatrix& m, std::size_t i) {
  return {m.row(i), m.row_bytes()};
}

// Instances materialised per stack-scratch refill in the batched pad loops.
constexpr std::size_t kPadChunk = 64;

}  // namespace

void IknpSender::setup(Channel& ch, Prg& prg) {
  ABNN2_CHECK(!setup_done_, "setup called twice");
  obs::Scope span("iknp/base-ot", &ch);
  s_.resize(kKappa);
  for (std::size_t j = 0; j < kKappa; ++j) s_.set(j, prg.next_bit());
  const std::vector<Block> seeds = base_ot_recv(ch, s_, prg);
  seed_prg_.reserve(kKappa);
  for (std::size_t j = 0; j < kKappa; ++j) seed_prg_.emplace_back(seeds[j], tag_);
  setup_done_ = true;
}

void IknpSender::extend(Channel& ch, std::size_t m) {
  ABNN2_CHECK(setup_done_, "extend before setup");
  ABNN2_CHECK_ARG(m > 0, "empty extension");
  obs::Scope span("iknp/extend", &ch);
  obs::add_count("iknp.extend.instances", m);
  index_base_ += count();
  const std::size_t row_bytes = bytes_for_bits(m);
  // Column-major: row j of `cols` is column j of the logical m x kKappa
  // matrix Q. All kKappa correction rows arrive coalesced in a single wire
  // message (protocol v2) instead of one tiny message per column; the column
  // expansion itself is embarrassingly parallel (one PRG per column).
  BitMatrix cols(kKappa, m);
  std::vector<u8> u(kKappa * row_bytes);
  ch.recv(u.data(), u.size());
  runtime::parallel_for(kKappa, [&](std::size_t j) {
    seed_prg_[j].bytes(cols.row(j), row_bytes);
    if (s_[j]) cols.xor_row(j, u.data() + j * row_bytes);
  });
  q_ = cols.transpose();
}

RoDigest IknpSender::pad(std::size_t i, bool which) const {
  ABNN2_CHECK_ARG(i < q_.rows(), "instance out of range");
  if (!which) return ro_hash(tag_, index_base_ + i, row_span(q_, i));
  u8 tmp[kKappa / 8];
  std::memcpy(tmp, q_.row(i), sizeof(tmp));
  const u64* sw = s_.words();
  u64 w[2];
  std::memcpy(w, tmp, 16);
  w[0] ^= sw[0];
  w[1] ^= sw[1];
  std::memcpy(tmp, w, 16);
  return ro_hash(tag_, index_base_ + i, std::span<const u8>(tmp, sizeof(tmp)));
}

void IknpSender::pads(std::size_t begin, std::size_t end, RoDigest* d0,
                      RoDigest* d1) const {
  ABNN2_CHECK_ARG(begin <= end && end <= q_.rows(), "instance range invalid");
  const std::size_t n = end - begin;
  if (n == 0) return;
  const std::size_t rb = q_.row_bytes();
  // which = 0: the q_i rows are contiguous in q_, hash them in place.
  ro_hash_batch(tag_, index_base_ + begin, q_.row(begin), rb, n, d0);
  // which = 1: materialise q_i ^ s chunkwise on the stack.
  u8 sb[kKappa / 8];
  std::memcpy(sb, s_.words(), sizeof(sb));
  const auto& kt = simd::active_kernels();
  u8 rows[kPadChunk * kKappa / 8];
  for (std::size_t i = 0; i < n; i += kPadChunk) {
    const std::size_t c = std::min(kPadChunk, n - i);
    std::memcpy(rows, q_.row(begin + i), c * rb);
    for (std::size_t k = 0; k < c; ++k) kt.xor_bytes(rows + k * rb, sb, rb);
    ro_hash_batch(tag_, index_base_ + begin + i, rows, rb, c, d1 + i);
  }
}

void IknpSender::send_blocks(Channel& ch,
                             std::span<const std::array<Block, 2>> msgs) {
  ABNN2_CHECK_ARG(msgs.size() == count(), "message count mismatch");
  std::vector<Block> wire(2 * msgs.size());
  runtime::parallel_slices(
      msgs.size(), runtime::num_threads(),
      [&](std::size_t, std::size_t b, std::size_t e) {
        std::vector<RoDigest> d0(e - b), d1(e - b);
        pads(b, e, d0.data(), d1.data());
        for (std::size_t i = b; i < e; ++i) {
          wire[2 * i] = msgs[i][0] ^ d0[i - b].block0();
          wire[2 * i + 1] = msgs[i][1] ^ d1[i - b].block0();
        }
      });
  ch.send_blocks(wire.data(), wire.size());
}

std::vector<u64> IknpSender::send_correlated(Channel& ch,
                                             std::span<const u64> deltas,
                                             std::size_t l) {
  ABNN2_CHECK_ARG(deltas.size() == count(), "delta count mismatch");
  ABNN2_CHECK_ARG(l >= 1 && l <= 64, "ring width out of range");
  const u64 mask = mask_l(l);
  std::vector<u64> share(deltas.size());
  std::vector<u64> adj(deltas.size());
  runtime::parallel_slices(
      deltas.size(), runtime::num_threads(),
      [&](std::size_t, std::size_t b, std::size_t e) {
        std::vector<RoDigest> d0(e - b), d1(e - b);
        pads(b, e, d0.data(), d1.data());
        for (std::size_t i = b; i < e; ++i) {
          const u64 h0 = d0[i - b].low_bits(l);
          const u64 h1 = d1[i - b].low_bits(l);
          share[i] = h0;
          adj[i] = (deltas[i] + h0 - h1) & mask;
        }
      });
  ch.send_u64s(adj.data(), adj.size());
  return share;
}

void IknpReceiver::setup(Channel& ch, Prg& prg) {
  ABNN2_CHECK(!setup_done_, "setup called twice");
  obs::Scope span("iknp/base-ot", &ch);
  const auto seeds = base_ot_send(ch, kKappa, prg);
  seed_prg_.reserve(kKappa);
  for (std::size_t j = 0; j < kKappa; ++j)
    seed_prg_.push_back({Prg(seeds[j][0], tag_), Prg(seeds[j][1], tag_)});
  setup_done_ = true;
}

void IknpReceiver::extend(Channel& ch, const BitVec& choices) {
  ABNN2_CHECK(setup_done_, "extend before setup");
  ABNN2_CHECK_ARG(choices.size() > 0, "empty extension");
  obs::Scope span("iknp/extend", &ch);
  obs::add_count("iknp.extend.instances", choices.size());
  index_base_ += count();
  choices_ = choices;
  const std::size_t m = choices.size();
  const std::size_t row_bytes = bytes_for_bits(m);
  std::vector<u8> cbytes(row_bytes);
  choices.to_bytes(cbytes.data());

  // Correction rows for all kKappa columns are computed in parallel and sent
  // as one coalesced wire message (protocol v2).
  BitMatrix cols(kKappa, m);
  std::vector<u8> u(kKappa * row_bytes);
  const auto& kt = simd::active_kernels();
  runtime::parallel_for(kKappa, [&](std::size_t j) {
    u8* uj = u.data() + j * row_bytes;
    seed_prg_[j][0].bytes(cols.row(j), row_bytes);   // t0 column
    seed_prg_[j][1].bytes(uj, row_bytes);            // t1 column
    kt.xor3_bytes(uj, cols.row(j), cbytes.data(), row_bytes);
  });
  ch.send(u.data(), u.size());
  t_ = cols.transpose();
}

RoDigest IknpReceiver::pad(std::size_t i) const {
  ABNN2_CHECK_ARG(i < t_.rows(), "instance out of range");
  return ro_hash(tag_, index_base_ + i, row_span(t_, i));
}

void IknpReceiver::pads(std::size_t begin, std::size_t end,
                        RoDigest* out) const {
  ABNN2_CHECK_ARG(begin <= end && end <= t_.rows(), "instance range invalid");
  if (begin == end) return;
  ro_hash_batch(tag_, index_base_ + begin, t_.row(begin), t_.row_bytes(),
                end - begin, out);
}

std::vector<Block> IknpReceiver::recv_blocks(Channel& ch) {
  std::vector<Block> wire(2 * count());
  ch.recv_blocks(wire.data(), wire.size());
  std::vector<Block> out(count());
  runtime::parallel_slices(
      count(), runtime::num_threads(),
      [&](std::size_t, std::size_t b, std::size_t e) {
        std::vector<RoDigest> d(e - b);
        pads(b, e, d.data());
        for (std::size_t i = b; i < e; ++i)
          out[i] = wire[2 * i + (choices_[i] ? 1 : 0)] ^ d[i - b].block0();
      });
  return out;
}

std::vector<u64> IknpReceiver::recv_correlated(Channel& ch, std::size_t l) {
  ABNN2_CHECK_ARG(l >= 1 && l <= 64, "ring width out of range");
  const u64 mask = mask_l(l);
  std::vector<u64> adj(count());
  ch.recv_u64s(adj.data(), adj.size());
  std::vector<u64> out(count());
  runtime::parallel_slices(
      count(), runtime::num_threads(),
      [&](std::size_t, std::size_t b, std::size_t e) {
        std::vector<RoDigest> d(e - b);
        pads(b, e, d.data());
        for (std::size_t i = b; i < e; ++i) {
          const u64 hb = d[i - b].low_bits(l);
          out[i] = choices_[i] ? ((adj[i] + hb) & mask) : hb;
        }
      });
  return out;
}

}  // namespace abnn2
