// KK13 1-out-of-N OT extension (Kolesnikov-Kumaresan, CRYPTO'13), the
// building block of the ABNN2 matrix multiplication protocol (paper
// section 4.1, reference [6]).
//
// The sender holds N messages per instance, the receiver a choice
// w_i in [0, N). IKNP's repetition code is replaced by the Walsh-Hadamard
// code over 2*kappa = 256 columns, so a single extension instance
// transfers one of up to 256 messages for the cost of 256 bits of
// correction matrix.
//
// After extend(), the SENDER can compute the pad of every candidate value j:
//     pad(i, j) = H(i, q_i ^ (c(j) & s))
// and the RECEIVER can compute only the pad of its choice:
//     pad(i)    = H(i, t_i) = sender's pad(i, w_i).
//
// The higher-level triplet protocols (core/triplet_gen) build the actual
// masked messages from these pads: N x (o*l)-bit messages in the multi-batch
// scheme (paper 4.1.2), or N-1 messages with the pad-of-0-as-share C-OT trick
// in the one-batch scheme (paper 4.1.3).
//
// Wire format (protocol v2): each extend() sends the 256 correction rows as
// ONE coalesced message (column j at offset j * row_bytes) instead of one
// tiny message per column; column expansion and pad loops run on the runtime
// thread pool with schedule-independent results.
#pragma once

#include <span>
#include <vector>

#include "common/bitmatrix.h"
#include "crypto/prg.h"
#include "crypto/ro.h"
#include "net/channel.h"
#include "ot/base_ot.h"
#include "ot/wh_code.h"

namespace abnn2 {

class Kk13Sender {
 public:
  explicit Kk13Sender(u64 tag = 0x1C13'0001) : tag_(tag) {}

  /// Runs 2*kappa base OTs (as base-OT receiver with secret s).
  void setup(Channel& ch, Prg& prg);

  /// Receives the correction matrix for `m` instances.
  void extend(Channel& ch, std::size_t m);

  std::size_t count() const { return q_.rows(); }

  /// Pad digest for instance i and candidate value j < kKkMaxN.
  RoDigest pad(std::size_t i, u32 j) const;

  /// Batched pads of candidate j for instances [begin, end); bit-identical
  /// to the scalar pad(). The codeword mask c(j) & s is computed once for
  /// the whole range.
  void pads(std::size_t begin, std::size_t end, u32 j, RoDigest* out) const;

  /// Chosen-message 1-out-of-n OT: transfers one of `n` 128-bit messages per
  /// instance. `msgs` is row-major count() x n. (The ABNN2 triplet protocols
  /// build their own packed messages from pad(); this is the generic API.)
  void send_blocks(Channel& ch, std::span<const Block> msgs, u32 n);

 private:
  u64 tag_;
  CodeWord s_{};                 // secret 256-bit string
  std::vector<Prg> seed_prg_;
  BitMatrix q_;                  // m x 256
  u64 index_base_ = 0;
  bool setup_done_ = false;
};

class Kk13Receiver {
 public:
  explicit Kk13Receiver(u64 tag = 0x1C13'0001) : tag_(tag) {}

  void setup(Channel& ch, Prg& prg);

  /// Sends the correction matrix; choices[i] in [0, kKkMaxN).
  void extend(Channel& ch, std::span<const u32> choices);

  std::size_t count() const { return t_.rows(); }

  /// Pad digest of the chosen value of instance i.
  RoDigest pad(std::size_t i) const;

  /// Batched pads for instances [begin, end); bit-identical to pad().
  void pads(std::size_t begin, std::size_t end, RoDigest* out) const;

  /// Receives the chosen message of each instance (see Kk13Sender).
  std::vector<Block> recv_blocks(Channel& ch, u32 n);

  u32 choice(std::size_t i) const { return choices_.at(i); }

 private:
  u64 tag_;
  std::vector<std::array<Prg, 2>> seed_prg_;
  BitMatrix t_;                  // m x 256
  std::vector<u32> choices_;
  u64 index_base_ = 0;
  bool setup_done_ = false;
};

}  // namespace abnn2
