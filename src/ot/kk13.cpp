#include "ot/kk13.h"

#include <algorithm>

#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "simd/kernels.h"

namespace abnn2 {
namespace {

std::span<const u8> row_span(const BitMatrix& m, std::size_t i) {
  return {m.row(i), m.row_bytes()};
}

// Instances materialised per stack-scratch refill in the batched pad loops.
constexpr std::size_t kPadChunk = 64;

}  // namespace

void Kk13Sender::setup(Channel& ch, Prg& prg) {
  ABNN2_CHECK(!setup_done_, "setup called twice");
  obs::Scope span("kk13/base-ot", &ch);
  BitVec s_bits(kKkCodeBits);
  for (std::size_t j = 0; j < kKkCodeBits; ++j) s_bits.set(j, prg.next_bit());
  s_[0] = Block{s_bits.words()[1], s_bits.words()[0]};
  s_[1] = Block{s_bits.words()[3], s_bits.words()[2]};
  const std::vector<Block> seeds = base_ot_recv(ch, s_bits, prg);
  seed_prg_.reserve(kKkCodeBits);
  for (std::size_t j = 0; j < kKkCodeBits; ++j) seed_prg_.emplace_back(seeds[j], tag_);
  setup_done_ = true;
}

void Kk13Sender::extend(Channel& ch, std::size_t m) {
  ABNN2_CHECK(setup_done_, "extend before setup");
  ABNN2_CHECK_ARG(m > 0, "empty extension");
  obs::Scope span("kk13/extend", &ch);
  obs::add_count("kk13.extend.instances", m);
  index_base_ += count();
  const std::size_t row_bytes = bytes_for_bits(m);
  // All kKkCodeBits correction rows arrive coalesced in one wire message
  // (protocol v2); column expansion runs on the thread pool.
  BitMatrix cols(kKkCodeBits, m);
  std::vector<u8> u(kKkCodeBits * row_bytes);
  ch.recv(u.data(), u.size());
  runtime::parallel_for(kKkCodeBits, [&](std::size_t j) {
    seed_prg_[j].bytes(cols.row(j), row_bytes);
    const bool sj = (j < 128) ? s_[0].bit(j) : s_[1].bit(j - 128);
    if (sj) cols.xor_row(j, u.data() + j * row_bytes);
  });
  q_ = cols.transpose();
}

RoDigest Kk13Sender::pad(std::size_t i, u32 j) const {
  ABNN2_CHECK_ARG(i < q_.rows(), "instance out of range");
  const CodeWord masked = cw_and(wh_table()[j], s_);
  u8 tmp[kKkCodeBits / 8];
  std::memcpy(tmp, q_.row(i), sizeof(tmp));
  Block lo = Block::from_bytes(tmp) ^ masked[0];
  Block hi = Block::from_bytes(tmp + 16) ^ masked[1];
  lo.to_bytes(tmp);
  hi.to_bytes(tmp + 16);
  return ro_hash(tag_, index_base_ + i, std::span<const u8>(tmp, sizeof(tmp)));
}

void Kk13Sender::pads(std::size_t begin, std::size_t end, u32 j,
                      RoDigest* out) const {
  ABNN2_CHECK_ARG(begin <= end && end <= q_.rows(), "instance range invalid");
  ABNN2_CHECK_ARG(j < kKkMaxN, "candidate out of range");
  const std::size_t n = end - begin;
  if (n == 0) return;
  const std::size_t rb = q_.row_bytes();
  const CodeWord masked = cw_and(wh_table()[j], s_);
  u8 mb[kKkCodeBits / 8];
  masked[0].to_bytes(mb);
  masked[1].to_bytes(mb + 16);
  const auto& kt = simd::active_kernels();
  u8 rows[kPadChunk * kKkCodeBits / 8];
  for (std::size_t i = 0; i < n; i += kPadChunk) {
    const std::size_t c = std::min(kPadChunk, n - i);
    std::memcpy(rows, q_.row(begin + i), c * rb);
    for (std::size_t k = 0; k < c; ++k) kt.xor_bytes(rows + k * rb, mb, rb);
    ro_hash_batch(tag_, index_base_ + begin + i, rows, rb, c, out + i);
  }
}

void Kk13Sender::send_blocks(Channel& ch, std::span<const Block> msgs, u32 n) {
  ABNN2_CHECK_ARG(n >= 2 && n <= kKkMaxN, "n out of range");
  ABNN2_CHECK_ARG(msgs.size() == count() * n, "message count mismatch");
  std::vector<Block> wire(msgs.size());
  runtime::parallel_slices(
      count(), runtime::num_threads(),
      [&](std::size_t, std::size_t b, std::size_t e) {
        std::vector<RoDigest> d(e - b);
        for (u32 j = 0; j < n; ++j) {
          pads(b, e, j, d.data());
          for (std::size_t i = b; i < e; ++i)
            wire[i * n + j] = msgs[i * n + j] ^ d[i - b].block0();
        }
      });
  ch.send_blocks(wire.data(), wire.size());
}

void Kk13Receiver::setup(Channel& ch, Prg& prg) {
  ABNN2_CHECK(!setup_done_, "setup called twice");
  obs::Scope span("kk13/base-ot", &ch);
  const auto seeds = base_ot_send(ch, kKkCodeBits, prg);
  seed_prg_.reserve(kKkCodeBits);
  for (std::size_t j = 0; j < kKkCodeBits; ++j)
    seed_prg_.push_back({Prg(seeds[j][0], tag_), Prg(seeds[j][1], tag_)});
  setup_done_ = true;
}

void Kk13Receiver::extend(Channel& ch, std::span<const u32> choices) {
  ABNN2_CHECK(setup_done_, "extend before setup");
  ABNN2_CHECK_ARG(!choices.empty(), "empty extension");
  for (u32 w : choices) ABNN2_CHECK_ARG(w < kKkMaxN, "choice exceeds code size");
  obs::Scope span("kk13/extend", &ch);
  obs::add_count("kk13.extend.instances", choices.size());
  index_base_ += count();
  choices_.assign(choices.begin(), choices.end());
  const std::size_t m = choices.size();
  const std::size_t row_bytes = bytes_for_bits(m);

  // Codeword matrix D (m x 256): row i = c(w_i); transposed to column-major
  // so each correction row can be XORed bytewise.
  BitMatrix d_rows(m, kKkCodeBits);
  const auto& table = wh_table();
  for (std::size_t i = 0; i < m; ++i) {
    const CodeWord& c = table[choices[i]];
    c[0].to_bytes(d_rows.row(i));
    c[1].to_bytes(d_rows.row(i) + 16);
  }
  const BitMatrix d_cols = d_rows.transpose();

  // Correction rows for all kKkCodeBits columns are computed in parallel and
  // sent as one coalesced wire message (protocol v2).
  BitMatrix cols(kKkCodeBits, m);
  std::vector<u8> u(kKkCodeBits * row_bytes);
  const auto& kt = simd::active_kernels();
  runtime::parallel_for(kKkCodeBits, [&](std::size_t j) {
    u8* uj = u.data() + j * row_bytes;
    seed_prg_[j][0].bytes(cols.row(j), row_bytes);  // t0 column
    seed_prg_[j][1].bytes(uj, row_bytes);           // t1 column
    kt.xor3_bytes(uj, cols.row(j), d_cols.row(j), row_bytes);
  });
  ch.send(u.data(), u.size());
  t_ = cols.transpose();
}

RoDigest Kk13Receiver::pad(std::size_t i) const {
  ABNN2_CHECK_ARG(i < t_.rows(), "instance out of range");
  return ro_hash(tag_, index_base_ + i, row_span(t_, i));
}

void Kk13Receiver::pads(std::size_t begin, std::size_t end,
                        RoDigest* out) const {
  ABNN2_CHECK_ARG(begin <= end && end <= t_.rows(), "instance range invalid");
  if (begin == end) return;
  ro_hash_batch(tag_, index_base_ + begin, t_.row(begin), t_.row_bytes(),
                end - begin, out);
}

std::vector<Block> Kk13Receiver::recv_blocks(Channel& ch, u32 n) {
  ABNN2_CHECK_ARG(n >= 2 && n <= kKkMaxN, "n out of range");
  std::vector<Block> wire(count() * n);
  ch.recv_blocks(wire.data(), wire.size());
  std::vector<Block> out(count());
  runtime::parallel_slices(
      count(), runtime::num_threads(),
      [&](std::size_t, std::size_t b, std::size_t e) {
        std::vector<RoDigest> d(e - b);
        pads(b, e, d.data());
        for (std::size_t i = b; i < e; ++i) {
          ABNN2_CHECK(choices_[i] < n, "stored choice exceeds n");
          out[i] = wire[i * n + choices_[i]] ^ d[i - b].block0();
        }
      });
  return out;
}

}  // namespace abnn2
