// Chou-Orlandi "Simplest OT" (CRYPTO'15) over the Ed25519 group.
//
// Produces the seed OTs consumed by the IKNP and KK13 extensions. Sender
// obtains n random block pairs (x_i^0, x_i^1); receiver with choice bits c_i
// obtains x_i^{c_i}. Security in the random-oracle model under CDH.
//
// Protocol (additive notation, base point B):
//   S: y <-R Z, sends A = yB, keeps T = yA
//   R: for each i, x_i <-R Z, sends R_i = c_i*A + x_i*B
//   S: x_i^j = H(i, y*R_i - j*T)   for j in {0,1}
//   R: x_i^{c_i} = H(i, x_i * A)
#pragma once

#include <array>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"
#include "crypto/prg.h"
#include "net/channel.h"

namespace abnn2 {

/// Sender side: returns n pairs of random 128-bit messages.
std::vector<std::array<Block, 2>> base_ot_send(Channel& ch, std::size_t n,
                                               Prg& prg);

/// Receiver side: returns the chosen message per OT.
std::vector<Block> base_ot_recv(Channel& ch, const BitVec& choices, Prg& prg);

}  // namespace abnn2
