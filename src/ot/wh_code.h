// Walsh-Hadamard code used by the KK13 1-out-of-N OT extension.
//
// Codeword of value v (0 <= v < 256) is the v-th row of the 256x256 Hadamard
// matrix in {0,1} form: bit j = <v, j> (inner product of the bit
// decompositions, i.e. parity of v & j). Any two distinct codewords differ in
// exactly 128 of the 256 positions, giving kappa = 128 bits of security for
// N up to 256 (KK13, section 4).
#pragma once

#include <array>

#include "common/block.h"
#include "common/defines.h"

namespace abnn2 {

/// 256-bit codeword as two 128-bit blocks (bits 0..127, 128..255).
using CodeWord = std::array<Block, 2>;

inline constexpr std::size_t kKkCodeBits = 256;
inline constexpr std::size_t kKkMaxN = 256;

/// Codeword of value v.
inline CodeWord wh_codeword(u32 v) {
  ABNN2_CHECK_ARG(v < kKkMaxN, "value exceeds code size");
  CodeWord c{kZeroBlock, kZeroBlock};
  for (u32 j = 0; j < kKkCodeBits; ++j) {
    const bool bit = __builtin_popcount(v & j) & 1;
    if (bit) c[j / 128].set_bit(j % 128, true);
  }
  return c;
}

/// All 256 codewords, built once.
const std::array<CodeWord, kKkMaxN>& wh_table();

inline CodeWord cw_xor(const CodeWord& a, const CodeWord& b) {
  return {a[0] ^ b[0], a[1] ^ b[1]};
}
inline CodeWord cw_and(const CodeWord& a, const CodeWord& b) {
  return {a[0] & b[0], a[1] & b[1]};
}

}  // namespace abnn2
