#include "ot/base_ot.h"

#include "crypto/ro.h"
#include "ec/ed25519.h"

namespace abnn2 {
namespace {

constexpr u64 kBaseOtTag = 0xB05E'0000;

ec::Scalar random_scalar(Prg& prg) {
  ec::Scalar s;
  prg.bytes(s.data(), 32);
  s[31] &= 0x1f;  // keep scalars < 2^253 (tidy; any value would work)
  return s;
}

Block key_from_point(std::size_t i, const ec::Point& p) {
  const auto enc = p.encode();
  return ro_hash(kBaseOtTag, i, enc).block0();
}

}  // namespace

std::vector<std::array<Block, 2>> base_ot_send(Channel& ch, std::size_t n,
                                               Prg& prg) {
  ABNN2_CHECK_ARG(n > 0, "need at least one OT");
  const ec::Scalar y = random_scalar(prg);
  const ec::Point a = ec::Point::base().mul(y);
  const auto a_enc = a.encode();
  ch.send(a_enc.data(), a_enc.size());

  const ec::Point t = a.mul(y);  // y^2 * B
  std::vector<std::array<Block, 2>> out(n);
  std::vector<u8> rs(32 * n);
  ch.recv(rs.data(), rs.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::array<u8, 32> enc;
    std::memcpy(enc.data(), rs.data() + 32 * i, 32);
    auto r = ec::Point::decode(enc);
    ABNN2_CHECK(r.has_value(), "base OT: receiver sent invalid point");
    const ec::Point yr = r->mul(y);
    out[i][0] = key_from_point(i, yr);
    out[i][1] = key_from_point(i, yr.sub(t));
  }
  return out;
}

std::vector<Block> base_ot_recv(Channel& ch, const BitVec& choices, Prg& prg) {
  const std::size_t n = choices.size();
  ABNN2_CHECK_ARG(n > 0, "need at least one OT");
  std::array<u8, 32> a_enc;
  ch.recv(a_enc.data(), a_enc.size());
  auto a = ec::Point::decode(a_enc);
  ABNN2_CHECK(a.has_value(), "base OT: sender sent invalid point");

  std::vector<ec::Scalar> xs(n);
  std::vector<u8> rs(32 * n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = random_scalar(prg);
    ec::Point r = ec::Point::base().mul(xs[i]);
    if (choices[i]) r = r.add(*a);
    const auto enc = r.encode();
    std::memcpy(rs.data() + 32 * i, enc.data(), 32);
  }
  ch.send(rs.data(), rs.size());

  std::vector<Block> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = key_from_point(i, a->mul(xs[i]));
  return out;
}

}  // namespace abnn2
