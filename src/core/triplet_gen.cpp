#include "core/triplet_gen.h"

#include "common/packing.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace abnn2::core {
namespace {

using nn::FragScheme;
using nn::MatU64;
using ss::Ring;

// Flat instance index t <-> (i, j, f): f fastest, then j, then i.
struct InstanceIter {
  std::size_t n, gamma;
  std::size_t i(std::size_t t) const { return t / (n * gamma); }
  std::size_t j(std::size_t t) const { return (t / gamma) % n; }
  std::size_t f(std::size_t t) const { return t % gamma; }
};

// Both parties announce their view of the protocol parameters up front so a
// configuration mismatch surfaces as a clean ProtocolError instead of a
// garbled transcript.
void sync_params(Channel& ch, std::size_t m, std::size_t n, std::size_t o,
                 std::size_t gamma, std::size_t l, BatchMode mode) {
  Writer w;
  for (u64 v : {static_cast<u64>(m), static_cast<u64>(n), static_cast<u64>(o),
                static_cast<u64>(gamma), static_cast<u64>(l),
                static_cast<u64>(mode)})
    w.u64_(v);
  ch.send(w.data().data(), w.size());
  std::vector<u8> peer(w.size());
  ch.recv(peer.data(), peer.size());
  ABNN2_CHECK(peer == w.data(),
              "triplet generation parameter mismatch between parties");
}

// Prefix offsets of each instance's fields inside the packed blob of one
// chunk: instance k owns fields [off[k], off[k+1]). Fixing the layout up
// front lets the per-instance work run on the thread pool with disjoint
// writes.
std::vector<std::size_t> blob_offsets(const FragScheme& scheme,
                                      const InstanceIter& it, std::size_t t0,
                                      std::size_t count, std::size_t o,
                                      BatchMode mode) {
  std::vector<std::size_t> off(count + 1, 0);
  for (std::size_t k = 0; k < count; ++k) {
    const u32 nf = scheme.table_size(it.f(t0 + k));
    off[k + 1] = off[k] + (mode == BatchMode::kOneBatchCot
                               ? nf - 1
                               : static_cast<std::size_t>(nf) * o);
  }
  return off;
}

}  // namespace

MatU64 triplet_gen_server(Channel& ch, Kk13Receiver& ot, const MatU64& codes,
                          const FragScheme& scheme, std::size_t o,
                          const TripletConfig& cfg) {
  ABNN2_CHECK_ARG(o >= 1, "batch size must be positive");
  const BatchMode mode = resolve_mode(cfg.mode, o);
  ABNN2_CHECK_ARG(mode == BatchMode::kMultiBatch || o == 1,
                  "one-batch mode requires o == 1");
  ABNN2_CHECK_ARG(scheme.max_n() <= kKkMaxN, "fragment table exceeds OT code");

  const Ring& ring = cfg.ring;
  const std::size_t l = ring.bits();
  const std::size_t m = codes.rows(), n = codes.cols();
  const std::size_t gamma = scheme.gamma();
  const std::size_t total = m * n * gamma;
  const InstanceIter it{n, gamma};
  obs::Scope span("triplet-gen/server", &ch);
  obs::add_count("triplet.instances", total);
  sync_params(ch, m, n, o, gamma, l, mode);

  MatU64 u(m, o);
  // Per-slice partial accumulators, reduced once after all chunks: ring
  // addition is commutative and associative, so the result is independent of
  // the slice count and of which thread ran which slice.
  const std::size_t n_slices = runtime::num_threads();
  std::vector<MatU64> partial(n_slices, MatU64(m, o));
  std::size_t t0 = 0;
  while (t0 < total) {
    const std::size_t count = std::min(cfg.chunk_instances, total - t0);

    // OT choices = fragment indices of the weights in this chunk.
    std::vector<u32> choices(count);
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t t = t0 + k;
      choices[k] = scheme.choice(codes.at(it.i(t), it.j(t)), it.f(t));
    }
    ot.extend(ch, choices);

    // The chunk layout fixes the blob size exactly, so bound recv_msg by it:
    // a corrupted/desynchronized length prefix fails fast instead of
    // allocating.
    const std::vector<std::size_t> off =
        blob_offsets(scheme, it, t0, count, o, mode);
    const std::size_t fields = off[count];
    // Receive the masked-message blob and pick out the chosen messages.
    const std::vector<u8> blob = ch.recv_msg(bytes_for_bits(fields * l));
    const std::vector<u64> vals = unpack_bits(blob, l, fields);
    if (mode == BatchMode::kOneBatchCot) {
      runtime::parallel_slices(
          count, n_slices,
          [&](std::size_t slice, std::size_t kb, std::size_t ke) {
            MatU64& up = partial[slice];
            for (std::size_t k = kb; k < ke; ++k) {
              const std::size_t t = t0 + k;
              const u32 w = choices[k];
              u64 contrib;
              if (w == 0) {
                contrib = ring.neg(ot.pad(k).low_bits(l));
              } else {
                const u64 masked = vals[off[k] + w - 1];
                contrib = ring.reduce(masked ^ ot.pad(k).low_bits(l));
              }
              up.at(it.i(t), 0) = ring.add(up.at(it.i(t), 0), contrib);
            }
          });
    } else {
      runtime::parallel_slices(
          count, n_slices,
          [&](std::size_t slice, std::size_t kb, std::size_t ke) {
            MatU64& up = partial[slice];
            std::vector<u64> pad(o);
            for (std::size_t k = kb; k < ke; ++k) {
              const std::size_t t = t0 + k;
              const u32 w = choices[k];
              ro_expand_u64(ot.pad(k), l, pad.data(), o);
              const std::size_t base =
                  off[k] + static_cast<std::size_t>(w) * o;
              u64* urow = up.row(it.i(t));
              for (std::size_t b = 0; b < o; ++b)
                urow[b] =
                    ring.add(urow[b], ring.reduce(vals[base + b] ^ pad[b]));
            }
          });
    }
    t0 += count;
  }
  for (const MatU64& p : partial)
    for (std::size_t x = 0; x < u.data().size(); ++x)
      u.data()[x] = ring.add(u.data()[x], p.data()[x]);
  return u;
}

MatU64 triplet_gen_client(Channel& ch, Kk13Sender& ot, const MatU64& r,
                          const FragScheme& scheme, std::size_t m,
                          const TripletConfig& cfg, Prg& prg) {
  const std::size_t o = r.cols();
  const BatchMode mode = resolve_mode(cfg.mode, o);
  ABNN2_CHECK_ARG(mode == BatchMode::kMultiBatch || o == 1,
                  "one-batch mode requires o == 1");
  ABNN2_CHECK_ARG(scheme.max_n() <= kKkMaxN, "fragment table exceeds OT code");

  const Ring& ring = cfg.ring;
  const std::size_t l = ring.bits();
  const std::size_t n = r.rows();
  const std::size_t gamma = scheme.gamma();
  const std::size_t total = m * n * gamma;
  const InstanceIter it{n, gamma};
  obs::Scope span("triplet-gen/client", &ch);
  sync_params(ch, m, n, o, gamma, l, mode);

  MatU64 v(m, o);
  const std::size_t n_slices = runtime::num_threads();
  std::size_t t0 = 0;
  while (t0 < total) {
    const std::size_t count = std::min(cfg.chunk_instances, total - t0);
    ot.extend(ch, count);

    const std::vector<std::size_t> off =
        blob_offsets(scheme, it, t0, count, o, mode);
    std::vector<u64> fields(off[count]);
    if (mode == BatchMode::kOneBatchCot) {
      // Each instance writes its own blob segment; the share that feeds the
      // v accumulator is stashed per instance and reduced serially after.
      std::vector<u64> share(count);
      runtime::parallel_slices(
          count, n_slices,
          [&](std::size_t, std::size_t kb, std::size_t ke) {
            for (std::size_t k = kb; k < ke; ++k) {
              const std::size_t t = t0 + k;
              const std::size_t f = it.f(t);
              const u32 nf = scheme.table_size(f);
              const u64 rj = r.at(it.j(t), 0);
              const u64 pad0 = ot.pad(k, 0).low_bits(l);
              const u64 v0 = scheme.value(f, 0, ring);
              // Share s = value_0 * r + pad_0; server with choice 0 gets
              // -pad_0.
              const u64 s = ring.add(ring.mul(v0, rj), pad0);
              share[k] = s;
              for (u32 cand = 1; cand < nf; ++cand) {
                const u64 msg =
                    ring.sub(ring.mul(scheme.value(f, cand, ring), rj), s);
                fields[off[k] + cand - 1] =
                    msg ^ ot.pad(k, cand).low_bits(l);
              }
            }
          });
      for (std::size_t k = 0; k < count; ++k) {
        u64& slot = v.at(it.i(t0 + k), 0);
        slot = ring.add(slot, share[k]);
      }
    } else {
      // Randomness is drawn serially in the original instance order, so the
      // PRG stream — and hence the transcript — is identical for every
      // thread count.
      std::vector<u64> svals(count * o);
      for (u64& sv : svals) sv = ring.random(prg);
      runtime::parallel_slices(
          count, n_slices,
          [&](std::size_t, std::size_t kb, std::size_t ke) {
            std::vector<u64> pad(o);
            for (std::size_t k = kb; k < ke; ++k) {
              const std::size_t t = t0 + k;
              const std::size_t f = it.f(t);
              const u32 nf = scheme.table_size(f);
              const u64* rrow = r.row(it.j(t));
              const u64* s = svals.data() + k * o;
              for (u32 cand = 0; cand < nf; ++cand) {
                const u64 val = scheme.value(f, cand, ring);
                ro_expand_u64(ot.pad(k, cand), l, pad.data(), o);
                u64* dst = fields.data() + off[k] +
                           static_cast<std::size_t>(cand) * o;
                for (std::size_t b = 0; b < o; ++b)
                  dst[b] = ring.sub(ring.mul(val, rrow[b]), s[b]) ^ pad[b];
              }
            }
          });
      for (std::size_t k = 0; k < count; ++k) {
        u64* vrow = v.row(it.i(t0 + k));
        const u64* s = svals.data() + k * o;
        for (std::size_t b = 0; b < o; ++b) vrow[b] = ring.add(vrow[b], s[b]);
      }
    }
    const std::vector<u8> blob = pack_bits(fields, l);
    ch.send_msg(blob);
    t0 += count;
  }
  return v;
}

u64 dot_triplet_server(Channel& ch, Kk13Receiver& ot,
                       const std::vector<u64>& w_codes,
                       const FragScheme& scheme, const TripletConfig& cfg) {
  MatU64 codes(1, w_codes.size());
  codes.data() = w_codes;
  return triplet_gen_server(ch, ot, codes, scheme, 1, cfg).at(0, 0);
}

u64 dot_triplet_client(Channel& ch, Kk13Sender& ot, const std::vector<u64>& r,
                       const FragScheme& scheme, const TripletConfig& cfg,
                       Prg& prg) {
  MatU64 rm(r.size(), 1);
  rm.data() = r;
  return triplet_gen_client(ch, ot, rm, scheme, 1, cfg, prg).at(0, 0);
}

}  // namespace abnn2::core
