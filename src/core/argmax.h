// Secure argmax (extension): the client learns ONLY the predicted class
// instead of the full logit vector.
//
// In the paper's flow (Fig 2) the server sends its logit share to the client,
// revealing all class scores. This module replaces that final step with one
// more garbled circuit in the style of Algorithm 2: inputs are the logit
// shares (server garbles, client evaluates — the reverse of the ReLU roles,
// since here the CLIENT gets the output), the circuit reconstructs each
// logit, runs a signed-max tournament, and reveals only the winning index.
#pragma once

#include "gc/protocol.h"
#include "nn/tensor.h"
#include "ss/additive.h"

namespace abnn2::core {

/// Tournament circuit over n_classes signed l-bit values.
/// Garbler inputs: y0 words, then the public index constants;
/// evaluator inputs: y1 words; output: ceil(log2(n_classes)) index bits.
gc::Circuit argmax_circuit(std::size_t l, std::size_t n_classes);

/// Server side: holds the logit shares y0 (one batch column at a time).
void argmax_server(Channel& ch, gc::GcGarbler& gc, const ss::Ring& ring,
                   std::span<const u64> y0, Prg& prg);

/// Client side: holds y1; returns the argmax index.
std::size_t argmax_client(Channel& ch, gc::GcEvaluator& gc,
                          const ss::Ring& ring, std::span<const u64> y1,
                          Prg& prg);

/// Batched variants: one circuit instance per batch column of the logit
/// share matrices (n_classes x batch).
void argmax_server_batch(Channel& ch, gc::GcGarbler& gc, const ss::Ring& ring,
                         const nn::MatU64& y0, Prg& prg);
std::vector<std::size_t> argmax_client_batch(Channel& ch, gc::GcEvaluator& gc,
                                             const ss::Ring& ring,
                                             const nn::MatU64& y1, Prg& prg);

}  // namespace abnn2::core
