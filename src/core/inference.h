// End-to-end secure two-party QNN prediction (paper section 3, Fig 2).
//
// The server owns the quantized model, the client owns the input batch.
// Executing one prediction batch is split, as in the paper, into:
//
//  offline phase (data independent): for every layer i the client samples a
//  random matrix R_i — its future share of that layer's input — and the two
//  parties run the 1-out-of-N-OT triplet generation of section 4.1, leaving
//  the server with U_i and the client with V_i s.t. U_i + V_i = W_i * R_i.
//
//  online phase: the client sends <x>_0 = x - R_0; each linear layer is then
//  one local matrix product on the server (W_i * <z>_0 + U_i) plus the
//  client's stored V_i; each non-linear layer runs the GC ReLU protocol of
//  section 4.2. Finally the server reveals its share of the logits.
//
// Optional extension (off by default, the paper does not rescale): local
// probabilistic truncation of the activation shares by `trunc_bits`
// (SecureML-style), so multi-layer fixed-point scales stay bounded.
#pragma once

#include <optional>

#include "baselines/minionn.h"
#include "baselines/quotient.h"
#include "baselines/secureml.h"
#include "core/argmax.h"
#include "core/maxpool.h"
#include "core/nonlinear.h"
#include "core/triplet_gen.h"
#include "nn/model.h"

namespace abnn2::core {

/// Which offline triplet generator drives the linear layers. The online
/// phase (share algebra + GC ReLU) is identical for all backends, exactly
/// mirroring how the paper compares against MiniONN/QUOTIENT.
enum class Backend { kAbnn2, kSecureML, kMiniONN, kQuotient };

/// What the client learns at the end of the online phase (extension beyond
/// the paper, which always reveals the logits): kArgmax replaces the final
/// share reveal with one more garbled circuit so only the class index leaks.
enum class Reveal { kLogits, kArgmax };

struct InferenceConfig {
  ss::Ring ring;
  ReluMode relu = ReluMode::kOptimized;
  BatchMode batch_mode = BatchMode::kAuto;
  Backend backend = Backend::kAbnn2;
  Reveal reveal = Reveal::kLogits;
  std::size_t chunk_instances = 8192;
  std::size_t trunc_bits = 0;  // 0 = paper-faithful (no rescaling)

  explicit InferenceConfig(ss::Ring r) : ring(r) {}
};

/// Public model architecture exchanged in the handshake (shapes and
/// quantization schemes are public; weights are not).
struct ModelInfo {
  std::size_t ring_bits = 0;
  std::vector<std::size_t> dims;           // logical dims: dims[0] = input, ...
  std::vector<std::string> scheme_names;   // one per layer
  std::vector<std::optional<nn::ConvSpec>> convs;  // one per layer
  std::vector<std::optional<nn::PoolSpec>> pools;  // one per layer
};

class InferenceServer {
 public:
  InferenceServer(nn::Model model, InferenceConfig cfg);

  /// Handshake + triplet generation for one upcoming batch.
  void run_offline(Channel& ch);
  /// Executes one prediction batch; the client ends with the logits.
  void run_online(Channel& ch);

 private:
  nn::Model model_;
  InferenceConfig cfg_;
  Prg prg_;
  Kk13Receiver kk_;
  IknpReceiver iknp_{0x5EC0'0001};  // SecureML / QUOTIENT backends
  std::unique_ptr<baselines::MinionnServer> minionn_;
  gc::GcGarbler argmax_gc_{0xA43A'0001};
  ReluServer relu_;
  MaxPoolServer maxpool_;
  bool kk_setup_ = false;
  bool iknp_setup_ = false;
  std::size_t o_ = 0;
  std::vector<nn::MatU64> u_;  // one triplet share per layer
};

class InferenceClient {
 public:
  explicit InferenceClient(InferenceConfig cfg);

  /// Handshake + triplet generation; `batch` is the number of inputs of the
  /// upcoming online run.
  void run_offline(Channel& ch, std::size_t batch);
  /// Runs one batch; `x` is input_dim x batch. Returns the logits
  /// (output_dim x batch). With Reveal::kArgmax the returned matrix is
  /// 1 x batch holding the class indices (the logits never leave the GC).
  nn::MatU64 run_online(Channel& ch, const nn::MatU64& x);

  const ModelInfo& info() const { return info_; }

 private:
  InferenceConfig cfg_;
  Prg prg_;
  Kk13Sender kk_;
  IknpSender iknp_{0x5EC0'0001};
  std::unique_ptr<baselines::MinionnClient> minionn_;
  gc::GcEvaluator argmax_gc_{0xA43A'0001};
  ReluClient relu_;
  MaxPoolClient maxpool_;
  bool kk_setup_ = false;
  bool iknp_setup_ = false;
  std::size_t o_ = 0;
  ModelInfo info_;
  std::vector<nn::MatU64> r_;  // client input-share per layer
  std::vector<nn::MatU64> v_;  // triplet shares per layer
};

/// Local probabilistic truncation of an additive share (SecureML, used only
/// when trunc_bits > 0). party is 0 for the server share, 1 for the client.
u64 truncate_share(const ss::Ring& ring, u64 share, std::size_t f, int party);

}  // namespace abnn2::core
