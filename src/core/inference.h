// End-to-end secure two-party QNN prediction (paper section 3, Fig 2).
//
// The server owns the quantized model, the client owns the input batch.
// Executing one prediction batch is split, as in the paper, into:
//
//  offline phase (data independent): for every layer i the client samples a
//  random matrix R_i — its future share of that layer's input — and the two
//  parties run the 1-out-of-N-OT triplet generation of section 4.1, leaving
//  the server with U_i and the client with V_i s.t. U_i + V_i = W_i * R_i.
//
//  online phase: the client sends <x>_0 = x - R_0; each linear layer is then
//  one local matrix product on the server (W_i * <z>_0 + U_i) plus the
//  client's stored V_i; each non-linear layer runs the GC ReLU protocol of
//  section 4.2. Finally the server reveals its share of the logits.
//
// Optional extension (off by default, the paper does not rescale): local
// probabilistic truncation of the activation shares by `trunc_bits`
// (SecureML-style), so multi-layer fixed-point scales stay bounded.
#pragma once

#include <array>
#include <memory>
#include <optional>

#include "baselines/minionn.h"
#include "baselines/quotient.h"
#include "baselines/secureml.h"
#include "core/argmax.h"
#include "core/maxpool.h"
#include "core/nonlinear.h"
#include "core/protocol_seeds.h"
#include "core/triplet_gen.h"
#include "nn/model.h"

namespace abnn2::core {

/// Session handshake (run at the top of every offline phase, before any
/// cryptographic setup). Wire format, little-endian:
///
///   client hello:  u32 magic "AB2C", u32 version, u64 ring_bits,
///                  u64 batch, u64 flags (bit 0: request batch resume),
///                  u64 session_token (0 = new session),
///                  32-byte model digest (all-zero = any/default model)
///   server hello:  u32 magic "AB2S", u32 version, u64 ring_bits,
///                  u64 relu, u64 backend, u64 reveal,
///                  32-byte SHA-256 model digest, u64 resume_granted,
///                  u64 session_token (assigned by the serving side)
///   busy reply:    u32 magic "AB2B", u64 retry_after_ms_hint
///                  (sent instead of the server hello when admission control
///                  rejects the connection; the client throws ServerBusy and
///                  backs off with jittered retry)
///
/// Mismatched magic/version/ring/config throws ProtocolError on the side
/// that detects it — mismatched binaries or models fail fast with a
/// diagnostic instead of producing wrong predictions. The digest pins the
/// exact served model when the client sets `expected_model_digest`. The
/// session token identifies a client relationship across reconnects, so a
/// multi-session server (serve::Supervisor) can route a reconnecting client
/// back to its retained offline material; the client digest doubles as the
/// model key for multi-model registries and as the resume-validity check
/// (retained material is only reusable against the exact same model).
inline constexpr u32 kHandshakeMagicClient = 0x43324241;  // "AB2C"
inline constexpr u32 kHandshakeMagicServer = 0x53324241;  // "AB2S"
inline constexpr u32 kHandshakeMagicBusy = 0x42324241;    // "AB2B"
/// v2: IKNP/KK13 extend() sends all correction rows as one coalesced wire
/// message instead of one message per code column (see ot/iknp.h, ot/kk13.h).
/// v3: client hello carries a session token and a model digest; server hello
/// carries resume_granted plus the assigned token; BUSY admission rejection.
inline constexpr u32 kProtocolVersion = 3;

/// Thrown by InferenceClient::run_offline when the server answers the hello
/// with a BUSY admission rejection. A ChannelError (transient): the caller
/// should back off for roughly retry_after_ms (plus jitter) and reconnect.
class ServerBusy : public ChannelError {
 public:
  explicit ServerBusy(u64 retry_after_ms)
      : ChannelError("server busy (admission cap reached), retry after ~" +
                     std::to_string(retry_after_ms) + " ms"),
        retry_after_ms_(retry_after_ms) {}
  u64 retry_after_ms() const { return retry_after_ms_; }

 private:
  u64 retry_after_ms_;
};

/// Parsed client hello. A multi-session server reads this first (to route
/// the connection to a session and a model) and then hands it to
/// InferenceServer::run_offline(ch, hello); the single-session
/// run_offline(ch) overload reads it internally.
struct ClientHello {
  u32 version = kProtocolVersion;
  u64 ring_bits = 0;
  u64 batch = 0;
  u64 flags = 0;                      // bit 0: request batch resume
  u64 session_token = 0;              // 0 = new session
  std::array<u8, 32> model_digest{};  // all-zero = any/default model

  bool wants_resume() const { return (flags & 1) != 0; }
  bool has_digest() const {
    for (u8 b : model_digest)
      if (b) return true;
    return false;
  }
};

/// Server-side parse of the fixed-size client hello. Validates magic and
/// protocol version (ProtocolError on mismatch); semantic checks (ring
/// width, batch bounds, resume validity) happen in run_offline.
ClientHello read_client_hello(Channel& ch);

/// Admission rejection: answers a freshly accepted connection with one BUSY
/// reply (instead of a server hello) so the client fails fast with
/// ServerBusy rather than hanging. The serving side closes the connection
/// afterwards; nothing else may be sent on it.
void send_busy(Channel& ch, u64 retry_after_ms);

/// Which offline triplet generator drives the linear layers. The online
/// phase (share algebra + GC ReLU) is identical for all backends, exactly
/// mirroring how the paper compares against MiniONN/QUOTIENT.
enum class Backend { kAbnn2, kSecureML, kMiniONN, kQuotient };

/// What the client learns at the end of the online phase (extension beyond
/// the paper, which always reveals the logits): kArgmax replaces the final
/// share reveal with one more garbled circuit so only the class index leaks.
enum class Reveal { kLogits, kArgmax };

struct InferenceConfig {
  ss::Ring ring;
  ReluMode relu = ReluMode::kOptimized;
  BatchMode batch_mode = BatchMode::kAuto;
  Backend backend = Backend::kAbnn2;
  Reveal reveal = Reveal::kLogits;
  std::size_t chunk_instances = 8192;
  std::size_t trunc_bits = 0;  // 0 = paper-faithful (no rescaling)
  /// Size of the process-wide runtime thread pool used by the hot kernels
  /// (OT column expansion, pad hashing, garbling, matmul). 0 keeps the
  /// current process default (ABNN2_THREADS env, else hardware concurrency);
  /// nonzero calls runtime::set_threads() in the server/client constructor.
  /// Results are identical for every pool size.
  std::size_t threads = 0;
  /// Client-side model pin: when set, the handshake fails with ProtocolError
  /// unless the server's model digest matches exactly.
  std::optional<std::array<u8, 32>> expected_model_digest;
  /// When non-empty, installs the process-global trace collector writing a
  /// Chrome trace_event JSON to this path (same effect as ABNN2_TRACE; the
  /// first path installed in the process wins — see obs/obs.h). Tracing
  /// never changes the wire transcript.
  std::string trace_path;

  explicit InferenceConfig(ss::Ring r) : ring(r) {}

  /// Rejects nonsense configurations with std::invalid_argument before any
  /// protocol state exists (called by both the server and the client
  /// constructor): truncating at least the whole ring width would zero every
  /// share, and a zero OT chunk size would loop forever without progress.
  void validate() const;
};

/// Public model architecture exchanged in the handshake (shapes and
/// quantization schemes are public; weights are not).
struct ModelInfo {
  std::size_t ring_bits = 0;
  std::vector<std::size_t> dims;           // logical dims: dims[0] = input, ...
  std::vector<std::string> scheme_names;   // one per layer
  std::vector<std::optional<nn::ConvSpec>> convs;  // one per layer
  std::vector<std::optional<nn::PoolSpec>> pools;  // one per layer
  std::array<u8, 32> model_digest{};       // SHA-256 of the served model file
};

// Failure/recovery model (see DESIGN.md "Failure model & recovery"): all
// per-connection cryptographic session state (OT-extension chains, GC tweak
// counters) lives in a Session object that reset_session() discards, while
// completed offline triplet material (pure data, independent of any
// transport or OT session) survives. After a transport failure both sides
// reset their sessions, reconnect, and the handshake negotiates a resume:
// the interrupted batch re-runs its online phase on the retained triplets
// without paying the offline cost again.

class InferenceServer {
 public:
  InferenceServer(nn::Model model, InferenceConfig cfg);
  /// Shared-model constructor for multi-session servers: many concurrent
  /// InferenceServer instances (one per client relationship) reference one
  /// immutable model instead of each holding a copy. When `known_digest` is
  /// non-null the (already validated) model is not re-serialized/re-hashed —
  /// serve::ModelRegistry computes the digest once per model.
  InferenceServer(std::shared_ptr<const nn::Model> model, InferenceConfig cfg,
                  const std::array<u8, 32>* known_digest = nullptr);

  /// Handshake + triplet generation for one upcoming batch. When the client
  /// requests a resume and this server still holds matching offline
  /// material, triplet generation is skipped.
  void run_offline(Channel& ch);
  /// Same, with the client hello already read off the wire (multi-session
  /// servers parse it first to route the connection).
  void run_offline(Channel& ch, const ClientHello& hello);
  /// Executes one prediction batch; the client ends with the logits.
  /// Offline material is consumed only on success, so an interrupted batch
  /// can be re-run after reconnecting.
  void run_online(Channel& ch);

  /// Drops per-connection protocol state (OT extensions, GC counters) while
  /// keeping completed offline triplet material. Call after a transport
  /// failure, before serving the next connection.
  void reset_session();
  /// True while *completed* offline material is retained for a pending
  /// batch. Partial material from an offline phase that died midway is never
  /// resumable (the peer's half is equally partial) and is discarded.
  bool has_offline_material() const { return offline_complete_ && !u_.empty(); }
  std::size_t offline_batch() const { return o_; }
  /// SHA-256 over the serialized model, as sent in the handshake.
  const std::array<u8, 32>& model_digest() const { return digest_; }
  /// True when the last run_offline granted the client's resume request.
  bool last_resume_granted() const { return last_resume_granted_; }
  /// Token echoed in the server hello (serve::Supervisor assigns one per
  /// session so reconnecting clients are routed back to this instance;
  /// standalone servers leave it 0).
  void set_session_token(u64 token) { session_token_ = token; }
  u64 session_token() const { return session_token_; }

 private:
  /// Per-connection cryptographic state; never outlives a transport session.
  struct Session {
    Kk13Receiver kk;
    IknpReceiver iknp{kIknpBaselineTag};  // SecureML / QUOTIENT backends
    std::unique_ptr<baselines::MinionnServer> minionn;
    gc::GcGarbler argmax_gc{kArgmaxGcTag};
    ReluServer relu;
    MaxPoolServer maxpool;
    bool kk_setup = false;
    bool iknp_setup = false;

    explicit Session(const InferenceConfig& cfg)
        : relu(cfg.ring, cfg.relu), maxpool(cfg.ring) {}
  };
  Session& session();
  void run_offline_impl(Channel& ch, const ClientHello& hello);

  std::shared_ptr<const nn::Model> model_;
  InferenceConfig cfg_;
  Prg prg_;
  std::array<u8, 32> digest_{};
  std::unique_ptr<Session> sess_;
  std::size_t o_ = 0;
  u64 session_token_ = 0;
  bool offline_complete_ = false;
  bool last_resume_granted_ = false;
  std::vector<nn::MatU64> u_;  // one triplet share per layer
};

class InferenceClient {
 public:
  explicit InferenceClient(InferenceConfig cfg);

  /// Handshake + triplet generation; `batch` is the number of inputs of the
  /// upcoming online run. When this client still holds offline material for
  /// the same batch size (a previous online run was interrupted), it
  /// requests a resume; if the server agrees, triplet generation is skipped.
  void run_offline(Channel& ch, std::size_t batch);
  /// Runs one batch; `x` is input_dim x batch. Returns the logits
  /// (output_dim x batch). With Reveal::kArgmax the returned matrix is
  /// 1 x batch holding the class indices (the logits never leave the GC).
  nn::MatU64 run_online(Channel& ch, const nn::MatU64& x);

  /// Drops per-connection protocol state, keeping offline triplet material.
  /// Call after a transport failure, before reconnecting.
  void reset_session();
  /// True when the last run_offline resumed on retained material.
  bool resumed() const { return resumed_; }
  /// True while *completed* offline material is retained (see the server
  /// counterpart: partial material is never offered for resume).
  bool has_offline_material() const { return offline_complete_ && !r_.empty(); }
  /// Session token assigned by the server (0 before the first handshake or
  /// against a standalone single-session server). Sent on every subsequent
  /// hello so a multi-session server routes reconnects back to the retained
  /// state of this client relationship.
  u64 session_token() const { return token_; }

  const ModelInfo& info() const { return info_; }

 private:
  struct Session {
    Kk13Sender kk;
    IknpSender iknp{kIknpBaselineTag};
    std::unique_ptr<baselines::MinionnClient> minionn;
    gc::GcEvaluator argmax_gc{kArgmaxGcTag};
    ReluClient relu;
    MaxPoolClient maxpool;
    bool kk_setup = false;
    bool iknp_setup = false;

    explicit Session(const InferenceConfig& cfg)
        : relu(cfg.ring, cfg.relu), maxpool(cfg.ring) {}
  };
  Session& session();

  InferenceConfig cfg_;
  Prg prg_;
  std::unique_ptr<Session> sess_;
  std::size_t o_ = 0;
  u64 token_ = 0;
  bool resumed_ = false;
  bool offline_complete_ = false;
  ModelInfo info_;
  std::vector<nn::MatU64> r_;  // client input-share per layer
  std::vector<nn::MatU64> v_;  // triplet shares per layer
};

/// Local probabilistic truncation of an additive share (SecureML, used only
/// when trunc_bits > 0). party is 0 for the server share, 1 for the client.
u64 truncate_share(const ss::Ring& ring, u64 share, std::size_t f, int party);

}  // namespace abnn2::core
