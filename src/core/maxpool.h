// Secure fused ReLU + max-pool on additive shares (extension; same protocol
// pattern as the non-linear layer of Algorithm 2).
//
// Per pool window the parties garble one circuit that reconstructs every
// window element y_e = y0_e + y1_e, takes the signed maximum, applies ReLU
// and re-shares: the server (evaluator) obtains z0 = ReLU(max_e y_e) - z1
// where z1 is the client-chosen output share (its next-layer R). Roles match
// the ReLU protocols: client garbles, server evaluates.
#pragma once

#include "gc/protocol.h"
#include "nn/pool.h"
#include "ss/additive.h"

namespace abnn2::core {

/// Fused circuit over k window elements of l bits.
gc::Circuit relu_maxpool_circuit(std::size_t l, std::size_t k);

class MaxPoolServer {
 public:
  explicit MaxPoolServer(ss::Ring ring) : ring_(ring) {}

  /// y0: in_size x batch share matrix; returns the out_size x batch share.
  nn::MatU64 run(Channel& ch, const nn::PoolSpec& spec, const nn::MatU64& y0,
                 Prg& prg);

 private:
  ss::Ring ring_;
  gc::GcEvaluator gc_{0x900C'0001};
};

class MaxPoolClient {
 public:
  explicit MaxPoolClient(ss::Ring ring) : ring_(ring) {}

  /// z1: out_size x batch output shares chosen by the caller.
  void run(Channel& ch, const nn::PoolSpec& spec, const nn::MatU64& y1,
           const nn::MatU64& z1, Prg& prg);

 private:
  ss::Ring ring_;
  gc::GcGarbler gc_{0x900C'0001};
};

}  // namespace abnn2::core
