#include "core/argmax.h"

namespace abnn2::core {
namespace {

std::size_t index_bits(std::size_t n) {
  std::size_t b = 1;
  while ((std::size_t{1} << b) < n) ++b;
  return b;
}

}  // namespace

gc::Circuit argmax_circuit(std::size_t l, std::size_t n_classes) {
  ABNN2_CHECK_ARG(n_classes >= 2, "need at least two classes");
  const std::size_t ib = index_bits(n_classes);
  gc::Builder b;
  // Garbler: all y0 words, then index-constant words (public values the
  // garbler wires in; the builder has no constant gates, and these cost no
  // AND gates anyway).
  std::vector<std::vector<u32>> y0(n_classes), idx(n_classes), y1(n_classes);
  for (auto& w : y0) w = b.garbler_inputs(l);
  for (auto& w : idx) w = b.garbler_inputs(ib);
  for (auto& w : y1) w = b.evaluator_inputs(l);

  // Reconstruct logits and bias the MSB so unsigned comparison realizes
  // signed comparison: cmp(a, b) on (a ^ 2^(l-1), b ^ 2^(l-1)).
  std::vector<std::vector<u32>> val(n_classes);
  for (std::size_t i = 0; i < n_classes; ++i) {
    val[i] = b.add_mod(y0[i], y1[i]);
    val[i][l - 1] = b.NOT(val[i][l - 1]);
  }

  std::vector<u32> best_v = val[0];
  std::vector<u32> best_i = idx[0];
  for (std::size_t i = 1; i < n_classes; ++i) {
    const u32 gt = b.less_than(best_v, val[i]);  // candidate strictly greater
    best_v = b.mux(gt, val[i], best_v);
    best_i = b.mux(gt, idx[i], best_i);
  }
  b.mark_outputs(best_i);
  return b.build();
}

void argmax_server_batch(Channel& ch, gc::GcGarbler& gc, const ss::Ring& ring,
                         const nn::MatU64& y0, Prg& prg) {
  const std::size_t l = ring.bits();
  const std::size_t n = y0.rows();
  const std::size_t o = y0.cols();
  const std::size_t ib = index_bits(n);
  const gc::Circuit c = argmax_circuit(l, n);
  const std::size_t per = n * l + n * ib;
  std::vector<u8> bits(o * per);
  for (std::size_t col = 0; col < o; ++col) {
    u8* b = bits.data() + col * per;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = 0; k < l; ++k)
        b[i * l + k] = static_cast<u8>((y0.at(i, col) >> k) & 1);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = 0; k < ib; ++k)
        b[n * l + i * ib + k] = static_cast<u8>((i >> k) & 1);
  }
  gc.run(ch, c, o, bits, prg);
}

std::vector<std::size_t> argmax_client_batch(Channel& ch, gc::GcEvaluator& gc,
                                             const ss::Ring& ring,
                                             const nn::MatU64& y1, Prg& prg) {
  const std::size_t l = ring.bits();
  const std::size_t n = y1.rows();
  const std::size_t o = y1.cols();
  const std::size_t ib = index_bits(n);
  const gc::Circuit c = argmax_circuit(l, n);
  std::vector<u8> bits(o * n * l);
  for (std::size_t col = 0; col < o; ++col)
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = 0; k < l; ++k)
        bits[col * n * l + i * l + k] =
            static_cast<u8>((y1.at(i, col) >> k) & 1);
  const auto out = gc.run(ch, c, o, bits, prg);
  std::vector<std::size_t> idxs(o, 0);
  for (std::size_t col = 0; col < o; ++col) {
    for (std::size_t k = 0; k < ib; ++k)
      if (out[col * ib + k]) idxs[col] |= std::size_t{1} << k;
    ABNN2_CHECK(idxs[col] < n, "argmax circuit produced an out-of-range index");
  }
  return idxs;
}

void argmax_server(Channel& ch, gc::GcGarbler& gc, const ss::Ring& ring,
                   std::span<const u64> y0, Prg& prg) {
  nn::MatU64 m(y0.size(), 1);
  std::copy(y0.begin(), y0.end(), m.data().begin());
  argmax_server_batch(ch, gc, ring, m, prg);
}

std::size_t argmax_client(Channel& ch, gc::GcEvaluator& gc,
                          const ss::Ring& ring, std::span<const u64> y1,
                          Prg& prg) {
  nn::MatU64 m(y1.size(), 1);
  std::copy(y1.begin(), y1.end(), m.data().begin());
  return argmax_client_batch(ch, gc, ring, m, prg)[0];
}

}  // namespace abnn2::core
