// ABNN2 offline phase: dot-product / matrix triplet generation from
// 1-out-of-N OT extension (paper section 4.1).
//
// Server S holds the quantized weight codes W (m x n) under a FragScheme;
// client C holds a random matrix R (n x o) — its future activation shares.
// The protocol ends with S holding U and C holding V such that
//
//     U + V = W_value * R   (mod 2^l),  element-wise over the m x o output,
//
// where W_value is the signed interpretation of the codes. Three modes:
//
//  - kOneBatchCot (paper 4.1.3): o == 1. Correlated-OT trick: the pad of
//    candidate 0 IS the client's share, so only N-1 masked messages of l
//    bits are sent per OT instance. Generalized here to arbitrary value
//    tables: s = value_0*r + pad_0, so message_t = (value_t - value_0)*r -
//    pad_0 and the server with choice 0 outputs -pad_0 locally.
//
//  - kMultiBatch (paper 4.1.2): one OT instance covers all o products
//    sharing the same weight; each of the N candidate messages carries o
//    packed l-bit elements masked by the RO-expanded pad.
//
//  - kAuto: one-batch when o == 1, multi-batch otherwise (the paper's
//    choice).
//
// Instances are processed in fixed-size chunks so peak memory stays bounded
// for large layers; the instance order (i, j, f) and chunk boundaries are
// part of the protocol.
#pragma once

#include "nn/fragment.h"
#include "nn/tensor.h"
#include "ot/kk13.h"
#include "ss/additive.h"

namespace abnn2::core {

enum class BatchMode { kAuto, kOneBatchCot, kMultiBatch };

struct TripletConfig {
  ss::Ring ring;
  BatchMode mode = BatchMode::kAuto;
  std::size_t chunk_instances = 8192;

  explicit TripletConfig(ss::Ring r) : ring(r) {}
};

/// Resolved mode for a given batch size.
inline BatchMode resolve_mode(BatchMode mode, std::size_t o) {
  if (mode != BatchMode::kAuto) return mode;
  return o == 1 ? BatchMode::kOneBatchCot : BatchMode::kMultiBatch;
}

/// Server side. `ot` must be set up (or will be set up on first use by the
/// caller); choices are the weight fragment indices. Returns U (m x o).
nn::MatU64 triplet_gen_server(Channel& ch, Kk13Receiver& ot,
                              const nn::MatU64& codes,
                              const nn::FragScheme& scheme, std::size_t o,
                              const TripletConfig& cfg);

/// Client side. `r` is n x o. Returns V (m x o).
nn::MatU64 triplet_gen_client(Channel& ch, Kk13Sender& ot, const nn::MatU64& r,
                              const nn::FragScheme& scheme, std::size_t m,
                              const TripletConfig& cfg, Prg& prg);

/// Algorithm 1 convenience wrapper: dot product of one weight row with one
/// vector (m = o = 1). Server returns u, client returns v with
/// u + v = <w, r>.
u64 dot_triplet_server(Channel& ch, Kk13Receiver& ot,
                       const std::vector<u64>& w_codes,
                       const nn::FragScheme& scheme, const TripletConfig& cfg);
u64 dot_triplet_client(Channel& ch, Kk13Sender& ot, const std::vector<u64>& r,
                       const nn::FragScheme& scheme, const TripletConfig& cfg,
                       Prg& prg);

}  // namespace abnn2::core
