#include "core/inference.h"

#include "common/packing.h"
#include "crypto/sha256.h"
#include "nn/model_io.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace abnn2::core {
namespace {

using nn::MatU64;

void send_u32v(Channel& ch, u32 v) { ch.send(&v, 4); }
u32 recv_u32v(Channel& ch) { u32 v; ch.recv(&v, 4); return v; }

void send_string(Channel& ch, const std::string& s) {
  ch.send_u64(s.size());
  if (!s.empty()) ch.send(s.data(), s.size());
}

std::string recv_string(Channel& ch) {
  const u64 n = ch.recv_u64();
  ABNN2_CHECK(n < 4096, "oversized handshake string");
  std::string s(n, '\0');
  if (n) ch.recv(s.data(), n);
  return s;
}

void send_mat(Channel& ch, const MatU64& m, std::size_t l) {
  ch.send_msg(pack_bits(m.data(), l));
}

MatU64 recv_mat(Channel& ch, std::size_t rows, std::size_t cols,
                std::size_t l) {
  // The packed size is fully determined by the expected shape.
  const auto blob = ch.recv_msg(bytes_for_bits(rows * cols * l));
  MatU64 m(rows, cols);
  m.data() = unpack_bits(blob, l, rows * cols);
  return m;
}

// Y = W * X + U (+ bias), all in the ring; conv layers are lowered with a
// local im2col on the server's activation share and re-flattened.
MatU64 server_linear(const ss::Ring& ring, const nn::FcLayer& layer,
                     const MatU64& x0, const MatU64& u) {
  MatU64 lowered;
  const MatU64* lin_in = &x0;
  if (layer.conv) {
    lowered = nn::im2col(*layer.conv, x0);
    lin_in = &lowered;
  }
  MatU64 y = nn::matmul_codes(ring, layer.codes, layer.scheme, *lin_in);
  for (std::size_t i = 0; i < y.rows(); ++i)
    for (std::size_t k = 0; k < y.cols(); ++k) {
      y.at(i, k) = ring.add(y.at(i, k), u.at(i, k));
      if (!layer.bias.empty()) y.at(i, k) = ring.add(y.at(i, k), layer.bias[i]);
    }
  if (layer.conv) y = nn::flatten_conv_output(*layer.conv, y, x0.cols());
  return y;
}

// Tracing setup shared by both constructors: honor ABNN2_TRACE, then an
// explicit trace_path, and publish the pool size while a collector is live.
void init_observability(const InferenceConfig& cfg) {
  obs::init_trace_from_env();
  if (!cfg.trace_path.empty()) obs::init_trace(cfg.trace_path);
  if (obs::enabled())
    obs::set_gauge("runtime.threads",
                   static_cast<double>(runtime::num_threads()));
}

}  // namespace

void InferenceConfig::validate() const {
  ABNN2_CHECK_ARG(trunc_bits < ring.bits(),
                  "trunc_bits must be smaller than the ring width (" +
                      std::to_string(trunc_bits) + " >= " +
                      std::to_string(ring.bits()) + ")");
  ABNN2_CHECK_ARG(chunk_instances >= 1,
                  "chunk_instances must be positive (0 makes no progress)");
  ABNN2_CHECK_ARG(threads <= 1024, "threads out of range (max 1024)");
}

u64 truncate_share(const ss::Ring& ring, u64 share, std::size_t f, int party) {
  if (f == 0) return share;
  if (party == 0) {
    const i64 v = ring.to_signed(share);
    return ring.from_signed(v >> f);
  }
  const i64 v = ring.to_signed(ring.neg(share));
  return ring.neg(ring.from_signed(v >> f));
}

ClientHello read_client_hello(Channel& ch) {
  ClientHello hello;
  const u32 magic = recv_u32v(ch);
  if (magic != kHandshakeMagicClient)
    throw ProtocolError(
        "handshake: bad client magic " + hex_u32(magic) +
        " (peer is not an abnn2 client, or the stream is desynchronized)");
  hello.version = recv_u32v(ch);
  if (hello.version != kProtocolVersion)
    throw ProtocolError("handshake: client speaks protocol version " +
                        hex_u32(hello.version) + ", this server speaks " +
                        hex_u32(kProtocolVersion));
  hello.ring_bits = ch.recv_u64();
  hello.batch = ch.recv_u64();
  hello.flags = ch.recv_u64();
  hello.session_token = ch.recv_u64();
  ch.recv(hello.model_digest.data(), hello.model_digest.size());
  return hello;
}

void send_busy(Channel& ch, u64 retry_after_ms) {
  send_u32v(ch, kHandshakeMagicBusy);
  ch.send_u64(retry_after_ms);
}

InferenceServer::InferenceServer(nn::Model model, InferenceConfig cfg)
    : InferenceServer(std::make_shared<const nn::Model>(std::move(model)),
                      cfg) {}

InferenceServer::InferenceServer(std::shared_ptr<const nn::Model> model,
                                 InferenceConfig cfg,
                                 const std::array<u8, 32>* known_digest)
    : model_(std::move(model)), cfg_(cfg) {
  cfg_.validate();
  ABNN2_CHECK_ARG(model_ != nullptr, "null model");
  ABNN2_CHECK_ARG(model_->ring == cfg_.ring, "model/config ring mismatch");
  if (cfg_.threads != 0) runtime::set_threads(cfg_.threads);
  init_observability(cfg_);
  if (known_digest) {
    digest_ = *known_digest;  // model already validated + hashed by the owner
  } else {
    model_->validate();
    digest_ = nn::model_digest(*model_);
  }
}

InferenceServer::Session& InferenceServer::session() {
  if (!sess_) sess_ = std::make_unique<Session>(cfg_);
  return *sess_;
}

void InferenceServer::reset_session() { sess_.reset(); }

void InferenceServer::run_offline(Channel& ch) {
  obs::ScopedParty party(0);
  obs::Scope phase("offline", &ch);
  // Hello read inside the phase span so depth-0 spans keep partitioning the
  // endpoint's traffic exactly (the obs golden-trace invariant).
  run_offline_impl(ch, read_client_hello(ch));
}

void InferenceServer::run_offline(Channel& ch, const ClientHello& hello) {
  obs::ScopedParty party(0);
  obs::Scope phase("offline", &ch);
  run_offline_impl(ch, hello);
}

void InferenceServer::run_offline_impl(Channel& ch, const ClientHello& hello) {
  last_resume_granted_ = false;

  // ---- session handshake ----------------------------------------------
  bool resume;
  {
    obs::Scope span("handshake", &ch);
    if (hello.ring_bits != cfg_.ring.bits())
      throw ProtocolError("handshake: client ring width " +
                          std::to_string(hello.ring_bits) +
                          " != server ring width " +
                          std::to_string(cfg_.ring.bits()));
    ABNN2_CHECK(hello.batch >= 1 && hello.batch <= (u64{1} << 20),
                "bad batch size");
    // Resume: the client retained offline material for an interrupted batch
    // and we retained the matching triplets — skip the offline cost entirely.
    // "Matching" means completed material for the same batch size against
    // the same model; anything stale is discarded here so it can never be
    // combined with a mismatched client half.
    resume = false;
    if (hello.wants_resume()) {
      const char* deny = nullptr;
      if (!offline_complete_ || u_.empty())
        deny = "no completed offline material retained";
      else if (o_ != hello.batch)
        deny = "batch size mismatch";
      else if (hello.has_digest() && hello.model_digest != digest_)
        deny = "model digest mismatch";
      if (deny == nullptr) {
        resume = true;
      } else if (!u_.empty()) {
        std::fprintf(stderr,
                     "[core] server: resume denied (%s): client batch=%llu "
                     "digest=%s vs retained batch=%zu digest=%s — discarding "
                     "stale offline material, falling back to a full offline "
                     "run\n",
                     deny, static_cast<unsigned long long>(hello.batch),
                     Sha256::hex(hello.model_digest).c_str(), o_,
                     Sha256::hex(digest_).c_str());
        u_.clear();
        offline_complete_ = false;
      }
    }
    o_ = hello.batch;
    last_resume_granted_ = resume;

    send_u32v(ch, kHandshakeMagicServer);
    send_u32v(ch, kProtocolVersion);
    ch.send_u64(cfg_.ring.bits());
    ch.send_u64(static_cast<u64>(cfg_.relu));
    ch.send_u64(static_cast<u64>(cfg_.backend));
    ch.send_u64(static_cast<u64>(cfg_.reveal));
    ch.send(digest_.data(), digest_.size());
    ch.send_u64(resume ? 1 : 0);
    ch.send_u64(session_token_);
  }
  if (resume) return;

  u_.clear();
  offline_complete_ = false;
  // ---- model architecture ---------------------------------------------
  {
    obs::Scope span("model-arch", &ch);
    ch.send_u64(model_->layers.size());
    ch.send_u64(model_->input_dim());
    for (const auto& layer : model_->layers) {
      ch.send_u64(layer.out_dim());
      send_string(ch, layer.scheme.name());
      ch.send_u64(layer.conv.has_value());
      if (layer.conv) {
        const auto& cv = *layer.conv;
        for (u64 v : {cv.in_c, cv.in_h, cv.in_w, cv.k_h, cv.k_w, cv.out_c,
                      cv.stride, cv.pad})
          ch.send_u64(v);
      }
      ch.send_u64(layer.pool.has_value());
      if (layer.pool) {
        const auto& pl = *layer.pool;
        for (u64 v : {pl.c, pl.h, pl.w, pl.win_h, pl.win_w, pl.stride})
          ch.send_u64(v);
      }
    }
  }

  // ---- backend setup (once per session/connection) ----------------------
  Session& s = session();
  {
    obs::Scope span("backend-setup", &ch);
    switch (cfg_.backend) {
      case Backend::kAbnn2:
        if (!s.kk_setup) {
          s.kk.setup(ch, prg_);
          s.kk_setup = true;
        }
        break;
      case Backend::kSecureML:
      case Backend::kQuotient:
        if (!s.iknp_setup) {
          s.iknp.setup(ch, prg_);
          s.iknp_setup = true;
        }
        break;
      case Backend::kMiniONN:
        if (!s.minionn) {
          s.minionn = std::make_unique<baselines::MinionnServer>(
              cfg_.ring.bits() <= 32 ? 32 : 64);
        }
        break;
    }
  }

  // ---- triplets per layer ---------------------------------------------
  TripletConfig tcfg(cfg_.ring);
  tcfg.mode = cfg_.batch_mode;
  tcfg.chunk_instances = cfg_.chunk_instances;
  for (std::size_t li = 0; li < model_->layers.size(); ++li) {
    const auto& layer = model_->layers[li];
    obs::Scope span("triplets", &ch, static_cast<i64>(li));
    // For conv layers, one triplet column per (output position, batch item).
    const std::size_t o_eff =
        layer.conv ? layer.conv->out_positions() * o_ : o_;
    switch (cfg_.backend) {
      case Backend::kAbnn2:
        u_.push_back(triplet_gen_server(ch, s.kk, layer.codes, layer.scheme,
                                        o_eff, tcfg));
        break;
      case Backend::kSecureML: {
        nn::MatU64 w(layer.codes.rows(), layer.codes.cols());
        for (std::size_t i = 0; i < w.data().size(); ++i)
          w.data()[i] =
              layer.scheme.interpret_ring(layer.codes.data()[i], cfg_.ring);
        u_.push_back(baselines::secureml_triplet_server(ch, s.iknp, w, o_eff,
                                                        cfg_.ring));
        break;
      }
      case Backend::kQuotient:
        ABNN2_CHECK_ARG(layer.scheme.name() == "ternary",
                        "QUOTIENT backend requires a ternary model");
        u_.push_back(baselines::quotient_triplet_server(ch, s.iknp,
                                                        layer.codes, o_eff,
                                                        cfg_.ring));
        break;
      case Backend::kMiniONN: {
        nn::Matrix<i64> w(layer.codes.rows(), layer.codes.cols());
        for (std::size_t i = 0; i < w.data().size(); ++i)
          w.data()[i] = layer.scheme.interpret(layer.codes.data()[i]);
        u_.push_back(s.minionn->triplet_gen(ch, w, o_eff, cfg_.ring, prg_));
        break;
      }
    }
  }
  // Only fully generated material is resumable: an interruption inside the
  // loop above leaves u_ partially filled, which must never be paired with a
  // client's complete half.
  offline_complete_ = true;
}

void InferenceServer::run_online(Channel& ch) {
  ABNN2_CHECK(!u_.empty(), "offline phase must run before online");
  obs::ScopedParty party(0);
  obs::Scope phase("online", &ch);
  Session& s = session();
  const auto& ring = cfg_.ring;
  const std::size_t l = ring.bits();

  // First layer input share from the client.
  MatU64 z0;
  {
    obs::Scope span("recv-input", &ch);
    z0 = recv_mat(ch, model_->input_dim(), o_, l);
  }

  for (std::size_t li = 0; li < model_->layers.size(); ++li) {
    MatU64 y0;
    {
      obs::Scope span("linear", nullptr, static_cast<i64>(li));
      y0 = server_linear(ring, model_->layers[li], z0, u_[li]);
      if (cfg_.trunc_bits > 0)
        for (auto& v : y0.data())
          v = truncate_share(ring, v, cfg_.trunc_bits, 0);
    }

    if (li + 1 == model_->layers.size()) {
      if (cfg_.reveal == Reveal::kArgmax) {
        obs::Scope span("argmax", &ch);
        argmax_server_batch(ch, s.argmax_gc, ring, y0, prg_);
      } else {
        obs::Scope span("reveal", &ch);
        send_mat(ch, y0, l);  // reveal the server's logit share
      }
      u_.clear();  // triplets are one-use; consumed only on success
      offline_complete_ = false;
      return;
    }
    if (model_->layers[li].pool) {
      obs::Scope span("maxpool", &ch, static_cast<i64>(li));
      z0 = s.maxpool.run(ch, *model_->layers[li].pool, y0, prg_);
    } else {
      obs::Scope span("relu", &ch, static_cast<i64>(li));
      const auto z0_flat = s.relu.run(ch, y0.data(), prg_);
      z0 = MatU64(y0.rows(), o_);
      z0.data() = z0_flat;
    }
  }
}

InferenceClient::InferenceClient(InferenceConfig cfg) : cfg_(cfg) {
  cfg_.validate();
  if (cfg_.threads != 0) runtime::set_threads(cfg_.threads);
  init_observability(cfg_);
}

InferenceClient::Session& InferenceClient::session() {
  if (!sess_) sess_ = std::make_unique<Session>(cfg_);
  return *sess_;
}

void InferenceClient::reset_session() { sess_.reset(); }

void InferenceClient::run_offline(Channel& ch, std::size_t batch) {
  ABNN2_CHECK_ARG(batch >= 1, "batch must be positive");
  obs::ScopedParty party(1);
  obs::Scope phase("offline", &ch);
  resumed_ = false;
  // Offer a resume when a previous batch of the same size was interrupted
  // after its offline phase fully completed; partial material is never
  // resumable.
  const bool want_resume = offline_complete_ && !r_.empty() && o_ == batch;
  o_ = batch;

  // ---- session handshake ----------------------------------------------
  u64 srv_ring;
  std::array<u8, 32> digest;
  {
    obs::Scope span("handshake", &ch);
    send_u32v(ch, kHandshakeMagicClient);
    send_u32v(ch, kProtocolVersion);
    ch.send_u64(cfg_.ring.bits());
    ch.send_u64(o_);
    ch.send_u64(want_resume ? 1 : 0);
    ch.send_u64(token_);
    // Model digest: when resuming we bind to the model the retained material
    // was generated against; otherwise a pinned digest routes the request in
    // multi-model servers, and all-zeros means "any/default model".
    std::array<u8, 32> sent_digest{};
    if (want_resume)
      sent_digest = info_.model_digest;
    else if (cfg_.expected_model_digest)
      sent_digest = *cfg_.expected_model_digest;
    ch.send(sent_digest.data(), sent_digest.size());

    const u32 magic = recv_u32v(ch);
    if (magic == kHandshakeMagicBusy) {
      const u64 retry_after_ms = ch.recv_u64();
      throw ServerBusy(retry_after_ms);
    }
    if (magic != kHandshakeMagicServer)
      throw ProtocolError(
          "handshake: bad server magic " + hex_u32(magic) +
          " (peer is not an abnn2 server, or the stream is desynchronized)");
    const u32 version = recv_u32v(ch);
    if (version != kProtocolVersion)
      throw ProtocolError("handshake: server speaks protocol version " +
                          hex_u32(version) + ", this client speaks " +
                          hex_u32(kProtocolVersion));
    srv_ring = ch.recv_u64();
    ABNN2_CHECK(srv_ring == cfg_.ring.bits(),
                "server ring width differs from client config");
    const u64 srv_relu = ch.recv_u64();
    ABNN2_CHECK(srv_relu == static_cast<u64>(cfg_.relu),
                "server ReLU mode differs from client config");
    const u64 srv_backend = ch.recv_u64();
    ABNN2_CHECK(srv_backend == static_cast<u64>(cfg_.backend),
                "server backend differs from client config");
    const u64 srv_reveal = ch.recv_u64();
    ABNN2_CHECK(srv_reveal == static_cast<u64>(cfg_.reveal),
                "server reveal mode differs from client config");
    ch.recv(digest.data(), digest.size());
    if (cfg_.expected_model_digest && digest != *cfg_.expected_model_digest)
      throw ProtocolError("handshake: server model digest " +
                          Sha256::hex(digest) + " does not match pinned " +
                          Sha256::hex(*cfg_.expected_model_digest));
    const u64 resume_granted = ch.recv_u64();
    const u64 srv_token = ch.recv_u64();
    if (srv_token != 0) token_ = srv_token;
    if (resume_granted) {
      ABNN2_CHECK(want_resume, "server granted a resume we did not request");
      if (digest != info_.model_digest)
        throw ProtocolError(
            "handshake: server granted a resume but serves model digest " +
            Sha256::hex(digest) + ", retained material was generated for " +
            Sha256::hex(info_.model_digest));
      resumed_ = true;
    }
  }
  if (resumed_) return;  // r_/v_/info_ retained from the interrupted batch
  r_.clear();
  v_.clear();
  offline_complete_ = false;

  // ---- model architecture ---------------------------------------------
  std::optional<obs::Scope> arch_span;
  arch_span.emplace("model-arch", &ch);
  info_ = ModelInfo{};
  info_.ring_bits = srv_ring;
  info_.model_digest = digest;
  const u64 n_layers = ch.recv_u64();
  ABNN2_CHECK(n_layers >= 1 && n_layers <= 1024, "bad layer count");
  info_.dims.push_back(ch.recv_u64());
  for (u64 i = 0; i < n_layers; ++i) {
    info_.dims.push_back(ch.recv_u64());
    info_.scheme_names.push_back(recv_string(ch));
    if (ch.recv_u64() != 0) {
      nn::ConvSpec cv{};
      cv.in_c = ch.recv_u64();
      cv.in_h = ch.recv_u64();
      cv.in_w = ch.recv_u64();
      cv.k_h = ch.recv_u64();
      cv.k_w = ch.recv_u64();
      cv.out_c = ch.recv_u64();
      cv.stride = ch.recv_u64();
      cv.pad = ch.recv_u64();
      ABNN2_CHECK(cv.in_size() == info_.dims[i],
                  "conv spec inconsistent with layer input");
      info_.convs.emplace_back(cv);
    } else {
      info_.convs.emplace_back(std::nullopt);
    }
    if (ch.recv_u64() != 0) {
      nn::PoolSpec pl{};
      pl.c = ch.recv_u64();
      pl.h = ch.recv_u64();
      pl.w = ch.recv_u64();
      pl.win_h = ch.recv_u64();
      pl.win_w = ch.recv_u64();
      pl.stride = ch.recv_u64();
      ABNN2_CHECK(pl.out_size() == info_.dims[i + 1],
                  "pool spec inconsistent with layer dims");
      info_.pools.emplace_back(pl);
    } else {
      info_.pools.emplace_back(std::nullopt);
    }
    // Linear output (pre-pool) must line up with the declared dims.
    const auto& cvo = info_.convs.back();
    const auto& plo = info_.pools.back();
    const std::size_t linear_out =
        cvo ? cvo->out_c * cvo->out_positions()
            : (plo ? plo->in_size() : info_.dims[i + 1]);
    if (plo) {
      ABNN2_CHECK(plo->in_size() == linear_out,
                  "pool spec inconsistent with conv output");
    } else if (cvo) {
      ABNN2_CHECK(linear_out == info_.dims[i + 1],
                  "conv spec inconsistent with layer output");
    }
  }
  arch_span.reset();

  Session& s = session();
  {
    obs::Scope span("backend-setup", &ch);
    switch (cfg_.backend) {
      case Backend::kAbnn2:
        if (!s.kk_setup) {
          s.kk.setup(ch, prg_);
          s.kk_setup = true;
        }
        break;
      case Backend::kSecureML:
      case Backend::kQuotient:
        if (!s.iknp_setup) {
          s.iknp.setup(ch, prg_);
          s.iknp_setup = true;
        }
        break;
      case Backend::kMiniONN:
        if (!s.minionn) {
          s.minionn = std::make_unique<baselines::MinionnClient>(
              cfg_.ring.bits() <= 32 ? 32 : 64, prg_);
        }
        break;
    }
  }

  TripletConfig tcfg(cfg_.ring);
  tcfg.mode = cfg_.batch_mode;
  tcfg.chunk_instances = cfg_.chunk_instances;
  for (u64 i = 0; i < n_layers; ++i) {
    obs::Scope span("triplets", &ch, static_cast<i64>(i));
    const std::size_t in_dim = info_.dims[i];
    const auto& conv = info_.convs[i];
    r_.push_back(nn::random_mat(in_dim, o_, cfg_.ring.bits(), prg_));
    // For conv layers the triplet operand is the im2col-lowered share and
    // the triplet output has one row per kernel, one column per (position,
    // batch item). Lowering/flattening are local.
    const nn::MatU64 r_lowered =
        conv ? nn::im2col(*conv, r_.back()) : r_.back();
    const auto& pool = info_.pools[i];
    const std::size_t m =
        conv ? conv->out_c
             : (pool ? pool->in_size() : info_.dims[i + 1]);
    nn::MatU64 v;
    switch (cfg_.backend) {
      case Backend::kAbnn2: {
        const auto scheme = nn::FragScheme::parse(info_.scheme_names[i]);
        v = triplet_gen_client(ch, s.kk, r_lowered, scheme, m, tcfg, prg_);
        break;
      }
      case Backend::kSecureML:
        v = baselines::secureml_triplet_client(ch, s.iknp, r_lowered, m,
                                               cfg_.ring, prg_);
        break;
      case Backend::kQuotient:
        v = baselines::quotient_triplet_client(ch, s.iknp, r_lowered, m,
                                               cfg_.ring);
        break;
      case Backend::kMiniONN:
        v = s.minionn->triplet_gen(ch, r_lowered, m, cfg_.ring, prg_);
        break;
    }
    if (conv) v = nn::flatten_conv_output(*conv, v, o_);
    v_.push_back(std::move(v));
  }
  offline_complete_ = true;  // see the server-side note: partial r_/v_ is
                             // never offered for resume
}

nn::MatU64 InferenceClient::run_online(Channel& ch, const MatU64& x) {
  ABNN2_CHECK(!r_.empty(), "offline phase must run before online");
  ABNN2_CHECK_ARG(x.rows() == info_.dims[0] && x.cols() == o_,
                  "input shape mismatch");
  obs::ScopedParty party(1);
  obs::Scope phase("online", &ch);
  Session& s = session();
  const auto& ring = cfg_.ring;
  const std::size_t l = ring.bits();

  // <x>_0 = x - R_0 goes to the server; <x>_1 = R_0 stays here.
  {
    obs::Scope span("send-input", &ch);
    MatU64 x0(x.rows(), x.cols());
    for (std::size_t i = 0; i < x.data().size(); ++i)
      x0.data()[i] = ring.sub(x.data()[i], r_[0].data()[i]);
    send_mat(ch, x0, l);
  }

  const std::size_t n_layers = v_.size();
  for (std::size_t li = 0; li + 1 < n_layers; ++li) {
    // y1 = V_li (this party's share of the linear output); z1 = R_{li+1}.
    if (info_.pools[li]) {
      obs::Scope span("maxpool", &ch, static_cast<i64>(li));
      nn::MatU64 y1m = v_[li];
      if (cfg_.trunc_bits > 0)
        for (auto& v : y1m.data())
          v = truncate_share(ring, v, cfg_.trunc_bits, 1);
      s.maxpool.run(ch, *info_.pools[li], y1m, r_[li + 1], prg_);
      continue;
    }
    obs::Scope span("relu", &ch, static_cast<i64>(li));
    std::vector<u64> y1 = v_[li].data();
    if (cfg_.trunc_bits > 0)
      for (auto& v : y1) v = truncate_share(ring, v, cfg_.trunc_bits, 1);
    s.relu.run(ch, y1, r_[li + 1].data(), prg_);
  }

  // Final layer: either an argmax circuit (only the class index leaks) or
  // the paper's share reveal.
  const std::size_t out_dim = info_.dims.back();
  if (cfg_.reveal == Reveal::kArgmax) {
    obs::Scope span("argmax", &ch);
    MatU64 y1m(out_dim, o_);
    y1m.data() = v_.back().data();
    if (cfg_.trunc_bits > 0)
      for (auto& v : y1m.data())
        v = truncate_share(ring, v, cfg_.trunc_bits, 1);
    const auto idxs = argmax_client_batch(ch, s.argmax_gc, ring, y1m, prg_);
    MatU64 cls(1, o_);
    for (std::size_t k = 0; k < o_; ++k) cls.at(0, k) = idxs[k];
    r_.clear();
    v_.clear();
    offline_complete_ = false;
    return cls;
  }
  obs::Scope span("reveal", &ch);
  MatU64 y0 = recv_mat(ch, out_dim, o_, l);
  MatU64 logits(out_dim, o_);
  for (std::size_t i = 0; i < logits.data().size(); ++i) {
    u64 v1 = v_.back().data()[i];
    if (cfg_.trunc_bits > 0) v1 = truncate_share(ring, v1, cfg_.trunc_bits, 1);
    logits.data()[i] = ring.add(y0.data()[i], v1);
  }
  r_.clear();
  v_.clear();
  offline_complete_ = false;
  return logits;
}

}  // namespace abnn2::core
