#include "core/nonlinear.h"

#include "common/packing.h"

namespace abnn2::core {
namespace {

// Writes the l-bit little-endian decomposition of each value as one byte per
// bit (the GC protocol input format).
std::vector<u8> to_input_bits(std::span<const u64> vals, std::size_t l) {
  std::vector<u8> bits(vals.size() * l);
  for (std::size_t k = 0; k < vals.size(); ++k)
    for (std::size_t i = 0; i < l; ++i)
      bits[k * l + i] = static_cast<u8>((vals[k] >> i) & 1);
  return bits;
}

u64 from_output_bits(const u8* bits, std::size_t l) {
  u64 v = 0;
  for (std::size_t i = 0; i < l; ++i)
    if (bits[i] & 1) v |= u64{1} << i;
  return v;
}

}  // namespace

gc::Circuit relu_generic_circuit(std::size_t l) {
  gc::Builder b;
  const auto y1 = b.garbler_inputs(l);   // client
  const auto z1 = b.garbler_inputs(l);
  const auto y0 = b.evaluator_inputs(l); // server
  const auto sum = b.add_mod(y0, y1);
  const u32 pos = b.NOT(sum[l - 1]);     // 1 iff ReLU passes the value
  const auto relu = b.and_bit(pos, sum);
  const auto out = b.sub_mod(relu, z1);
  b.mark_outputs(out);
  return b.build();
}

gc::Circuit sign_circuit(std::size_t l) {
  gc::Builder b;
  const auto y1 = b.garbler_inputs(l);
  const auto y0 = b.evaluator_inputs(l);
  const auto sum = b.add_mod(y0, y1);
  b.mark_output(b.NOT(sum[l - 1]));  // 1 iff y >= 0
  return b.build();
}

gc::Circuit reshare_circuit(std::size_t l) {
  gc::Builder b;
  const auto y1 = b.garbler_inputs(l);
  const auto z1 = b.garbler_inputs(l);
  const auto y0 = b.evaluator_inputs(l);
  const auto sum = b.add_mod(y0, y1);
  const auto out = b.sub_mod(sum, z1);
  b.mark_outputs(out);
  return b.build();
}

gc::Circuit sigmoid_circuit(std::size_t l) {
  gc::Builder b;
  const auto y1 = b.garbler_inputs(l);
  const auto z1 = b.garbler_inputs(l);
  const auto half = b.garbler_inputs(l);  // public constant 2^(frac-1)
  const auto one = b.garbler_inputs(l);   // public constant 2^frac
  const auto y0 = b.evaluator_inputs(l);

  const auto y = b.add_mod(y0, y1);
  const auto s1 = b.add_mod(y, half);        // y + 1/2
  const u32 below = s1[l - 1];               // 1 iff y < -1/2
  const auto d = b.sub_mod(y, half);         // y - 1/2
  const u32 above = b.NOT(d[l - 1]);         // 1 iff y >= 1/2
  const auto mid = b.and_bit(b.NOT(below), s1);
  const auto clamped = b.mux(above, one, mid);
  b.mark_outputs(b.sub_mod(clamped, z1));
  return b.build();
}

u64 sigmoid_plain(const ss::Ring& ring, std::size_t frac_bits, u64 y) {
  const i64 half = i64{1} << (frac_bits - 1);
  const i64 v = ring.to_signed(y);
  if (v < -half) return 0;
  if (v >= half) return ring.from_signed(2 * half);
  return ring.from_signed(v + half);
}

std::vector<u64> sigmoid_server(Channel& ch, gc::GcEvaluator& gc,
                                const ss::Ring& ring, std::size_t frac_bits,
                                std::span<const u64> y0, Prg& prg) {
  ABNN2_CHECK_ARG(frac_bits >= 1 && frac_bits + 1 < ring.bits(),
                  "frac_bits out of range");
  const std::size_t l = ring.bits();
  const std::size_t n = y0.size();
  const gc::Circuit c = sigmoid_circuit(l);
  const auto out_bits = gc.run(ch, c, n, to_input_bits(y0, l), prg);
  std::vector<u64> z0(n);
  for (std::size_t k = 0; k < n; ++k)
    z0[k] = from_output_bits(out_bits.data() + k * l, l);
  return z0;
}

void sigmoid_client(Channel& ch, gc::GcGarbler& gc, const ss::Ring& ring,
                    std::size_t frac_bits, std::span<const u64> y1,
                    std::span<const u64> z1, Prg& prg) {
  ABNN2_CHECK_ARG(y1.size() == z1.size(), "share size mismatch");
  ABNN2_CHECK_ARG(frac_bits >= 1 && frac_bits + 1 < ring.bits(),
                  "frac_bits out of range");
  const std::size_t l = ring.bits();
  const std::size_t n = y1.size();
  const gc::Circuit c = sigmoid_circuit(l);
  const u64 half = u64{1} << (frac_bits - 1);
  const u64 one = u64{1} << frac_bits;
  std::vector<u8> bits(n * 4 * l);
  for (std::size_t k = 0; k < n; ++k) {
    u8* dst = bits.data() + k * 4 * l;
    for (std::size_t i = 0; i < l; ++i) {
      dst[i] = static_cast<u8>((y1[k] >> i) & 1);
      dst[l + i] = static_cast<u8>((z1[k] >> i) & 1);
      dst[2 * l + i] = static_cast<u8>((half >> i) & 1);
      dst[3 * l + i] = static_cast<u8>((one >> i) & 1);
    }
  }
  gc.run(ch, c, n, bits, prg);
}

std::vector<u64> ReluServer::run(Channel& ch, std::span<const u64> y0,
                                 Prg& prg) {
  const std::size_t l = ring_.bits();
  const std::size_t n = y0.size();
  ABNN2_CHECK_ARG(n > 0, "empty activation");

  if (mode_ == ReluMode::kGeneric) {
    const gc::Circuit c = relu_generic_circuit(l);
    const auto out_bits = gc_.run(ch, c, n, to_input_bits(y0, l), prg);
    std::vector<u64> z0(n);
    for (std::size_t k = 0; k < n; ++k)
      z0[k] = from_output_bits(out_bits.data() + k * l, l);
    return z0;
  }

  // Optimized protocol. Phase 1: sign test.
  const gc::Circuit sc = sign_circuit(l);
  const auto pos_bits = gc_.run(ch, sc, n, to_input_bits(y0, l), prg);
  // Tell the client which neurons are positive.
  std::vector<u64> as_vals(n);
  for (std::size_t k = 0; k < n; ++k) as_vals[k] = pos_bits[k] & 1;
  ch.send_msg(pack_bits(as_vals, 1));

  std::vector<std::size_t> positives;
  for (std::size_t k = 0; k < n; ++k)
    if (pos_bits[k] & 1) positives.push_back(k);

  std::vector<u64> z0(n, 0);
  // Phase 2a: GC reshare for positive neurons.
  if (!positives.empty()) {
    const gc::Circuit rc = reshare_circuit(l);
    std::vector<u64> y0_pos(positives.size());
    for (std::size_t p = 0; p < positives.size(); ++p)
      y0_pos[p] = y0[positives[p]];
    const auto out_bits =
        gc_.run(ch, rc, positives.size(), to_input_bits(y0_pos, l), prg);
    for (std::size_t p = 0; p < positives.size(); ++p)
      z0[positives[p]] = from_output_bits(out_bits.data() + p * l, l);
  }
  // Phase 2b: direct -z1 shares for negative neurons.
  if (positives.size() < n) {
    const std::size_t neg = n - positives.size();
    const std::vector<u8> blob = ch.recv_msg(bytes_for_bits(neg * l));
    const std::vector<u64> negz1 = unpack_bits(blob, l, neg);
    std::size_t p = 0;
    for (std::size_t k = 0; k < n; ++k)
      if (!(pos_bits[k] & 1)) z0[k] = ring_.reduce(negz1[p++]);
  }
  return z0;
}

void ReluClient::run(Channel& ch, std::span<const u64> y1,
                     std::span<const u64> z1, Prg& prg) {
  ABNN2_CHECK_ARG(y1.size() == z1.size(), "share size mismatch");
  const std::size_t l = ring_.bits();
  const std::size_t n = y1.size();
  ABNN2_CHECK_ARG(n > 0, "empty activation");

  if (mode_ == ReluMode::kGeneric) {
    const gc::Circuit c = relu_generic_circuit(l);
    // Garbler inputs per instance: y1 bits then z1 bits.
    std::vector<u8> bits(n * 2 * l);
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < l; ++i) {
        bits[k * 2 * l + i] = static_cast<u8>((y1[k] >> i) & 1);
        bits[k * 2 * l + l + i] = static_cast<u8>((z1[k] >> i) & 1);
      }
    }
    gc_.run(ch, c, n, bits, prg);
    return;
  }

  // Optimized protocol. Phase 1: sign test (garbler inputs: y1 only).
  const gc::Circuit sc = sign_circuit(l);
  gc_.run(ch, sc, n, to_input_bits(y1, l), prg);
  const std::vector<u8> mask_blob = ch.recv_msg(bytes_for_bits(n));
  const std::vector<u64> pos_mask = unpack_bits(mask_blob, 1, n);

  std::vector<std::size_t> positives, negatives;
  for (std::size_t k = 0; k < n; ++k)
    (pos_mask[k] ? positives : negatives).push_back(k);

  if (!positives.empty()) {
    const gc::Circuit rc = reshare_circuit(l);
    std::vector<u8> bits(positives.size() * 2 * l);
    for (std::size_t p = 0; p < positives.size(); ++p) {
      const std::size_t k = positives[p];
      for (std::size_t i = 0; i < l; ++i) {
        bits[p * 2 * l + i] = static_cast<u8>((y1[k] >> i) & 1);
        bits[p * 2 * l + l + i] = static_cast<u8>((z1[k] >> i) & 1);
      }
    }
    gc_.run(ch, rc, positives.size(), bits, prg);
  }
  if (!negatives.empty()) {
    std::vector<u64> negz1(negatives.size());
    for (std::size_t p = 0; p < negatives.size(); ++p)
      negz1[p] = ring_.neg(z1[negatives[p]]);
    ch.send_msg(pack_bits(negz1, l));
  }
}

}  // namespace abnn2::core
