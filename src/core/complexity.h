// Analytic OT-invocation and communication formulas of Table 1, used by
// bench/table1_complexity to print formula-vs-measured and by parameter
// selection. All sizes in bits unless stated.
#pragma once

#include <cstddef>

#include "common/defines.h"

namespace abnn2::core {

struct MatMulShape {
  std::size_t m;  // output rows (weight matrix rows)
  std::size_t n;  // inner dimension
  std::size_t o;  // batch size (columns of the activation matrix)
};

/// SecureML (Table 1, column 1): OT count uses the 128-bit RO packing over
/// the l(l+1)/2 correlated bits per product.
inline double secureml_ot_count(const MatMulShape& s, std::size_t l) {
  return static_cast<double>(l * (l + 1)) / 128.0 *
         static_cast<double>(s.m * s.n * s.o);
}

inline double secureml_comm_bits(const MatMulShape& s, std::size_t l,
                                 std::size_t kappa = kKappa) {
  return static_cast<double>(s.m) * static_cast<double>(s.n) *
         static_cast<double>(s.o) * static_cast<double>(l) *
         static_cast<double>(l + 1) *
         (1.0 + static_cast<double>(kappa) / 64.0);
}

/// ABNN2 multi-batch (Table 1, column 2): gamma*m*n OTs, each carrying N
/// messages of o*l bits plus the 2*kappa-bit code-matrix column.
inline double ours_multibatch_ot_count(const MatMulShape& s, std::size_t gamma) {
  return static_cast<double>(gamma * s.m * s.n);
}

inline double ours_multibatch_comm_bits(const MatMulShape& s, std::size_t gamma,
                                        std::size_t n_values, std::size_t l,
                                        std::size_t kappa = kKappa) {
  return static_cast<double>(gamma * s.m * s.n) *
         (static_cast<double>(s.o * l * n_values) +
          2.0 * static_cast<double>(kappa));
}

/// ABNN2 one-batch with C-OT (Table 1, column 3): N-1 messages of l bits.
inline double ours_onebatch_ot_count(const MatMulShape& s, std::size_t gamma) {
  return static_cast<double>(gamma * s.m * s.n);
}

inline double ours_onebatch_comm_bits(const MatMulShape& s, std::size_t gamma,
                                      std::size_t n_values, std::size_t l,
                                      std::size_t kappa = kKappa) {
  return static_cast<double>(gamma * s.m * s.n) *
         (static_cast<double>(l) * static_cast<double>(n_values - 1) +
          2.0 * static_cast<double>(kappa));
}

}  // namespace abnn2::core
