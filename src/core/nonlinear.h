// Secure non-linear activation layer (paper section 4.2).
//
// Inputs are additive shares y = y0 + y1 (mod 2^l): the server S holds y0,
// the client C holds y1. C also supplies z1 — the random values it chose in
// the offline phase as its shares of this layer's OUTPUT (they double as the
// R matrix of the next layer's triplets). After the protocol S holds z0 with
//
//     z0 + z1 = ReLU(y0 + y1)   (mod 2^l).
//
// Two implementations:
//  - kGeneric (Algorithm 2): one garbled circuit computes
//    ReLU((y0+y1) mod 2^l) - z1; because the adder works mod 2^l natively,
//    "there will be no extra cost required to complete the non-XOR gates
//    corresponding to the modulo operation".
//  - kOptimized (the paper's ReLU protocol): phase 1 garbles only the sign
//    test; S learns which neurons are positive and tells C. Phase 2 runs the
//    reconstruct-and-reshare circuit only for positive neurons; for negative
//    neurons C sends z0 = -z1 directly, avoiding their GC cost entirely.
//    (This trades the sign of each pre-activation to both parties for
//    bandwidth, exactly as in the paper.)
//
// Roles match Algorithm 2: C garbles, S evaluates and gets the output.
#pragma once

#include <map>
#include <span>

#include "gc/protocol.h"
#include "ss/additive.h"

namespace abnn2::core {

enum class ReluMode { kGeneric, kOptimized };

class ReluServer {
 public:
  ReluServer(ss::Ring ring, ReluMode mode) : ring_(ring), mode_(mode) {}

  /// Returns z0, one element per entry of y0.
  std::vector<u64> run(Channel& ch, std::span<const u64> y0, Prg& prg);

  ReluMode mode() const { return mode_; }

 private:
  ss::Ring ring_;
  ReluMode mode_;
  gc::GcEvaluator gc_;
};

class ReluClient {
 public:
  ReluClient(ss::Ring ring, ReluMode mode) : ring_(ring), mode_(mode) {}

  /// `z1` must have the same length as `y1` and is the client's output
  /// share (chosen by the caller, typically in the offline phase).
  void run(Channel& ch, std::span<const u64> y1, std::span<const u64> z1,
           Prg& prg);

 private:
  ss::Ring ring_;
  ReluMode mode_;
  gc::GcGarbler gc_;
};

/// Circuit factories (exposed for tests and gate-count benches).
gc::Circuit relu_generic_circuit(std::size_t l);
gc::Circuit sign_circuit(std::size_t l);
gc::Circuit reshare_circuit(std::size_t l);
gc::Circuit sigmoid_circuit(std::size_t l);

/// Algorithm 2 instantiated with SecureML's MPC-friendly piecewise-linear
/// sigmoid (extension, showing the generic non-linear layer of section 4.2
/// with an f other than ReLU):
///
///   f(y) = 0          if y < -1/2
///        = y + 1/2    if -1/2 <= y < 1/2
///        = 1          if y >= 1/2
///
/// in fixed point with `frac_bits` fractional bits ("1/2" = 2^(frac-1)).
/// Server holds y0 and receives z0 = f(y) - z1; client holds y1 and supplies
/// z1. Same roles as ReLU: client garbles, server evaluates.
std::vector<u64> sigmoid_server(Channel& ch, gc::GcEvaluator& gc,
                                const ss::Ring& ring, std::size_t frac_bits,
                                std::span<const u64> y0, Prg& prg);
void sigmoid_client(Channel& ch, gc::GcGarbler& gc, const ss::Ring& ring,
                    std::size_t frac_bits, std::span<const u64> y1,
                    std::span<const u64> z1, Prg& prg);

/// Plaintext reference of the piecewise sigmoid.
u64 sigmoid_plain(const ss::Ring& ring, std::size_t frac_bits, u64 y);

}  // namespace abnn2::core
