// Random-oracle tag seeds shared by BOTH parties of a protocol instance.
//
// Each OT extension / GC engine namespaces its random-oracle queries with a
// 64-bit tag; the two endpoints of one protocol must construct their sender
// and receiver (garbler and evaluator) halves with the SAME tag or every
// derived pad disagrees and the transcript decodes to garbage. These
// constants are the single source of truth for the engine-level protocol
// instances — the server and client Session structs both reference them
// instead of repeating magic literals on each side.
#pragma once

#include "common/defines.h"

namespace abnn2::core {

/// IKNP extension driving the SecureML / QUOTIENT baseline backends
/// (InferenceServer::Session::iknp and InferenceClient::Session::iknp).
inline constexpr u64 kIknpBaselineTag = 0x5EC0'0001;

/// Garbled circuit computing the final secure-argmax reveal
/// (InferenceServer::Session::argmax_gc / InferenceClient counterpart).
inline constexpr u64 kArgmaxGcTag = 0xA43A'0001;

}  // namespace abnn2::core
