#include "core/maxpool.h"

namespace abnn2::core {

gc::Circuit relu_maxpool_circuit(std::size_t l, std::size_t k) {
  ABNN2_CHECK_ARG(k >= 1, "empty pool window");
  gc::Builder b;
  std::vector<std::vector<u32>> y1(k);
  for (auto& w : y1) w = b.garbler_inputs(l);
  const auto z1 = b.garbler_inputs(l);
  std::vector<std::vector<u32>> y0(k);
  for (auto& w : y0) w = b.evaluator_inputs(l);

  // Reconstruct elements; bias MSBs so unsigned compare == signed compare.
  std::vector<std::vector<u32>> val(k);
  for (std::size_t e = 0; e < k; ++e) {
    val[e] = b.add_mod(y0[e], y1[e]);
    val[e][l - 1] = b.NOT(val[e][l - 1]);
  }
  std::vector<u32> best = val[0];
  for (std::size_t e = 1; e < k; ++e) {
    const u32 gt = b.less_than(best, val[e]);
    best = b.mux(gt, val[e], best);
  }
  // Undo the bias; ReLU; re-share.
  best[l - 1] = b.NOT(best[l - 1]);
  const u32 pos = b.NOT(best[l - 1]);
  const auto relu = b.and_bit(pos, best);
  b.mark_outputs(b.sub_mod(relu, z1));
  return b.build();
}

nn::MatU64 MaxPoolServer::run(Channel& ch, const nn::PoolSpec& spec,
                              const nn::MatU64& y0, Prg& prg) {
  ABNN2_CHECK_ARG(y0.rows() == spec.in_size(), "pool input shape mismatch");
  const std::size_t l = ring_.bits();
  const std::size_t k = spec.window_elems();
  const std::size_t batch = y0.cols();
  const std::size_t n_windows = spec.out_size();
  const std::size_t n_inst = n_windows * batch;
  const gc::Circuit c = relu_maxpool_circuit(l, k);

  std::vector<u8> bits(n_inst * k * l);
  std::size_t inst = 0;
  for (std::size_t widx = 0; widx < n_windows; ++widx) {
    const auto rows = nn::pool_window_rows(spec, widx);
    for (std::size_t b = 0; b < batch; ++b, ++inst) {
      u8* dst = bits.data() + inst * k * l;
      for (std::size_t e = 0; e < k; ++e)
        for (std::size_t i = 0; i < l; ++i)
          dst[e * l + i] = static_cast<u8>((y0.at(rows[e], b) >> i) & 1);
    }
  }
  const auto out_bits = gc_.run(ch, c, n_inst, bits, prg);

  nn::MatU64 z0(n_windows, batch);
  inst = 0;
  for (std::size_t widx = 0; widx < n_windows; ++widx)
    for (std::size_t b = 0; b < batch; ++b, ++inst) {
      u64 v = 0;
      for (std::size_t i = 0; i < l; ++i)
        if (out_bits[inst * l + i]) v |= u64{1} << i;
      z0.at(widx, b) = v;
    }
  return z0;
}

void MaxPoolClient::run(Channel& ch, const nn::PoolSpec& spec,
                        const nn::MatU64& y1, const nn::MatU64& z1, Prg& prg) {
  ABNN2_CHECK_ARG(y1.rows() == spec.in_size(), "pool input shape mismatch");
  ABNN2_CHECK_ARG(z1.rows() == spec.out_size() && z1.cols() == y1.cols(),
                  "pool output share shape mismatch");
  const std::size_t l = ring_.bits();
  const std::size_t k = spec.window_elems();
  const std::size_t batch = y1.cols();
  const std::size_t n_windows = spec.out_size();
  const std::size_t n_inst = n_windows * batch;
  const gc::Circuit c = relu_maxpool_circuit(l, k);

  std::vector<u8> bits(n_inst * (k + 1) * l);
  std::size_t inst = 0;
  for (std::size_t widx = 0; widx < n_windows; ++widx) {
    const auto rows = nn::pool_window_rows(spec, widx);
    for (std::size_t b = 0; b < batch; ++b, ++inst) {
      u8* dst = bits.data() + inst * (k + 1) * l;
      for (std::size_t e = 0; e < k; ++e)
        for (std::size_t i = 0; i < l; ++i)
          dst[e * l + i] = static_cast<u8>((y1.at(rows[e], b) >> i) & 1);
      for (std::size_t i = 0; i < l; ++i)
        dst[k * l + i] = static_cast<u8>((z1.at(widx, b) >> i) & 1);
    }
  }
  gc_.run(ch, c, n_inst, bits, prg);
}

}  // namespace abnn2::core
