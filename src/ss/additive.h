// Additive arithmetic secret sharing over Z_{2^l} (paper section 2.3).
//
// A value x is split as x = <x>_0 + <x>_1 (mod 2^l). The ring width l is a
// runtime parameter in [1, 64]; elements are stored in u64 masked to l bits.
#pragma once

#include <vector>

#include "common/defines.h"
#include "crypto/prg.h"

namespace abnn2::ss {

/// The ring Z_{2^l}. A small value type passed around by the protocols.
class Ring {
 public:
  explicit Ring(std::size_t l) : l_(l), mask_(mask_l(l)) {
    ABNN2_CHECK_ARG(l >= 1 && l <= 64, "ring width must be in [1,64]");
  }

  std::size_t bits() const { return l_; }
  u64 mask() const { return mask_; }

  u64 reduce(u64 x) const { return x & mask_; }
  u64 add(u64 a, u64 b) const { return (a + b) & mask_; }
  u64 sub(u64 a, u64 b) const { return (a - b) & mask_; }
  u64 mul(u64 a, u64 b) const { return (a * b) & mask_; }
  u64 neg(u64 a) const { return (0 - a) & mask_; }

  /// Two's-complement interpretation of an l-bit value.
  i64 to_signed(u64 x) const {
    x &= mask_;
    if (l_ == 64) return static_cast<i64>(x);
    const u64 sign = u64{1} << (l_ - 1);
    return (x & sign) ? static_cast<i64>(x) - static_cast<i64>(u64{1} << l_)
                      : static_cast<i64>(x);
  }
  /// Encode a signed integer into the ring.
  u64 from_signed(i64 x) const { return static_cast<u64>(x) & mask_; }

  /// MSB = sign bit of the two's-complement interpretation.
  bool msb(u64 x) const { return (x >> (l_ - 1)) & 1; }

  u64 random(Prg& prg) const { return prg.next_u64() & mask_; }

  friend bool operator==(const Ring&, const Ring&) = default;

 private:
  std::size_t l_;
  u64 mask_;
};

/// A pair of shares of one value.
struct SharePair {
  u64 s0 = 0;
  u64 s1 = 0;
};

/// Share(x): <x>_1 = r, <x>_0 = x - r (matches the paper's client-side
/// sharing where the random share stays with the sharer).
inline SharePair share(const Ring& ring, u64 x, Prg& prg) {
  const u64 r = ring.random(prg);
  return {ring.sub(x, r), r};
}

/// Reconst(<x>_0, <x>_1).
inline u64 reconst(const Ring& ring, u64 s0, u64 s1) { return ring.add(s0, s1); }

/// Element-wise sharing of a vector.
inline std::pair<std::vector<u64>, std::vector<u64>> share_vec(
    const Ring& ring, const std::vector<u64>& xs, Prg& prg) {
  std::vector<u64> s0(xs.size()), s1(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto p = share(ring, xs[i], prg);
    s0[i] = p.s0;
    s1[i] = p.s1;
  }
  return {std::move(s0), std::move(s1)};
}

inline std::vector<u64> reconst_vec(const Ring& ring, const std::vector<u64>& a,
                                    const std::vector<u64>& b) {
  ABNN2_CHECK_ARG(a.size() == b.size(), "share vector size mismatch");
  std::vector<u64> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = ring.add(a[i], b[i]);
  return out;
}

}  // namespace abnn2::ss
