#include "ec/fe25519.h"

namespace abnn2::ec {
namespace {

constexpr u64 kMask51 = (u64{1} << 51) - 1;

// Carry-propagate so every limb ends < 2^52 (not fully canonical).
Fe carry(Fe f) {
  u64* v = f.v.data();
  u64 c;
  c = v[0] >> 51; v[0] &= kMask51; v[1] += c;
  c = v[1] >> 51; v[1] &= kMask51; v[2] += c;
  c = v[2] >> 51; v[2] &= kMask51; v[3] += c;
  c = v[3] >> 51; v[3] &= kMask51; v[4] += c;
  c = v[4] >> 51; v[4] &= kMask51; v[0] += 19 * c;
  c = v[0] >> 51; v[0] &= kMask51; v[1] += c;
  return f;
}

}  // namespace

Fe operator+(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return carry(r);
}

Fe operator-(const Fe& a, const Fe& b) {
  // Add 8p so limbs stay non-negative: 8p = (2^54-152, 2^54-8, ...).
  constexpr u64 k0 = (u64{1} << 54) - 152;
  constexpr u64 ki = (u64{1} << 54) - 8;
  Fe r;
  r.v[0] = a.v[0] + k0 - b.v[0];
  for (int i = 1; i < 5; ++i) r.v[i] = a.v[i] + ki - b.v[i];
  return carry(r);
}

Fe operator*(const Fe& a, const Fe& b) {
  const u64 a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const u64 b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  const u64 b1_19 = 19 * b1, b2_19 = 19 * b2, b3_19 = 19 * b3, b4_19 = 19 * b4;

  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 +
            (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 +
            (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 +
            (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 +
            (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 +
            (u128)a4 * b0;

  Fe r;
  u64 c;
  r.v[0] = (u64)t0 & kMask51; c = (u64)(t0 >> 51);
  t1 += c;
  r.v[1] = (u64)t1 & kMask51; c = (u64)(t1 >> 51);
  t2 += c;
  r.v[2] = (u64)t2 & kMask51; c = (u64)(t2 >> 51);
  t3 += c;
  r.v[3] = (u64)t3 & kMask51; c = (u64)(t3 >> 51);
  t4 += c;
  r.v[4] = (u64)t4 & kMask51; c = (u64)(t4 >> 51);
  r.v[0] += 19 * c;
  c = r.v[0] >> 51; r.v[0] &= kMask51; r.v[1] += c;
  return r;
}

Fe Fe::square() const { return *this * *this; }

Fe Fe::from_bytes(const u8 b[32]) {
  u64 w[4];
  std::memcpy(w, b, 32);
  Fe r;
  r.v[0] = w[0] & kMask51;
  r.v[1] = ((w[0] >> 51) | (w[1] << 13)) & kMask51;
  r.v[2] = ((w[1] >> 38) | (w[2] << 26)) & kMask51;
  r.v[3] = ((w[2] >> 25) | (w[3] << 39)) & kMask51;
  r.v[4] = (w[3] >> 12) & kMask51;  // drops bit 255
  return carry(r);
}

void Fe::to_bytes(u8 b[32]) const {
  Fe f = carry(*this);
  // Freeze: add 19, propagate, then subtract 2^255 by masking.
  u64 t[5];
  for (int i = 0; i < 5; ++i) t[i] = f.v[i];
  // Conditionally reduce twice to get canonical value.
  for (int pass = 0; pass < 2; ++pass) {
    u64 q = (t[0] + 19) >> 51;
    q = (t[1] + q) >> 51;
    q = (t[2] + q) >> 51;
    q = (t[3] + q) >> 51;
    q = (t[4] + q) >> 51;  // q = 1 iff value >= p
    t[0] += 19 * q;
    u64 c;
    c = t[0] >> 51; t[0] &= kMask51; t[1] += c;
    c = t[1] >> 51; t[1] &= kMask51; t[2] += c;
    c = t[2] >> 51; t[2] &= kMask51; t[3] += c;
    c = t[3] >> 51; t[3] &= kMask51; t[4] += c;
    t[4] &= kMask51;
  }
  u64 w[4];
  w[0] = t[0] | (t[1] << 51);
  w[1] = (t[1] >> 13) | (t[2] << 38);
  w[2] = (t[2] >> 26) | (t[3] << 25);
  w[3] = (t[3] >> 39) | (t[4] << 12);
  std::memcpy(b, w, 32);
}

bool Fe::is_zero() const {
  u8 b[32];
  to_bytes(b);
  u8 acc = 0;
  for (u8 x : b) acc |= x;
  return acc == 0;
}

bool Fe::is_negative() const {
  u8 b[32];
  to_bytes(b);
  return b[0] & 1;
}

namespace {

// Generic square-and-multiply for fixed 255-bit exponents given as bytes
// (little-endian). Exponents here are public constants, so variable time is
// fine.
Fe pow_le(const Fe& x, const u8 exp[32]) {
  Fe r = Fe::one();
  for (int i = 255; i >= 0; --i) {
    r = r.square();
    if ((exp[i >> 3] >> (i & 7)) & 1) r = r * x;
  }
  return r;
}

}  // namespace

Fe Fe::invert() const {
  // p - 2 = 2^255 - 21, little-endian bytes.
  u8 e[32];
  std::memset(e, 0xff, 32);
  e[0] = 0xeb;  // 0xff - 20 = 0xeb
  e[31] = 0x7f;
  return pow_le(*this, e);
}

Fe Fe::pow_p58() const {
  // (p - 5) / 8 = 2^252 - 3, little-endian bytes.
  u8 e[32];
  std::memset(e, 0xff, 32);
  e[0] = 0xfd;
  e[31] = 0x0f;
  return pow_le(*this, e);
}

const Fe& fe_sqrtm1() {
  // 2^((p-1)/4): computed once.
  static const Fe k = [] {
    Fe two{{2, 0, 0, 0, 0}};
    // (p - 1) / 4 = (2^255 - 20) / 4 = 2^253 - 5
    u8 e[32];
    std::memset(e, 0xff, 32);
    e[0] = 0xfb;
    e[31] = 0x1f;
    return pow_le(two, e);
  }();
  return k;
}

const Fe& fe_d() {
  static const Fe k = [] {
    Fe num{{121665, 0, 0, 0, 0}};
    Fe den{{121666, 0, 0, 0, 0}};
    return num.neg() * den.invert();
  }();
  return k;
}

}  // namespace abnn2::ec
