// Field arithmetic modulo p = 2^255 - 19 with radix-2^51 limbs
// (curve25519-donna style). Substrate for the Ed25519 group used by the
// Chou-Orlandi base OT.
#pragma once

#include <array>

#include "common/defines.h"

namespace abnn2::ec {

/// Field element; limbs hold <= 52 significant bits between reductions.
struct Fe {
  std::array<u64, 5> v{0, 0, 0, 0, 0};

  static Fe zero() { return Fe{}; }
  static Fe one() { return Fe{{1, 0, 0, 0, 0}}; }

  /// Little-endian 32-byte decoding (top bit ignored, then reduced mod p).
  static Fe from_bytes(const u8 b[32]);
  /// Canonical little-endian encoding (fully reduced).
  void to_bytes(u8 b[32]) const;

  friend Fe operator+(const Fe& a, const Fe& b);
  friend Fe operator-(const Fe& a, const Fe& b);
  friend Fe operator*(const Fe& a, const Fe& b);
  Fe square() const;
  Fe neg() const { return zero() - *this; }

  /// Multiplicative inverse (x^(p-2)); inverse of 0 is 0.
  Fe invert() const;
  /// x^((p-3)/8), the core of the square-root computation.
  Fe pow_p58() const;

  bool is_zero() const;
  /// Parity of the canonical representative (the "sign" bit of Ed25519).
  bool is_negative() const;

  friend bool operator==(const Fe& a, const Fe& b) {
    u8 x[32], y[32];
    a.to_bytes(x);
    b.to_bytes(y);
    return std::memcmp(x, y, 32) == 0;
  }
};

/// sqrt(-1) mod p.
const Fe& fe_sqrtm1();
/// Edwards curve constant d = -121665/121666 mod p.
const Fe& fe_d();

}  // namespace abnn2::ec
