#include "ec/ed25519.h"

namespace abnn2::ec {

const Point& Point::identity() {
  static const Point kId{Fe::zero(), Fe::one(), Fe::one(), Fe::zero()};
  return kId;
}

const Point& Point::base() {
  static const Point kBase = [] {
    // y = 4/5, x recovered with even parity (standard basepoint).
    Fe four{{4, 0, 0, 0, 0}}, five{{5, 0, 0, 0, 0}};
    Fe y = four * five.invert();
    std::array<u8, 32> enc;
    y.to_bytes(enc.data());  // sign bit 0 => even x
    auto p = Point::decode(enc);
    ABNN2_CHECK(p.has_value(), "basepoint decode failed");
    return *p;
  }();
  return kBase;
}

Point Point::add(const Point& q) const {
  // RFC 8032 section 5.1.4 (extended coordinates, a = -1).
  const Fe a = (y - x) * (q.y - q.x);
  const Fe b = (y + x) * (q.y + q.x);
  const Fe c = (t * q.t) * (fe_d() + fe_d());
  const Fe d2 = (z * q.z) + (z * q.z);
  const Fe e = b - a;
  const Fe f = d2 - c;
  const Fe g = d2 + c;
  const Fe h = b + a;
  return Point{e * f, g * h, f * g, e * h};
}

Point Point::dbl() const {
  const Fe a = x.square();
  const Fe b = y.square();
  const Fe c2 = z.square() + z.square();
  const Fe h = a + b;
  const Fe e = h - (x + y).square();
  const Fe g = a - b;
  const Fe f = c2 + g;
  return Point{e * f, g * h, f * g, e * h};
}

Point Point::mul(const Scalar& k) const {
  Point r = identity();
  for (int i = 255; i >= 0; --i) {
    r = r.dbl();
    if ((k[static_cast<std::size_t>(i >> 3)] >> (i & 7)) & 1) r = r.add(*this);
  }
  return r;
}

std::array<u8, 32> Point::encode() const {
  const Fe zi = z.invert();
  const Fe ax = x * zi;
  const Fe ay = y * zi;
  std::array<u8, 32> out;
  ay.to_bytes(out.data());
  if (ax.is_negative()) out[31] |= 0x80;
  return out;
}

std::optional<Point> Point::decode(const std::array<u8, 32>& b) {
  const bool sign = (b[31] & 0x80) != 0;
  const Fe y = Fe::from_bytes(b.data());  // drops the sign bit
  // x^2 = (y^2 - 1) / (d y^2 + 1)
  const Fe y2 = y.square();
  const Fe u = y2 - Fe::one();
  const Fe v = fe_d() * y2 + Fe::one();
  // x = u v^3 (u v^7)^((p-5)/8)
  const Fe v3 = v.square() * v;
  const Fe v7 = v3.square() * v;
  Fe x = u * v3 * (u * v7).pow_p58();
  const Fe vx2 = v * x.square();
  if (!(vx2 == u)) {
    if (vx2 == u.neg()) {
      x = x * fe_sqrtm1();
    } else {
      return std::nullopt;  // not a curve point
    }
  }
  if (x.is_zero() && sign) return std::nullopt;  // -0 is invalid
  if (x.is_negative() != sign) x = x.neg();
  return Point{x, y, Fe::one(), x * y};
}

bool Point::equals(const Point& q) const {
  // (x1/z1 == x2/z2) && (y1/z1 == y2/z2) without inversions.
  return (x * q.z == q.x * z) && (y * q.z == q.y * z);
}

const Scalar& group_order() {
  static const Scalar kL = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58,
                            0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
                            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10};
  return kL;
}

}  // namespace abnn2::ec
