// Ed25519 group operations (twisted Edwards curve -x^2 + y^2 = 1 + d x^2 y^2
// over GF(2^255 - 19)), extended coordinates. Provides exactly what the
// Chou-Orlandi base OT needs: point addition/negation, scalar multiplication,
// and 32-byte compressed encode/decode.
#pragma once

#include <array>
#include <optional>

#include "common/defines.h"
#include "ec/fe25519.h"

namespace abnn2::ec {

/// 256-bit scalar, little-endian bytes. Any integer value is accepted; the
/// group has prime order l (times cofactor 8), so arithmetic is consistent
/// for the OT's purposes.
using Scalar = std::array<u8, 32>;

struct Point {
  Fe x, y, z, t;  // extended coordinates, t = x*y/z

  static const Point& identity();
  static const Point& base();

  Point add(const Point& q) const;
  Point dbl() const;
  Point neg() const { return Point{x.neg(), y, z, t.neg()}; }
  Point sub(const Point& q) const { return add(q.neg()); }

  /// Variable-time double-and-add. Scalars in this library are either public
  /// or used once per base-OT instance; see DESIGN.md security notes.
  Point mul(const Scalar& k) const;

  std::array<u8, 32> encode() const;
  /// Decompress; returns nullopt for encodings that are not on the curve.
  static std::optional<Point> decode(const std::array<u8, 32>& b);

  /// True group-element equality (projective-invariant).
  bool equals(const Point& q) const;
  bool is_identity() const { return equals(identity()); }
};

/// The group order l = 2^252 + 27742317777372353535851937790883648493.
const Scalar& group_order();

}  // namespace abnn2::ec
