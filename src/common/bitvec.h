// Dynamic bit vector backed by 64-bit words. Used for OT choice vectors,
// codeword rows and GC input encodings.
#pragma once

#include <vector>

#include "common/defines.h"

namespace abnn2 {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits) : nbits_(nbits), words_(ceil_div(nbits, 64), 0) {}

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool get(std::size_t i) const {
    ABNN2_CHECK_ARG(i < nbits_, "bit index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void set(std::size_t i, bool v) {
    ABNN2_CHECK_ARG(i < nbits_, "bit index out of range");
    const u64 m = u64{1} << (i & 63);
    if (v) words_[i >> 6] |= m; else words_[i >> 6] &= ~m;
  }
  bool operator[](std::size_t i) const { return get(i); }

  void resize(std::size_t nbits) {
    nbits_ = nbits;
    words_.resize(ceil_div(nbits, 64), 0);
    clear_tail();
  }

  BitVec& operator^=(const BitVec& o) {
    ABNN2_CHECK_ARG(nbits_ == o.nbits_, "size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
    return *this;
  }
  BitVec& operator&=(const BitVec& o) {
    ABNN2_CHECK_ARG(nbits_ == o.nbits_, "size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }
  friend BitVec operator^(BitVec a, const BitVec& b) { a ^= b; return a; }
  friend BitVec operator&(BitVec a, const BitVec& b) { a &= b; return a; }
  friend bool operator==(const BitVec& a, const BitVec& b) = default;

  std::size_t popcount() const {
    std::size_t c = 0;
    for (u64 w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  const u64* words() const { return words_.data(); }
  u64* words() { return words_.data(); }
  std::size_t num_words() const { return words_.size(); }
  std::size_t num_bytes() const { return bytes_for_bits(nbits_); }

  void from_bytes(const u8* p, std::size_t nbits) {
    resize(nbits);
    std::memcpy(words_.data(), p, num_bytes());
    clear_tail();
  }
  void to_bytes(u8* p) const { std::memcpy(p, words_.data(), num_bytes()); }

 private:
  // Keep bits past nbits_ zero so popcount/equality stay well-defined.
  void clear_tail() {
    if (nbits_ % 64 != 0 && !words_.empty())
      words_.back() &= mask_l(nbits_ % 64);
  }

  std::size_t nbits_ = 0;
  std::vector<u64> words_;
};

}  // namespace abnn2
