// Packed bit matrix with a fast transpose, the workhorse of IKNP/KK13 OT
// extension (column-major PRG expansion -> row-major hashing).
#pragma once

#include <vector>

#include "common/bitvec.h"
#include "common/defines.h"
#include "simd/kernels.h"

namespace abnn2 {

/// Row-major packed bit matrix. Each row occupies row_bytes() bytes
/// (bit j of row i = byte j/8, bit j%8, LSB-first).
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), stride_(bytes_for_bits(cols)),
        data_(rows * stride_, 0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t row_bytes() const { return stride_; }

  u8* row(std::size_t i) { return data_.data() + i * stride_; }
  const u8* row(std::size_t i) const { return data_.data() + i * stride_; }

  bool get(std::size_t i, std::size_t j) const {
    return (row(i)[j >> 3] >> (j & 7)) & 1;
  }
  void set(std::size_t i, std::size_t j, bool v) {
    const u8 m = static_cast<u8>(1u << (j & 7));
    if (v) row(i)[j >> 3] |= m; else row(i)[j >> 3] &= static_cast<u8>(~m);
  }

  void xor_row(std::size_t i, const u8* src) {
    simd::active_kernels().xor_bytes(row(i), src, stride_);
  }

  u8* data() { return data_.data(); }
  const u8* data() const { return data_.data(); }
  std::size_t size_bytes() const { return data_.size(); }

  friend bool operator==(const BitMatrix& a, const BitMatrix& b) = default;

  /// Returns the cols() x rows() transpose.
  BitMatrix transpose() const;

 private:
  std::size_t rows_ = 0, cols_ = 0, stride_ = 0;
  std::vector<u8> data_;
};

}  // namespace abnn2
