#include "common/crc32c.h"

#include <array>

#ifdef __SSE4_2__
#include <nmmintrin.h>
#endif

namespace abnn2 {
namespace {

constexpr u32 kPoly = 0x82F63B78;  // reflected Castagnoli

constexpr std::array<u32, 256> make_table() {
  std::array<u32, 256> t{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
    t[i] = c;
  }
  return t;
}

constexpr auto kTable = make_table();

}  // namespace

u32 crc32c(const void* data, std::size_t n, u32 seed) {
  const u8* p = static_cast<const u8*>(data);
  u32 crc = ~seed;
#ifdef __SSE4_2__
  while (n >= 8) {
    u64 w;
    std::memcpy(&w, p, 8);
    crc = static_cast<u32>(_mm_crc32_u64(crc, w));
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
#else
  while (n > 0) {
    crc = kTable[(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
#endif
  return ~crc;
}

}  // namespace abnn2
