// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) used by
// the framed transport layer for per-message integrity checks. Detects all
// single-bit errors and all burst errors up to 32 bits, which is exactly the
// corruption class a desynchronized or bit-flipped TCP stream produces.
//
// Uses the SSE4.2 crc32 instruction when the build target has it
// (-march=native) and a slice-by-1 table otherwise.
#pragma once

#include <cstddef>

#include "common/defines.h"

namespace abnn2 {

/// CRC32C of `n` bytes. Chainable: pass the previous result as `seed` to
/// checksum a logically contiguous buffer in pieces.
u32 crc32c(const void* data, std::size_t n, u32 seed = 0);

}  // namespace abnn2
