#include "common/bitmatrix.h"

#include "runtime/thread_pool.h"
#include "simd/kernels.h"

namespace abnn2 {

BitMatrix BitMatrix::transpose() const {
  BitMatrix out(cols_, rows_);
  // The kernel handles any 8-row-aligned region: input rows [i0, i0+g) only
  // write output byte columns [i0/8, (i0+g)/8), so 8-row-aligned slices have
  // disjoint writes and the loop parallelizes. Small matrices stay serial:
  // the fork/join overhead would dominate.
  const std::size_t full_rows = rows_ & ~std::size_t{7};
  const auto& kt = simd::active_kernels();
  if (full_rows > 0) {
    const std::size_t n_groups = full_rows / 8;
    if (rows_ * cols_ >= (std::size_t{1} << 16)) {
      runtime::parallel_slices(
          n_groups, runtime::num_threads(),
          [&](std::size_t, std::size_t gb, std::size_t ge) {
            kt.transpose_bits(row(gb * 8), stride_, (ge - gb) * 8, cols_,
                              out.data() + gb, out.row_bytes());
          });
    } else {
      kt.transpose_bits(data(), stride_, full_rows, cols_, out.data(),
                        out.row_bytes());
    }
  }
  // Remaining rows (rows_ % 8) handled bitwise.
  for (std::size_t i = full_rows; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      if (get(i, j)) out.set(j, i, true);
  return out;
}

}  // namespace abnn2
