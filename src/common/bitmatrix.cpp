#include "common/bitmatrix.h"

#include "runtime/thread_pool.h"

namespace abnn2 {
namespace {

// Transpose an 8x8 bit block held in a u64 (byte i = row i, LSB-first bits).
// Hacker's Delight 7-3.
inline u64 transpose8x8(u64 x) {
  u64 t;
  t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAull;
  x = x ^ t ^ (t << 7);
  t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCull;
  x = x ^ t ^ (t << 14);
  t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ull;
  x = x ^ t ^ (t << 28);
  return x;
}

}  // namespace

BitMatrix BitMatrix::transpose() const {
  BitMatrix out(cols_, rows_);
  // Process 8x8 bit tiles: input rows i..i+7, byte column jb maps to output
  // rows 8*jb..8*jb+7, byte column i/8.
  const std::size_t full_row_tiles = rows_ / 8;
  const std::size_t byte_cols = stride_;
  // Row tile `it` only writes output byte column `it`, so tiles are
  // independent and the loop parallelizes with disjoint writes. Small
  // matrices stay serial: the fork/join overhead would dominate.
  const auto do_row_tile = [&](std::size_t it) {
    const std::size_t i0 = it * 8;
    for (std::size_t jb = 0; jb < byte_cols; ++jb) {
      u64 tile = 0;
      for (int k = 0; k < 8; ++k)
        tile |= static_cast<u64>(row(i0 + k)[jb]) << (8 * k);
      if (tile == 0) continue;
      tile = transpose8x8(tile);
      const std::size_t out_i0 = jb * 8;
      const std::size_t out_jb = it;
      const std::size_t out_rows = cols_ > out_i0 ? cols_ - out_i0 : 0;
      const int lim = static_cast<int>(out_rows < 8 ? out_rows : 8);
      for (int k = 0; k < lim; ++k) {
        const u8 b = static_cast<u8>(tile >> (8 * k));
        if (b) out.row(out_i0 + k)[out_jb] = b;
      }
    }
  };
  if (rows_ * cols_ >= (std::size_t{1} << 16)) {
    runtime::parallel_for(full_row_tiles, do_row_tile);
  } else {
    for (std::size_t it = 0; it < full_row_tiles; ++it) do_row_tile(it);
  }
  // Remaining rows (rows_ % 8) handled bitwise.
  for (std::size_t i = full_row_tiles * 8; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      if (get(i, j)) out.set(j, i, true);
  return out;
}

}  // namespace abnn2
