// Minimal byte-buffer serialization used for protocol messages.
// All integers are encoded little-endian fixed-width; containers carry a
// u64 length prefix. Reader throws ProtocolError on truncated input so that
// malformed peer messages surface as protocol failures, not UB.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/block.h"
#include "common/defines.h"

namespace abnn2 {

class Writer {
 public:
  void u8_(u8 v) { buf_.push_back(v); }
  void u32_(u32 v) { append(&v, 4); }
  void u64_(u64 v) { append(&v, 8); }
  void block(const Block& b) { append(b.w.data(), 16); }
  void bytes(const void* p, std::size_t n) { append(p, n); }
  void vec_u64(const std::vector<u64>& v) {
    u64_(v.size());
    append(v.data(), v.size() * 8);
  }
  void vec_block(const std::vector<Block>& v) {
    u64_(v.size());
    append(v.data(), v.size() * 16);
  }

  const std::vector<u8>& data() const { return buf_; }
  std::vector<u8> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void append(const void* p, std::size_t n) {
    const std::size_t old = buf_.size();
    buf_.resize(old + n);
    std::memcpy(buf_.data() + old, p, n);
  }
  std::vector<u8> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const u8> data) : data_(data) {}

  u8 u8_() { u8 v; copy(&v, 1); return v; }
  u32 u32_() { u32 v; copy(&v, 4); return v; }
  u64 u64_() { u64 v; copy(&v, 8); return v; }
  Block block() { Block b; copy(b.w.data(), 16); return b; }
  void bytes(void* p, std::size_t n) { copy(p, n); }
  // Length prefixes are validated against the remaining input BEFORE any
  // allocation, with the division form so a hostile prefix near 2^64 cannot
  // overflow the multiplication and slip past the check.
  std::vector<u64> vec_u64() {
    const u64 n = u64_();
    ABNN2_CHECK(n <= remaining() / 8, "truncated u64 vector");
    std::vector<u64> v(n);
    copy(v.data(), n * 8);
    return v;
  }
  std::vector<Block> vec_block() {
    const u64 n = u64_();
    ABNN2_CHECK(n <= remaining() / 16, "truncated block vector");
    std::vector<Block> v(n);
    copy(v.data(), n * 16);
    return v;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

 private:
  void copy(void* p, std::size_t n) {
    ABNN2_CHECK(n <= remaining(), "truncated message");
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }
  std::span<const u8> data_;
  std::size_t pos_ = 0;
};

}  // namespace abnn2
