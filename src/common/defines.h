// Common definitions shared across the ABNN2 code base.
//
// Error-handling convention: programming errors and violated protocol
// invariants throw abnn2::ProtocolError (or std::invalid_argument for bad
// user-supplied parameters). Protocols are exception-safe: a throw leaves the
// channel unusable but leaks no resources.
#pragma once

#include <cstdint>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

namespace abnn2 {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;
using u128 = unsigned __int128;

/// Computational security parameter (bits). All OT extensions and GC labels
/// use kappa-bit keys.
inline constexpr std::size_t kKappa = 128;

/// Statistical security parameter (bits).
inline constexpr std::size_t kSigma = 40;

// Error taxonomy (see DESIGN.md "Failure model & recovery"):
//
//   ProtocolError   — FATAL. A protocol invariant was violated: malformed or
//                     corrupted peer message (failed frame CRC, bad handshake
//                     magic, version/digest mismatch, oversized length
//                     prefix). Retrying on the same stream cannot help; the
//                     connection must be dropped.
//   ChannelError    — TRANSIENT. The transport itself failed (peer closed,
//                     ECONNRESET, broken pipe). The session state on the
//                     surviving side is intact; reconnecting and resuming at
//                     the last batch boundary is safe.
//   ChannelTimeout  — TRANSIENT, subclass of ChannelError. A configured
//                     deadline (connect/accept/recv) expired.

/// Thrown when a protocol invariant is violated (malformed peer message,
/// inconsistent sizes, use-after-finalize, ...). Fatal for the connection.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by channel implementations on broken/closed connections.
/// Transient: reconnect-and-resume is the expected recovery.
class ChannelError : public std::runtime_error {
 public:
  explicit ChannelError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a configured transport deadline (connect, accept, recv)
/// expires. A ChannelError, so generic transport-failure handlers catch it;
/// callers that want to distinguish "slow" from "dead" can catch it first.
class ChannelTimeout : public ChannelError {
 public:
  explicit ChannelTimeout(const std::string& what) : ChannelError(what) {}
};

#define ABNN2_CHECK(cond, msg)                          \
  do {                                                  \
    if (!(cond)) throw ::abnn2::ProtocolError(          \
        std::string(__func__) + ": " + (msg));          \
  } while (0)

#define ABNN2_CHECK_ARG(cond, msg)                      \
  do {                                                  \
    if (!(cond)) throw std::invalid_argument(           \
        std::string(__func__) + ": " + (msg));          \
  } while (0)

/// Number of bytes needed to hold `bits` bits.
constexpr std::size_t bytes_for_bits(std::size_t bits) { return (bits + 7) / 8; }

/// ceil(a / b) for positive integers.
constexpr std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Round `x` up to a multiple of `m`.
constexpr std::size_t round_up(std::size_t x, std::size_t m) { return ceil_div(x, m) * m; }

/// Mask selecting the low `l` bits of a 64-bit word (l in [0,64]).
constexpr u64 mask_l(std::size_t l) {
  return l >= 64 ? ~u64{0} : ((u64{1} << l) - 1);
}

/// Renders v as a zero-padded hex literal, e.g. 0x00c0ffee. Used by
/// diagnostics that quote wire constants (handshake magic, versions).
inline std::string hex_u32(u32 v) {
  char buf[11];
  std::snprintf(buf, sizeof buf, "0x%08x", v);
  return std::string(buf);
}

}  // namespace abnn2
