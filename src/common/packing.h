// Tight bit-packing of l-bit ring elements into byte buffers. Keeps wire
// sizes exactly at the paper's accounting (Table 1): an OT message carrying
// o elements of Z_{2^l} costs o*l bits, not o*64.
#pragma once

#include <span>
#include <vector>

#include "common/defines.h"

namespace abnn2 {

/// Packs vals[i] & mask(l) as consecutive l-bit fields, LSB-first.
inline std::vector<u8> pack_bits(std::span<const u64> vals, std::size_t l) {
  ABNN2_CHECK_ARG(l >= 1 && l <= 64, "field width out of range");
  std::vector<u8> out(bytes_for_bits(vals.size() * l), 0);
  std::size_t bitpos = 0;
  for (u64 v : vals) {
    v &= mask_l(l);
    std::size_t done = 0;
    while (done < l) {
      const std::size_t byte = (bitpos + done) >> 3;
      const std::size_t off = (bitpos + done) & 7;
      const std::size_t take = std::min<std::size_t>(8 - off, l - done);
      out[byte] |= static_cast<u8>(((v >> done) & mask_l(take)) << off);
      done += take;
    }
    bitpos += l;
  }
  return out;
}

/// Inverse of pack_bits.
inline std::vector<u64> unpack_bits(std::span<const u8> bytes, std::size_t l,
                                    std::size_t n) {
  ABNN2_CHECK_ARG(l >= 1 && l <= 64, "field width out of range");
  ABNN2_CHECK(bytes.size() >= bytes_for_bits(n * l), "packed buffer too short");
  std::vector<u64> out(n, 0);
  std::size_t bitpos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u64 v = 0;
    std::size_t done = 0;
    while (done < l) {
      const std::size_t byte = (bitpos + done) >> 3;
      const std::size_t off = (bitpos + done) & 7;
      const std::size_t take = std::min<std::size_t>(8 - off, l - done);
      v |= ((static_cast<u64>(bytes[byte]) >> off) & mask_l(take)) << done;
      done += take;
    }
    out[i] = v;
    bitpos += l;
  }
  return out;
}

/// Incremental bit-level writer for variable-width fields (used by the
/// SecureML baseline, whose COT message widths shrink with the bit index).
class BitWriter {
 public:
  void write(u64 v, std::size_t width) {
    ABNN2_CHECK_ARG(width <= 64, "field too wide");
    v &= mask_l(width);
    std::size_t done = 0;
    while (done < width) {
      const std::size_t byte = (bitpos_ + done) >> 3;
      const std::size_t off = (bitpos_ + done) & 7;
      if (byte >= buf_.size()) buf_.push_back(0);
      const std::size_t take = std::min<std::size_t>(8 - off, width - done);
      buf_[byte] |= static_cast<u8>(((v >> done) & mask_l(take)) << off);
      done += take;
    }
    bitpos_ += width;
  }

  std::vector<u8> take() { return std::move(buf_); }
  std::size_t bits() const { return bitpos_; }

 private:
  std::vector<u8> buf_;
  std::size_t bitpos_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const u8> data) : data_(data) {}

  u64 read(std::size_t width) {
    ABNN2_CHECK_ARG(width <= 64, "field too wide");
    ABNN2_CHECK(bitpos_ + width <= data_.size() * 8, "bit stream truncated");
    u64 v = 0;
    std::size_t done = 0;
    while (done < width) {
      const std::size_t byte = (bitpos_ + done) >> 3;
      const std::size_t off = (bitpos_ + done) & 7;
      const std::size_t take = std::min<std::size_t>(8 - off, width - done);
      v |= ((static_cast<u64>(data_[byte]) >> off) & mask_l(take)) << done;
      done += take;
    }
    bitpos_ += width;
    return v;
  }

 private:
  std::span<const u8> data_;
  std::size_t bitpos_ = 0;
};

}  // namespace abnn2
