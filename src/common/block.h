// 128-bit block type used for OT messages, GC wire labels and AES state.
//
// On x86-64 with SSE2 the block is backed by __m128i; a portable fallback is
// provided so the library compiles on any C++20 toolchain.
#pragma once

#include <array>
#include <cstring>
#include <string>

#include "common/defines.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#define ABNN2_HAVE_SSE2 1
#endif
#if defined(__AES__)
#include <wmmintrin.h>
#define ABNN2_HAVE_AESNI 1
#endif

namespace abnn2 {

/// A 128-bit value with cheap XOR/AND and equality. Layout is little-endian:
/// lo() is bytes 0..7, hi() is bytes 8..15.
struct Block {
  alignas(16) std::array<u64, 2> w{0, 0};

  constexpr Block() = default;
  constexpr Block(u64 hi, u64 lo) : w{lo, hi} {}

  static Block from_bytes(const u8* p) {
    Block b;
    std::memcpy(b.w.data(), p, 16);
    return b;
  }
  void to_bytes(u8* p) const { std::memcpy(p, w.data(), 16); }

  constexpr u64 lo() const { return w[0]; }
  constexpr u64 hi() const { return w[1]; }

  friend Block operator^(Block a, Block b) {
    return Block{a.w[1] ^ b.w[1], a.w[0] ^ b.w[0]};
  }
  friend Block operator&(Block a, Block b) {
    return Block{a.w[1] & b.w[1], a.w[0] & b.w[0]};
  }
  friend Block operator|(Block a, Block b) {
    return Block{a.w[1] | b.w[1], a.w[0] | b.w[0]};
  }
  Block& operator^=(Block b) { w[0] ^= b.w[0]; w[1] ^= b.w[1]; return *this; }
  Block& operator&=(Block b) { w[0] &= b.w[0]; w[1] &= b.w[1]; return *this; }
  friend bool operator==(const Block& a, const Block& b) = default;

  /// Least-significant bit; used as the point-and-permute bit of GC labels.
  bool lsb() const { return w[0] & 1; }

  /// Bit i (0 = least significant of the low word).
  bool bit(std::size_t i) const { return (w[i >> 6] >> (i & 63)) & 1; }
  void set_bit(std::size_t i, bool v) {
    const u64 m = u64{1} << (i & 63);
    if (v) w[i >> 6] |= m; else w[i >> 6] &= ~m;
  }

  /// Multiply by x in GF(2^128) — "doubling" used by tweakable hashes.
  Block gf_double() const {
    const u64 carry = w[1] >> 63;
    Block r{(w[1] << 1) | (w[0] >> 63), w[0] << 1};
    if (carry) r.w[0] ^= 0x87;  // x^128 = x^7 + x^2 + x + 1
    return r;
  }

  std::string hex() const;

#if ABNN2_HAVE_SSE2
  __m128i m() const { return _mm_loadu_si128(reinterpret_cast<const __m128i*>(w.data())); }
  static Block from_m(__m128i v) {
    Block b;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(b.w.data()), v);
    return b;
  }
#endif
};

static_assert(sizeof(Block) == 16);

inline constexpr Block kZeroBlock{0, 0};
inline constexpr Block kOneBlock{0, 1};
inline constexpr Block kAllOneBlock{~u64{0}, ~u64{0}};

inline std::string Block::hex() const {
  static const char* d = "0123456789abcdef";
  std::string s(32, '0');
  for (int i = 0; i < 16; ++i) {
    const u8 byte = static_cast<u8>(w[1 - i / 8] >> (8 * (7 - i % 8)));
    s[2 * i] = d[byte >> 4];
    s[2 * i + 1] = d[byte & 15];
  }
  return s;
}

}  // namespace abnn2
