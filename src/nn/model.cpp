#include "nn/model.h"

#include "runtime/thread_pool.h"

namespace abnn2::nn {

std::size_t Model::num_weights() const {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.codes.size();
  return n;
}

void Model::validate() const {
  ABNN2_CHECK_ARG(!layers.empty(), "model has no layers");
  for (std::size_t i = 0; i + 1 < layers.size(); ++i)
    ABNN2_CHECK_ARG(layers[i].out_dim() == layers[i + 1].in_dim(),
                    "layer dimension mismatch");
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const auto& l = layers[i];
    if (l.pool) {
      ABNN2_CHECK_ARG(i + 1 < layers.size(),
                      "pooling after the final layer is not supported");
      ABNN2_CHECK_ARG(l.pool->in_size() == l.linear_out_dim(),
                      "pool geometry inconsistent with layer output");
    }
    if (l.conv) {
      ABNN2_CHECK_ARG(l.codes.rows() == l.conv->out_c &&
                          l.codes.cols() == l.conv->patch_size(),
                      "conv kernel matrix shape mismatch");
      ABNN2_CHECK_ARG(l.bias.empty() || l.bias.size() == l.conv->out_c,
                      "conv bias dimension mismatch");
    } else {
      ABNN2_CHECK_ARG(l.bias.empty() || l.bias.size() == l.out_dim(),
                      "bias dimension mismatch");
    }
    for (u64 c : l.codes.data())
      ABNN2_CHECK_ARG(c < l.scheme.code_space(), "weight code out of range");
  }
}

MatU64 matmul_codes(const ss::Ring& ring, const MatU64& codes,
                    const FragScheme& scheme, const MatU64& x) {
  ABNN2_CHECK_ARG(codes.cols() == x.rows(), "matmul dimension mismatch");
  MatU64 y(codes.rows(), x.cols());
  // One output row per weight row: disjoint writes across i.
  runtime::parallel_for(codes.rows(), [&](std::size_t i) {
    for (std::size_t j = 0; j < codes.cols(); ++j) {
      const u64 w = scheme.interpret_ring(codes.at(i, j), ring);
      if (w == 0) continue;
      const u64* xr = x.row(j);
      u64* yr = y.row(i);
      for (std::size_t k = 0; k < x.cols(); ++k)
        yr[k] = ring.add(yr[k], ring.mul(w, xr[k]));
    }
  });
  return y;
}

void relu_inplace(const ss::Ring& ring, MatU64& y) {
  for (auto& v : y.data())
    if (ring.msb(v)) v = 0;
}

MatU64 infer_plain(const Model& model, const MatU64& x) {
  model.validate();
  ABNN2_CHECK_ARG(x.rows() == model.input_dim(), "input dimension mismatch");
  MatU64 act = x;
  for (std::size_t li = 0; li < model.layers.size(); ++li) {
    const FcLayer& l = model.layers[li];
    MatU64 y;
    if (l.conv) {
      const MatU64 patches = im2col(*l.conv, act);
      y = matmul_codes(model.ring, l.codes, l.scheme, patches);
      if (!l.bias.empty())
        for (std::size_t i = 0; i < y.rows(); ++i)
          for (std::size_t k = 0; k < y.cols(); ++k)
            y.at(i, k) = model.ring.add(y.at(i, k), l.bias[i]);
      y = flatten_conv_output(*l.conv, y, act.cols());
    } else {
      y = matmul_codes(model.ring, l.codes, l.scheme, act);
      if (!l.bias.empty())
        for (std::size_t i = 0; i < y.rows(); ++i)
          for (std::size_t k = 0; k < y.cols(); ++k)
            y.at(i, k) = model.ring.add(y.at(i, k), l.bias[i]);
    }
    if (li + 1 < model.layers.size()) {
      if (l.pool) {
        y = relu_maxpool_plain(model.ring, *l.pool, y);
      } else {
        relu_inplace(model.ring, y);
      }
    }
    act = std::move(y);
  }
  return act;
}

std::vector<std::size_t> argmax_logits(const ss::Ring& ring, const MatU64& y) {
  std::vector<std::size_t> out(y.cols(), 0);
  for (std::size_t k = 0; k < y.cols(); ++k) {
    i64 best = ring.to_signed(y.at(0, k));
    for (std::size_t i = 1; i < y.rows(); ++i) {
      const i64 v = ring.to_signed(y.at(i, k));
      if (v > best) {
        best = v;
        out[k] = i;
      }
    }
  }
  return out;
}

Model random_model(const ss::Ring& ring, const FragScheme& scheme,
                   const std::vector<std::size_t>& dims, Block seed) {
  ABNN2_CHECK_ARG(dims.size() >= 2, "need at least input and output dims");
  Model m(ring);
  Prg prg(seed);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    FcLayer l{MatU64(dims[i + 1], dims[i]), {}, scheme, {}, {}};
    for (auto& c : l.codes.data()) c = prg.next_below(scheme.code_space());
    m.layers.push_back(std::move(l));
  }
  m.validate();
  return m;
}

Model fig4_model(const ss::Ring& ring, const FragScheme& scheme, Block seed) {
  return random_model(ring, scheme, {784, 128, 128, 10}, seed);
}

Model small_cnn_model(const ss::Ring& ring, const FragScheme& scheme,
                      Block seed) {
  Model m(ring);
  Prg prg(seed);
  const ConvSpec spec{/*in_c=*/1, /*in_h=*/10, /*in_w=*/10, /*k_h=*/3,
                      /*k_w=*/3, /*out_c=*/4, /*stride=*/1, /*pad=*/0};
  FcLayer conv{MatU64(spec.out_c, spec.patch_size()), {}, scheme, spec, {}};
  for (auto& c : conv.codes.data()) c = prg.next_below(scheme.code_space());
  m.layers.push_back(std::move(conv));

  FcLayer fc{MatU64(10, spec.out_c * spec.out_positions()), {}, scheme, {}, {}};
  for (auto& c : fc.codes.data()) c = prg.next_below(scheme.code_space());
  m.layers.push_back(std::move(fc));
  m.validate();
  return m;
}

Model pooled_cnn_model(const ss::Ring& ring, const FragScheme& scheme,
                       Block seed) {
  Model m(ring);
  Prg prg(seed);
  const ConvSpec conv_spec{/*in_c=*/1, /*in_h=*/12, /*in_w=*/12, /*k_h=*/3,
                           /*k_w=*/3, /*out_c=*/4, /*stride=*/1, /*pad=*/0};
  const PoolSpec pool_spec{/*c=*/4, /*h=*/10, /*w=*/10,
                           /*win_h=*/2, /*win_w=*/2, /*stride=*/2};
  FcLayer conv{MatU64(conv_spec.out_c, conv_spec.patch_size()), {}, scheme,
               conv_spec, pool_spec};
  for (auto& c : conv.codes.data()) c = prg.next_below(scheme.code_space());
  m.layers.push_back(std::move(conv));

  FcLayer fc{MatU64(10, pool_spec.out_size()), {}, scheme, {}, {}};
  for (auto& c : fc.codes.data()) c = prg.next_below(scheme.code_space());
  m.layers.push_back(std::move(fc));
  m.validate();
  return m;
}

MatU64 synthetic_images(std::size_t features, std::size_t batch,
                        std::size_t frac_bits, const ss::Ring& ring,
                        Block seed) {
  ABNN2_CHECK_ARG(frac_bits < ring.bits(), "frac_bits must fit the ring");
  MatU64 x(features, batch);
  Prg prg(seed);
  for (auto& v : x.data()) v = prg.next_bits(frac_bits);  // in [0, 1) fixed-point
  return x;
}

}  // namespace abnn2::nn
