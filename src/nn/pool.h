// Max-pooling geometry and the plaintext reference for the fused
// ReLU+max-pool layer (extension; CNN baselines like MiniONN evaluate
// conv -> ReLU -> maxpool stacks). Because max is monotone,
// max(ReLU(x_i)) == ReLU(max(x_i)), so the secure layer garbles one fused
// circuit per window (see core/maxpool.h).
//
// Activations use the channel-major layout of nn/conv.h: row c*h*w index
// (c, y, x), one batch item per column.
#pragma once

#include <vector>

#include "nn/tensor.h"
#include "ss/additive.h"

namespace abnn2::nn {

struct PoolSpec {
  std::size_t c, h, w;          // input geometry (c*h*w rows)
  std::size_t win_h, win_w;
  std::size_t stride;           // typically == win_h == win_w

  std::size_t in_size() const { return c * h * w; }
  std::size_t out_h() const {
    ABNN2_CHECK_ARG(h >= win_h && stride >= 1, "bad pool geometry");
    return (h - win_h) / stride + 1;
  }
  std::size_t out_w() const {
    ABNN2_CHECK_ARG(w >= win_w && stride >= 1, "bad pool geometry");
    return (w - win_w) / stride + 1;
  }
  std::size_t out_size() const { return c * out_h() * out_w(); }
  std::size_t window_elems() const { return win_h * win_w; }
};

/// Input row indices of pool window `widx` (windows ordered channel-major,
/// then output row-major).
std::vector<std::size_t> pool_window_rows(const PoolSpec& spec,
                                          std::size_t widx);

/// Plaintext fused ReLU + max-pool: out = ReLU(max(window)) per window.
MatU64 relu_maxpool_plain(const ss::Ring& ring, const PoolSpec& spec,
                          const MatU64& y);

}  // namespace abnn2::nn
