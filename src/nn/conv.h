// Convolution support (extension beyond the paper's FC-only evaluation,
// following how MiniONN/SecureML handle conv layers): a convolution is
// lowered to a matrix product via im2col. Crucially, im2col is a PUBLIC
// data rearrangement (duplication of entries at known positions), so each
// party applies it to its own additive share locally and the existing
// triplet machinery runs unchanged on the lowered matrices.
//
// Layouts: an image batch is a matrix of shape (C*H*W) x B, channel-major
// rows (c, then y, then x); kernels form a matrix (out_c) x (C*kh*kw).
#pragma once

#include "nn/tensor.h"
#include "ss/additive.h"

namespace abnn2::nn {

struct ConvSpec {
  std::size_t in_c, in_h, in_w;
  std::size_t k_h, k_w;
  std::size_t out_c;
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_h() const {
    ABNN2_CHECK_ARG(in_h + 2 * pad >= k_h, "kernel taller than padded input");
    return (in_h + 2 * pad - k_h) / stride + 1;
  }
  std::size_t out_w() const {
    ABNN2_CHECK_ARG(in_w + 2 * pad >= k_w, "kernel wider than padded input");
    return (in_w + 2 * pad - k_w) / stride + 1;
  }
  std::size_t in_size() const { return in_c * in_h * in_w; }
  std::size_t patch_size() const { return in_c * k_h * k_w; }
  std::size_t out_positions() const { return out_h() * out_w(); }
};

/// Lowers x ((C*H*W) x B) to patches ((C*kh*kw) x (out_h*out_w*B)); padding
/// contributes zeros. Column order: batch-major, then output position
/// (row-major over out_h x out_w).
MatU64 im2col(const ConvSpec& spec, const MatU64& x);

/// Reference conv: kernels (out_c x C*kh*kw) * im2col, returning
/// (out_c) x (out_positions*B) in the same column order.
MatU64 conv_plain(const ss::Ring& ring, const ConvSpec& spec,
                  const MatU64& kernel_values, const MatU64& x);

/// Reshapes a conv output (out_c x out_positions*B, batch-major columns)
/// into the activation layout of the next layer
/// ((out_c*out_positions) x B, channel-major rows). Pure data movement, so
/// each party applies it to its share locally.
MatU64 flatten_conv_output(const ConvSpec& spec, const MatU64& y,
                           std::size_t batch);

}  // namespace abnn2::nn
