#include "nn/quantize.h"

#include <algorithm>
#include <cmath>

namespace abnn2::nn {

Quantized quantize(const MatF& w, const FragScheme& scheme) {
  Quantized out;
  out.codes = MatU64(w.rows(), w.cols());

  if (scheme.name() == "binary") {
    out.scale = 1.0;
    for (std::size_t i = 0; i < w.data().size(); ++i)
      out.codes.data()[i] = w.data()[i] > 0 ? 1 : 0;
    return out;
  }
  if (scheme.name() == "ternary") {
    // Ternary weight networks: threshold at 0.7 * mean(|w|).
    double mean_abs = 0;
    for (double v : w.data()) mean_abs += std::abs(v);
    mean_abs /= static_cast<double>(w.data().empty() ? 1 : w.data().size());
    const double thr = 0.7 * mean_abs;
    out.scale = std::max(mean_abs, 1e-12);
    for (std::size_t i = 0; i < w.data().size(); ++i) {
      const double v = w.data()[i];
      out.codes.data()[i] = v > thr ? 2 : (v < -thr ? 0 : 1);
    }
    return out;
  }

  // Uniform quantization over the scheme's representable signed range.
  i64 lo = 0, hi = 0;
  for (u64 c = 0; c < scheme.code_space(); ++c) {
    const i64 v = scheme.interpret(c);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double max_abs = 0;
  for (double v : w.data()) max_abs = std::max(max_abs, std::abs(v));
  // Anchor the scale on the positive max so round-off stays within half a
  // step (two's-complement ranges are asymmetric: |lo| = hi + 1).
  const double limit = static_cast<double>(hi);
  out.scale = max_abs > 0 ? max_abs / std::max(limit, 1.0) : 1.0;
  for (std::size_t i = 0; i < w.data().size(); ++i) {
    i64 q = static_cast<i64>(std::llround(w.data()[i] / out.scale));
    q = std::clamp<i64>(q, lo, hi);
    // Encode back to a code: for bit-sliced schemes the code is the eta-bit
    // two's complement (signed) or plain value (unsigned).
    out.codes.data()[i] =
        static_cast<u64>(q) & mask_l(scheme.eta());
  }
  return out;
}

MatF dequantize(const Quantized& q, const FragScheme& scheme) {
  MatF out(q.codes.rows(), q.codes.cols());
  for (std::size_t i = 0; i < out.data().size(); ++i)
    out.data()[i] =
        static_cast<double>(scheme.interpret(q.codes.data()[i])) * q.scale;
  return out;
}

u64 encode_fixed(double x, std::size_t frac_bits, const ss::Ring& ring) {
  const double scaled = x * static_cast<double>(u64{1} << frac_bits);
  return ring.from_signed(static_cast<i64>(std::llround(scaled)));
}

double decode_fixed(u64 v, std::size_t frac_bits, const ss::Ring& ring) {
  return static_cast<double>(ring.to_signed(v)) /
         static_cast<double>(u64{1} << frac_bits);
}

MatU64 encode_fixed_mat(const MatF& x, std::size_t frac_bits,
                        const ss::Ring& ring) {
  MatU64 out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.data().size(); ++i)
    out.data()[i] = encode_fixed(x.data()[i], frac_bits, ring);
  return out;
}

MatF decode_fixed_mat(const MatU64& x, std::size_t frac_bits,
                      const ss::Ring& ring) {
  MatF out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.data().size(); ++i)
    out.data()[i] = decode_fixed(x.data()[i], frac_bits, ring);
  return out;
}

}  // namespace abnn2::nn
