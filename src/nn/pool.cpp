#include "nn/pool.h"

namespace abnn2::nn {

std::vector<std::size_t> pool_window_rows(const PoolSpec& spec,
                                          std::size_t widx) {
  const std::size_t oh = spec.out_h(), ow = spec.out_w();
  ABNN2_CHECK_ARG(widx < spec.c * oh * ow, "window index out of range");
  const std::size_t ch = widx / (oh * ow);
  const std::size_t oy = (widx / ow) % oh;
  const std::size_t ox = widx % ow;
  std::vector<std::size_t> rows;
  rows.reserve(spec.window_elems());
  for (std::size_t ky = 0; ky < spec.win_h; ++ky)
    for (std::size_t kx = 0; kx < spec.win_w; ++kx)
      rows.push_back((ch * spec.h + oy * spec.stride + ky) * spec.w +
                     ox * spec.stride + kx);
  return rows;
}

MatU64 relu_maxpool_plain(const ss::Ring& ring, const PoolSpec& spec,
                          const MatU64& y) {
  ABNN2_CHECK_ARG(y.rows() == spec.in_size(), "pool input shape mismatch");
  MatU64 out(spec.out_size(), y.cols());
  for (std::size_t widx = 0; widx < spec.out_size(); ++widx) {
    const auto rows = pool_window_rows(spec, widx);
    for (std::size_t b = 0; b < y.cols(); ++b) {
      i64 best = ring.to_signed(y.at(rows[0], b));
      for (std::size_t e = 1; e < rows.size(); ++e)
        best = std::max(best, ring.to_signed(y.at(rows[e], b)));
      out.at(widx, b) = best > 0 ? ring.from_signed(best) : 0;
    }
  }
  return out;
}

}  // namespace abnn2::nn
