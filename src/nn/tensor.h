// Minimal row-major matrix/vector containers for ring elements and weight
// codes. Dimensions follow the paper: a linear layer computes
// Y (m x o) = W (m x n) * X (n x o), where o is the prediction batch size.
#pragma once

#include <vector>

#include "common/defines.h"
#include "crypto/prg.h"

namespace abnn2::nn {

template <class T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), d_(rows * cols, init) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return d_.size(); }

  T& at(std::size_t r, std::size_t c) {
    ABNN2_CHECK_ARG(r < rows_ && c < cols_, "matrix index out of range");
    return d_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    ABNN2_CHECK_ARG(r < rows_ && c < cols_, "matrix index out of range");
    return d_[r * cols_ + c];
  }

  T* row(std::size_t r) { return d_.data() + r * cols_; }
  const T* row(std::size_t r) const { return d_.data() + r * cols_; }

  std::vector<T>& data() { return d_; }
  const std::vector<T>& data() const { return d_; }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<T> d_;
};

using MatU64 = Matrix<u64>;
using MatF = Matrix<double>;

/// Uniformly random ring-element matrix.
inline MatU64 random_mat(std::size_t rows, std::size_t cols, std::size_t l,
                         Prg& prg) {
  MatU64 m(rows, cols);
  const u64 mask = mask_l(l);
  for (auto& v : m.data()) v = prg.next_u64() & mask;
  return m;
}

}  // namespace abnn2::nn
