#include "nn/model_io.h"

#include <fstream>

#include "common/packing.h"
#include "common/serial.h"
#include "crypto/sha256.h"

namespace abnn2::nn {
namespace {

constexpr char kMagic[8] = {'A', 'B', 'N', 'N', '2', 'M', 'D', 'L'};
constexpr u32 kVersion = 2;

std::size_t code_bits(const FragScheme& s) {
  std::size_t b = 1;
  while ((u64{1} << b) < s.code_space()) ++b;
  return b;
}

void put_string(Writer& w, const std::string& s) {
  w.u64_(s.size());
  w.bytes(s.data(), s.size());
}

std::string get_string(Reader& r) {
  const u64 n = r.u64_();
  ABNN2_CHECK(n < 4096, "oversized string in model file");
  ABNN2_CHECK(n <= r.remaining(), "truncated string in model file");
  std::string s(n, '\0');
  r.bytes(s.data(), n);
  return s;
}

// Caps on hostile inputs: spec fields and blob sizes are validated before
// any allocation or arithmetic that could overflow.
constexpr u64 kMaxSpecField = u64{1} << 20;
constexpr u64 kMaxModelBytes = u64{1} << 30;

u64 get_spec_field(Reader& r) {
  const u64 v = r.u64_();
  ABNN2_CHECK(v <= kMaxSpecField, "conv/pool spec field out of range");
  return v;
}

}  // namespace

std::vector<u8> serialize_model(const Model& m) {
  m.validate();
  Writer w;
  w.bytes(kMagic, sizeof(kMagic));
  w.u32_(kVersion);
  w.u64_(m.ring.bits());
  w.u64_(m.layers.size());
  for (const auto& l : m.layers) {
    put_string(w, l.scheme.name());
    w.u8_(l.conv.has_value());
    if (l.conv) {
      const auto& cv = *l.conv;
      for (u64 v : {cv.in_c, cv.in_h, cv.in_w, cv.k_h, cv.k_w, cv.out_c,
                    cv.stride, cv.pad})
        w.u64_(v);
    }
    w.u8_(l.pool.has_value());
    if (l.pool) {
      const auto& pl = *l.pool;
      for (u64 v : {pl.c, pl.h, pl.w, pl.win_h, pl.win_w, pl.stride})
        w.u64_(v);
    }
    w.u64_(l.codes.rows());
    w.u64_(l.codes.cols());
    const auto packed = pack_bits(l.codes.data(), code_bits(l.scheme));
    w.u64_(packed.size());
    w.bytes(packed.data(), packed.size());
    w.u64_(l.bias.size());
    if (!l.bias.empty()) {
      const auto pb = pack_bits(l.bias, m.ring.bits());
      w.u64_(pb.size());
      w.bytes(pb.data(), pb.size());
    }
  }
  return w.take();
}

Model deserialize_model(std::span<const u8> bytes) {
  // Every read below is bounds-checked by Reader; in addition, every
  // attacker-controlled size is validated against the bytes actually present
  // BEFORE it drives an allocation, so a hostile 8-byte prefix cannot force
  // a multi-GiB reserve. Parse failures from nested decoders (scheme names,
  // ring widths) are normalized to ProtocolError so callers see one failure
  // type for "malformed file".
  try {
    Reader r(bytes);
    char magic[8];
    r.bytes(magic, 8);
    ABNN2_CHECK(std::memcmp(magic, kMagic, 8) == 0, "not an ABNN2 model file");
    const u32 version = r.u32_();
    ABNN2_CHECK(version >= 1 && version <= kVersion,
                "unsupported model file version");
    const u64 ring_bits = r.u64_();
    ABNN2_CHECK(ring_bits >= 1 && ring_bits <= 64, "bad ring width");
    Model m{ss::Ring(ring_bits)};
    const u64 n_layers = r.u64_();
    ABNN2_CHECK(n_layers >= 1 && n_layers <= 1024, "bad layer count");
    for (u64 i = 0; i < n_layers; ++i) {
      FcLayer l{{}, {}, FragScheme::parse(get_string(r)), {}, {}};
      if (r.u8_()) {
        ConvSpec cv{};
        cv.in_c = get_spec_field(r);
        cv.in_h = get_spec_field(r);
        cv.in_w = get_spec_field(r);
        cv.k_h = get_spec_field(r);
        cv.k_w = get_spec_field(r);
        cv.out_c = get_spec_field(r);
        cv.stride = get_spec_field(r);
        cv.pad = get_spec_field(r);
        l.conv = cv;
      }
      if (version >= 2 && r.u8_()) {
        PoolSpec pl{};
        pl.c = get_spec_field(r);
        pl.h = get_spec_field(r);
        pl.w = get_spec_field(r);
        pl.win_h = get_spec_field(r);
        pl.win_w = get_spec_field(r);
        pl.stride = get_spec_field(r);
        l.pool = pl;
      }
      const u64 rows = r.u64_();
      const u64 cols = r.u64_();
      ABNN2_CHECK(rows >= 1 && rows <= (u64{1} << 28) && cols >= 1 &&
                      cols <= (u64{1} << 28) && rows * cols <= (u64{1} << 28),
                  "bad layer shape");
      const u64 packed_size = r.u64_();
      ABNN2_CHECK(packed_size <= r.remaining(),
                  "truncated weight block in model file");
      std::vector<u8> packed(packed_size);
      r.bytes(packed.data(), packed_size);
      l.codes = MatU64(rows, cols);
      l.codes.data() = unpack_bits(packed, code_bits(l.scheme), rows * cols);
      const u64 bias_len = r.u64_();
      if (bias_len > 0) {
        ABNN2_CHECK(bias_len == rows, "bias length mismatch");
        const u64 pb_size = r.u64_();
        ABNN2_CHECK(pb_size <= r.remaining(),
                    "truncated bias block in model file");
        std::vector<u8> pb(pb_size);
        r.bytes(pb.data(), pb_size);
        l.bias = unpack_bits(pb, ring_bits, bias_len);
      }
      m.layers.push_back(std::move(l));
    }
    ABNN2_CHECK(r.done(), "trailing bytes in model file");
    m.validate();
    return m;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception& e) {
    throw ProtocolError(std::string("malformed model file: ") + e.what());
  }
}

std::array<u8, 32> model_digest(const Model& m) {
  const auto bytes = serialize_model(m);
  Sha256 h;
  h.update(bytes.data(), bytes.size());
  return h.digest();
}

void save_model(const Model& m, const std::string& path) {
  const auto bytes = serialize_model(m);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ABNN2_CHECK(f.good(), "cannot open model file for writing: " + path);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  ABNN2_CHECK(f.good(), "short write to model file: " + path);
}

Model load_model(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  ABNN2_CHECK(f.good(), "cannot open model file: " + path);
  const auto size = static_cast<std::size_t>(f.tellg());
  ABNN2_CHECK(size <= kMaxModelBytes, "model file too large: " + path);
  f.seekg(0);
  std::vector<u8> bytes(size);
  f.read(reinterpret_cast<char*>(bytes.data()),
         static_cast<std::streamsize>(size));
  ABNN2_CHECK(f.good(), "short read from model file: " + path);
  return deserialize_model(bytes);
}

}  // namespace abnn2::nn
