// Quantized neural network model container, plaintext reference inference,
// the paper's Fig-4 MNIST network and synthetic data generation.
//
// A model is a stack of fully connected layers with ReLU between them
// (Fig 2 / Fig 4 of the paper). Weights are quantized codes under a
// FragScheme; activations are ring elements (fixed-point). The plaintext
// reference computes exactly what the secure protocol computes — in the ring
// Z_{2^l}, with ReLU defined by the two's-complement sign bit — so secure and
// plaintext results must match bit-for-bit (tested).
#pragma once

#include <vector>

#include <optional>

#include "nn/conv.h"
#include "nn/fragment.h"
#include "nn/pool.h"
#include "nn/quantize.h"
#include "nn/tensor.h"

namespace abnn2::nn {

/// One linear layer. Fully connected when `conv` is empty; convolutional
/// otherwise (extension beyond the paper's FC-only evaluation): the codes
/// then form the (out_c x C*kh*kw) kernel matrix and the layer is lowered to
/// a matmul via local im2col on each party's shares. When `pool` is set
/// (non-final layers only), the activation between this layer and the next
/// is fused ReLU + max-pool instead of plain ReLU.
struct FcLayer {
  MatU64 codes;            // m x n weight codes (kernel matrix for conv)
  std::vector<u64> bias;   // per-output-row ring elements (empty = no bias)
  FragScheme scheme;
  std::optional<ConvSpec> conv;
  std::optional<PoolSpec> pool;

  /// Rows of the linear product W*x (before any pooling).
  std::size_t linear_out_dim() const {
    return conv ? conv->out_c * conv->out_positions() : codes.rows();
  }
  /// Logical activation dimensions (what the next layer sees).
  std::size_t out_dim() const {
    return pool ? pool->out_size() : linear_out_dim();
  }
  std::size_t in_dim() const { return conv ? conv->in_size() : codes.cols(); }
};

struct Model {
  ss::Ring ring;
  std::vector<FcLayer> layers;  // ReLU applied between consecutive layers

  explicit Model(ss::Ring r) : ring(r) {}

  std::size_t input_dim() const { return layers.front().in_dim(); }
  std::size_t output_dim() const { return layers.back().out_dim(); }

  /// Total number of weights (the paper's sum over m*n).
  std::size_t num_weights() const;

  void validate() const;
};

/// W * X in the ring, interpreting codes through the scheme.
MatU64 matmul_codes(const ss::Ring& ring, const MatU64& codes,
                    const FragScheme& scheme, const MatU64& x);

/// Element-wise ReLU on ring elements (two's-complement sign).
void relu_inplace(const ss::Ring& ring, MatU64& y);

/// Full plaintext inference: returns logits (out_dim x batch).
MatU64 infer_plain(const Model& model, const MatU64& x);

/// Index of the largest (signed) logit per batch column.
std::vector<std::size_t> argmax_logits(const ss::Ring& ring, const MatU64& y);

/// The 3-layer network of Fig 4: 784 -> 128 -> 128 -> 10, random quantized
/// weights under `scheme`.
Model fig4_model(const ss::Ring& ring, const FragScheme& scheme, Block seed);

/// A model with arbitrary layer sizes, random codes.
Model random_model(const ss::Ring& ring, const FragScheme& scheme,
                   const std::vector<std::size_t>& dims, Block seed);

/// A small CNN (extension): conv(1x10x10 image, 3x3 kernels, 4 output
/// channels) -> ReLU -> FC(256 -> 10), random codes.
Model small_cnn_model(const ss::Ring& ring, const FragScheme& scheme,
                      Block seed);

/// CNN with pooling (extension): conv(1x12x12, 3x3 -> 4 channels) ->
/// fused ReLU+maxpool(2x2, stride 2) -> FC(100 -> 10), random codes.
Model pooled_cnn_model(const ss::Ring& ring, const FragScheme& scheme,
                       Block seed);

/// Deterministic synthetic MNIST-like inputs: `batch` columns of
/// `features` fixed-point values in [0, 1) with `frac_bits` fractional bits
/// (see DESIGN.md substitution #3).
MatU64 synthetic_images(std::size_t features, std::size_t batch,
                        std::size_t frac_bits, const ss::Ring& ring,
                        Block seed);

}  // namespace abnn2::nn
