#include "nn/fragment.h"

#include <sstream>

namespace abnn2::nn {
namespace {

std::string tuple_name(const std::vector<u32>& bits, bool is_signed) {
  std::ostringstream os;
  if (is_signed) os << 's';
  os << '(';
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i) os << ',';
    os << bits[i];
  }
  os << ')';
  return os.str();
}

}  // namespace

FragScheme FragScheme::unsigned_bits(const std::vector<u32>& bits) {
  ABNN2_CHECK_ARG(!bits.empty(), "empty fragment tuple");
  FragScheme s;
  u32 shift = 0;
  for (u32 b : bits) {
    ABNN2_CHECK_ARG(b >= 1 && b <= 8, "fragment width must be in [1,8]");
    Fragment f;
    f.shift = shift;
    f.bits = b;
    f.values.resize(std::size_t{1} << b);
    for (u32 j = 0; j < f.values.size(); ++j)
      f.values[j] = static_cast<i64>(j) << shift;
    shift += b;
    s.frags_.push_back(std::move(f));
  }
  ABNN2_CHECK_ARG(shift <= 32, "eta too large");
  s.eta_ = shift;
  s.name_ = tuple_name(bits, false);
  return s;
}

FragScheme FragScheme::signed_bits(const std::vector<u32>& bits) {
  FragScheme s = unsigned_bits(bits);
  // Reinterpret the top fragment in two's complement: its high bit carries
  // weight -2^(shift+bits-1) instead of +2^(shift+bits-1).
  Fragment& top = s.frags_.back();
  const u32 half = u32{1} << (top.bits - 1);
  for (u32 j = half; j < top.values.size(); ++j)
    top.values[j] =
        (static_cast<i64>(j) - (i64{1} << top.bits)) << top.shift;
  s.signed_ = true;
  std::vector<u32> widths;
  for (const auto& f : s.frags_) widths.push_back(f.bits);
  s.name_ = tuple_name(widths, true);
  return s;
}

FragScheme FragScheme::ternary() {
  FragScheme s;
  Fragment f;
  f.shift = 0;
  f.bits = 0;
  f.values = {-1, 0, 1};
  s.frags_.push_back(std::move(f));
  s.eta_ = 2;  // the paper counts ternary as 2-bit
  s.signed_ = true;
  s.table_coded_ = true;
  s.name_ = "ternary";
  return s;
}

FragScheme FragScheme::binary() {
  FragScheme s;
  Fragment f;
  f.shift = 0;
  f.bits = 0;
  f.values = {0, 1};
  s.frags_.push_back(std::move(f));
  s.eta_ = 1;
  s.signed_ = false;
  s.table_coded_ = true;
  s.name_ = "binary";
  return s;
}

FragScheme FragScheme::parse(const std::string& spec) {
  if (spec == "ternary") return ternary();
  if (spec == "binary") return binary();
  std::string t = spec;
  bool sgn = false;
  if (!t.empty() && t[0] == 's') {
    sgn = true;
    t = t.substr(1);
  }
  ABNN2_CHECK_ARG(t.size() >= 3 && t.front() == '(' && t.back() == ')',
                  "bad fragment spec: " + spec);
  std::vector<u32> bits;
  std::stringstream ss(t.substr(1, t.size() - 2));
  std::string item;
  while (std::getline(ss, item, ','))
    bits.push_back(static_cast<u32>(std::stoul(item)));
  return sgn ? signed_bits(bits) : unsigned_bits(bits);
}

u32 FragScheme::max_n() const {
  u32 n = 0;
  for (const auto& f : frags_) n = std::max(n, static_cast<u32>(f.values.size()));
  return n;
}

u32 FragScheme::choice(u64 code, std::size_t f) const {
  const Fragment& fr = frags_.at(f);
  if (table_coded_) {
    ABNN2_CHECK_ARG(code < fr.values.size(), "code out of table range");
    return static_cast<u32>(code);
  }
  ABNN2_CHECK_ARG(code < (u64{1} << eta_), "code exceeds eta bits");
  return static_cast<u32>((code >> fr.shift) & mask_l(fr.bits));
}

i64 FragScheme::interpret(u64 code) const {
  i64 v = 0;
  for (std::size_t f = 0; f < frags_.size(); ++f)
    v += frags_[f].values[choice(code, f)];
  return v;
}

u64 FragScheme::code_space() const {
  if (table_coded_) return frags_[0].values.size();
  return u64{1} << eta_;
}

}  // namespace abnn2::nn
