// Model (de)serialization: a compact binary format so a quantized model can
// be produced once (tools/abnn2_genmodel) and served forever
// (tools/abnn2_server). Format, little-endian:
//
//   magic "ABNN2MDL", u32 version, u64 ring_bits, u64 n_layers,
//   per layer:
//     scheme-name string (u64 len + bytes)
//     u8 has_conv [+ 8 x u64 conv fields]
//     u8 has_pool [+ 5 x u64 pool fields]   (version >= 2)
//     u64 rows, u64 cols, codes packed to ceil(log2 code_space) bits each
//     u64 bias_len + bias values packed to ring_bits
#pragma once

#include <array>
#include <span>
#include <string>

#include "nn/model.h"

namespace abnn2::nn {

/// Serializes to a byte buffer / file. Throws on I/O failure.
std::vector<u8> serialize_model(const Model& m);
void save_model(const Model& m, const std::string& path);

/// SHA-256 over the canonical serialized form — the model identity used by
/// the handshake (digest pinning, session routing, resume validation).
std::array<u8, 32> model_digest(const Model& m);

/// Deserializes; validates shapes and code ranges. Throws ProtocolError on
/// malformed input.
Model deserialize_model(std::span<const u8> bytes);
Model load_model(const std::string& path);

}  // namespace abnn2::nn
