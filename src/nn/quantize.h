// Float -> quantized-code conversion (symmetric uniform quantization for
// bit-width schemes, threshold quantization for ternary, sign for binary)
// and the fixed-point encoding of activations (paper section 2.2:
// "activations will be in float-point form and be encoded as fixed-point").
#pragma once

#include "nn/fragment.h"
#include "nn/tensor.h"

namespace abnn2::nn {

struct Quantized {
  MatU64 codes;   // weight codes, consumed by the secure protocols
  double scale;   // real value of a unit step: w_real ~ interpret(code)*scale
};

/// Quantizes a real weight matrix under `scheme`.
Quantized quantize(const MatF& w, const FragScheme& scheme);

/// Real value represented by a code matrix.
MatF dequantize(const Quantized& q, const FragScheme& scheme);

/// Fixed-point encoding of activations/inputs with `frac_bits` fractional
/// bits into the ring.
u64 encode_fixed(double x, std::size_t frac_bits, const ss::Ring& ring);
double decode_fixed(u64 v, std::size_t frac_bits, const ss::Ring& ring);

MatU64 encode_fixed_mat(const MatF& x, std::size_t frac_bits,
                        const ss::Ring& ring);
MatF decode_fixed_mat(const MatU64& x, std::size_t frac_bits,
                      const ss::Ring& ring);

}  // namespace abnn2::nn
