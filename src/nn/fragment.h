// Fragment schemes: the N-base decomposition of quantized weights that gives
// ABNN2 its arbitrary-bitwidth support (paper section 4.1.1, equation 2, and
// the tuples of Table 2).
//
// A weight is stored as an eta-bit CODE. A scheme splits the code into
// gamma fragments; fragment f contributes value_f(j_f) to the weight's ring
// value, where j_f in [0, N_f) is the fragment's choice index. The protocol
// invariant, checked by tests for every scheme:
//
//     sum_f value(f, choice(code, f))  ==  interpret(code)   (mod 2^l)
//
// Supported schemes:
//   - unsigned_bits({b0,...}): plain base-2^b decomposition, tuple ordered
//     from the lowest bits to the highest (paper's (2,2,2,2), (3,3,2), ...).
//   - signed_bits({b0,...}): same slices, but the top fragment is two's
//     complement, so eta-bit codes represent signed weights.
//   - ternary(): one fragment, codes {0,1,2} -> values {-1,0,+1}.
//   - binary(): one fragment, codes {0,1} -> values {0,1}.
#pragma once

#include <string>
#include <vector>

#include "common/defines.h"
#include "ss/additive.h"

namespace abnn2::nn {

class FragScheme {
 public:
  /// One fragment: how to extract the choice index from a code and the
  /// candidate signed values it contributes.
  struct Fragment {
    u32 shift;                // bit offset of this fragment inside the code
    u32 bits;                 // fragment width (N = 2^bits) -- 0 for tables
    std::vector<i64> values;  // values[j] = signed contribution of choice j
  };

  static FragScheme unsigned_bits(const std::vector<u32>& bits);
  static FragScheme signed_bits(const std::vector<u32>& bits);
  static FragScheme ternary();
  static FragScheme binary();

  /// Parses "(2,2,2,2)", "ternary", "binary", "s(3,3,2)" (signed).
  static FragScheme parse(const std::string& spec);

  std::size_t gamma() const { return frags_.size(); }
  std::size_t eta() const { return eta_; }
  bool is_signed() const { return signed_; }
  const std::string& name() const { return name_; }

  /// Number of candidate values of fragment f (the protocol's N).
  u32 table_size(std::size_t f) const {
    return static_cast<u32>(frags_.at(f).values.size());
  }
  /// Largest N over all fragments.
  u32 max_n() const;

  /// Choice index of fragment f for a weight code.
  u32 choice(u64 code, std::size_t f) const;

  /// Ring value contributed by fragment f at choice j.
  u64 value(std::size_t f, u32 j, const ss::Ring& ring) const {
    return ring.from_signed(frags_.at(f).values.at(j));
  }

  /// Signed value the full code represents.
  i64 interpret(u64 code) const;
  /// Ring encoding of interpret(code).
  u64 interpret_ring(u64 code, const ss::Ring& ring) const {
    return ring.from_signed(interpret(code));
  }

  /// Number of valid codes (2^eta, or 3 for ternary).
  u64 code_space() const;

  const std::vector<Fragment>& fragments() const { return frags_; }

 private:
  std::vector<Fragment> frags_;
  std::size_t eta_ = 0;
  bool signed_ = false;
  bool table_coded_ = false;  // ternary-style: code is a table index
  std::string name_;
};

}  // namespace abnn2::nn
