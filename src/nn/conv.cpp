#include "nn/conv.h"

#include "runtime/thread_pool.h"

namespace abnn2::nn {

MatU64 im2col(const ConvSpec& spec, const MatU64& x) {
  ABNN2_CHECK_ARG(x.rows() == spec.in_size(), "input shape mismatch");
  const std::size_t batch = x.cols();
  const std::size_t oh = spec.out_h(), ow = spec.out_w();
  MatU64 out(spec.patch_size(), oh * ow * batch);
  // Each (batch, output position) owns one output column — disjoint writes,
  // so the flattened column loop parallelizes cleanly.
  runtime::parallel_for(batch * oh * ow, [&](std::size_t col) {
    const std::size_t b = col / (oh * ow);
    const std::size_t rem = col % (oh * ow);
    const std::size_t oy = rem / ow;
    const std::size_t ox = rem % ow;
    for (std::size_t c = 0; c < spec.in_c; ++c) {
      for (std::size_t ky = 0; ky < spec.k_h; ++ky) {
        for (std::size_t kx = 0; kx < spec.k_w; ++kx) {
          const std::size_t row = (c * spec.k_h + ky) * spec.k_w + kx;
          const i64 iy = static_cast<i64>(oy * spec.stride + ky) -
                         static_cast<i64>(spec.pad);
          const i64 ix = static_cast<i64>(ox * spec.stride + kx) -
                         static_cast<i64>(spec.pad);
          if (iy < 0 || ix < 0 || iy >= static_cast<i64>(spec.in_h) ||
              ix >= static_cast<i64>(spec.in_w))
            continue;  // zero padding
          const std::size_t src =
              (c * spec.in_h + static_cast<std::size_t>(iy)) * spec.in_w +
              static_cast<std::size_t>(ix);
          out.at(row, col) = x.at(src, b);
        }
      }
    }
  });
  return out;
}

MatU64 conv_plain(const ss::Ring& ring, const ConvSpec& spec,
                  const MatU64& kernel_values, const MatU64& x) {
  ABNN2_CHECK_ARG(kernel_values.rows() == spec.out_c &&
                      kernel_values.cols() == spec.patch_size(),
                  "kernel shape mismatch");
  const MatU64 patches = im2col(spec, x);
  MatU64 y(spec.out_c, patches.cols());
  // One output row per out-channel: disjoint writes across i.
  runtime::parallel_for(spec.out_c, [&](std::size_t i) {
    for (std::size_t j = 0; j < spec.patch_size(); ++j) {
      const u64 w = ring.reduce(kernel_values.at(i, j));
      if (w == 0) continue;
      const u64* src = patches.row(j);
      u64* dst = y.row(i);
      for (std::size_t k = 0; k < patches.cols(); ++k)
        dst[k] = ring.add(dst[k], ring.mul(w, src[k]));
    }
  });
  return y;
}

MatU64 flatten_conv_output(const ConvSpec& spec, const MatU64& y,
                           std::size_t batch) {
  const std::size_t pos = spec.out_positions();
  ABNN2_CHECK_ARG(y.rows() == spec.out_c && y.cols() == pos * batch,
                  "conv output shape mismatch");
  MatU64 out(spec.out_c * pos, batch);
  for (std::size_t c = 0; c < spec.out_c; ++c)
    for (std::size_t b = 0; b < batch; ++b)
      for (std::size_t p = 0; p < pos; ++p)
        out.at(c * pos + p, b) = y.at(c, b * pos + p);
  return out;
}

}  // namespace abnn2::nn
