#include "crypto/prg.h"

#include <random>

namespace abnn2 {

Prg::Prg() { reseed(random_block()); }

Prg::Prg(Block seed, u64 stream_id) { reseed(seed, stream_id); }

void Prg::reseed(Block seed, u64 stream_id) {
  aes_.set_key(seed);
  counter_ = 0;
  stream_id_ = stream_id;
  buf_pos_ = kBuf;
  byte_pos_ = 16;
}

void Prg::refill() {
  std::array<Block, kBuf> ctr;
  for (std::size_t i = 0; i < kBuf; ++i) ctr[i] = Block{stream_id_, counter_ + i};
  counter_ += kBuf;
  aes_.encrypt_blocks(ctr.data(), buf_.data(), kBuf);
  buf_pos_ = 0;
}

Block Prg::next_block() {
  // Block pulls are always 16-byte aligned: discard any partially consumed
  // block from a previous bytes() call.
  if (byte_pos_ != 16) {
    byte_pos_ = 16;
    ++buf_pos_;
  }
  if (buf_pos_ >= kBuf) refill();
  return buf_[buf_pos_++];
}

u64 Prg::next_u64() {
  return next_block().lo();
}

u64 Prg::next_below(u64 bound) {
  ABNN2_CHECK_ARG(bound > 0, "bound must be positive");
  if ((bound & (bound - 1)) == 0) return next_u64() & (bound - 1);
  // Rejection sampling on the smallest power-of-two envelope.
  int bits = 64 - __builtin_clzll(bound);
  const u64 m = mask_l(static_cast<std::size_t>(bits));
  u64 v;
  do {
    v = next_u64() & m;
  } while (v >= bound);
  return v;
}

void Prg::next_blocks(Block* out, std::size_t n) {
  if (byte_pos_ != 16) {
    byte_pos_ = 16;
    ++buf_pos_;
  }
  // Large requests: encrypt counters straight into `out`, staging the counter
  // blocks through a fixed stack buffer (no heap allocation on the refill
  // path). The output is the same E(stream, counter) sequence regardless of
  // how the request is chunked.
  if (n >= kBuf) {
    constexpr std::size_t kChunk = 64;
    Block ctr[kChunk];
    while (n > 0) {
      const std::size_t c = std::min<std::size_t>(n, kChunk);
      for (std::size_t i = 0; i < c; ++i)
        ctr[i] = Block{stream_id_, counter_ + i};
      counter_ += c;
      aes_.encrypt_blocks(ctr, out, c);
      out += c;
      n -= c;
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = next_block();
}

void Prg::bytes(void* out, std::size_t n) {
  u8* p = static_cast<u8*>(out);
  // Drain the partially consumed block first.
  while (n > 0 && byte_pos_ != 16) {
    u8 tmp[16];
    buf_[buf_pos_].to_bytes(tmp);
    const std::size_t take = std::min<std::size_t>(n, 16 - byte_pos_);
    std::memcpy(p, tmp + byte_pos_, take);
    byte_pos_ += take;
    p += take;
    n -= take;
    if (byte_pos_ == 16) ++buf_pos_;
  }
  const std::size_t whole = n / 16;
  if (whole > 0) {
    constexpr std::size_t kChunk = 64;
    Block tmp[kChunk];
    if (whole >= kBuf) {
      // Mirror next_blocks' direct path chunkwise: every whole block comes
      // straight from the counter stream, no heap staging buffer.
      std::size_t left = whole;
      while (left > 0) {
        const std::size_t c = std::min<std::size_t>(left, kChunk);
        for (std::size_t i = 0; i < c; ++i)
          tmp[i] = Block{stream_id_, counter_ + i};
        counter_ += c;
        aes_.encrypt_blocks(tmp, tmp, c);
        std::memcpy(p, tmp, c * 16);
        p += c * 16;
        left -= c;
      }
    } else {
      next_blocks(tmp, whole);
      std::memcpy(p, tmp, whole * 16);
      p += whole * 16;
    }
    n -= whole * 16;
  }
  if (n > 0) {
    if (buf_pos_ >= kBuf) refill();
    u8 tmp[16];
    buf_[buf_pos_].to_bytes(tmp);
    std::memcpy(p, tmp, n);
    byte_pos_ = n;
  }
}

Block Prg::random_block() {
  std::random_device rd;
  u64 lo = (u64(rd()) << 32) | rd();
  u64 hi = (u64(rd()) << 32) | rd();
  return Block{hi, lo};
}

}  // namespace abnn2
