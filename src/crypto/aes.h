// AES-128 block cipher over the runtime-dispatched kernel layer (src/simd/):
// AES-NI with 8-way block pipelining when the CPU supports it, a portable
// S-box implementation otherwise — selected by CPUID at runtime, not by the
// compile-time -march flags. Encryption-only: the library never needs AES
// decryption (PRG, hashing and GC all use the forward direction).
#pragma once

#include <array>

#include "common/block.h"
#include "common/defines.h"

namespace abnn2 {

class Aes128 {
 public:
  Aes128() : Aes128(kZeroBlock) {}
  explicit Aes128(Block key) { set_key(key); }

  void set_key(Block key);

  /// Encrypt a single block.
  Block encrypt(Block pt) const;

  /// Encrypt `n` blocks independently (ECB over distinct inputs); the hot
  /// path for the CTR PRG and GC hashing. `in` may alias `out`.
  void encrypt_blocks(const Block* in, Block* out, std::size_t n) const;

  /// in[i] ^ E(in[i]): the Matyas-Meyer-Oseas compression step.
  Block mmo(Block x) const { return encrypt(x) ^ x; }

  const std::array<Block, 11>& round_keys() const { return rk_; }

 private:
  std::array<Block, 11> rk_{};
};

/// A fixed-key AES instance usable as a public random permutation
/// (the JustGarble / free-hash model). Key is an arbitrary published constant.
const Aes128& fixed_key_aes();

}  // namespace abnn2
