// SHA-256 (FIPS 180-4). Used as the random oracle of the OT extensions and
// for key derivation in the base OT.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "common/defines.h"

namespace abnn2 {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;

  Sha256() { reset(); }

  void reset();
  Sha256& update(const void* data, std::size_t n);
  Sha256& update(std::span<const u8> data) { return update(data.data(), data.size()); }
  std::array<u8, kDigestSize> digest();

  /// One-shot convenience.
  static std::array<u8, kDigestSize> hash(const void* data, std::size_t n) {
    Sha256 h;
    h.update(data, n);
    return h.digest();
  }
  static std::string hex(const std::array<u8, kDigestSize>& d);

 private:
  void process_block(const u8* p);

  std::array<u32, 8> state_{};
  u64 total_len_ = 0;
  std::array<u8, 64> buf_{};
  std::size_t buf_len_ = 0;
};

}  // namespace abnn2
