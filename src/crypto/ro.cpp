#include "crypto/ro.h"

#include <atomic>

#include "crypto/aes.h"

namespace abnn2 {
namespace {

std::atomic<RoMode> g_mode{RoMode::kSha256};

// Davies-Meyer over the fixed-key AES permutation pi:
//   h_0 = tweak;  h_{k+1} = pi(m_k ^ h_k) ^ (m_k ^ h_k)
// absorbing the input 16 bytes at a time; squeezed to 256 bits with two
// finalization tweaks. Fast instantiation of the OT-extension hash in the
// fixed-key random-permutation model.
RoDigest aes_ro(u64 tag, u64 index, std::span<const u8> data) {
  const Aes128& pi = fixed_key_aes();
  Block h{tag, index};
  h = pi.mmo(h);
  std::size_t i = 0;
  while (i < data.size()) {
    u8 chunk[16] = {};
    const std::size_t take = std::min<std::size_t>(16, data.size() - i);
    std::memcpy(chunk, data.data() + i, take);
    // Mark the final (possibly short) chunk with its length so that inputs
    // of different lengths cannot collide.
    if (take < 16) chunk[15] ^= static_cast<u8>(0x80 | take);
    h = pi.mmo(Block::from_bytes(chunk) ^ h);
    i += take;
  }
  RoDigest out;
  const Block o0 = pi.mmo(h ^ kOneBlock);
  const Block o1 = pi.mmo(h ^ Block{0, 2});
  o0.to_bytes(out.d.data());
  o1.to_bytes(out.d.data() + 16);
  return out;
}

}  // namespace

RoMode ro_mode() { return g_mode.load(std::memory_order_relaxed); }
void set_ro_mode(RoMode mode) { g_mode.store(mode, std::memory_order_relaxed); }

RoDigest ro_hash(u64 tag, u64 index, std::span<const u8> data) {
  if (ro_mode() == RoMode::kFixedKeyAes) return aes_ro(tag, index, data);
  Sha256 h;
  h.update(&tag, sizeof(tag));
  h.update(&index, sizeof(index));
  h.update(data);
  return RoDigest{h.digest()};
}

}  // namespace abnn2
