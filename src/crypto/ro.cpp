#include "crypto/ro.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "crypto/aes.h"
#include "simd/kernels.h"

namespace abnn2 {
namespace {

std::atomic<RoMode> g_mode{RoMode::kSha256};
// Latched by the first hash; set_ro_mode refuses to *change* the mode once
// set (both parties must run the whole protocol under one instantiation).
std::atomic<bool> g_used{false};
// 0 = uninitialised (read ABNN2_RO_BATCH_WIDTH / default 8 on first use).
std::atomic<std::size_t> g_batch_width{0};

constexpr std::size_t kDefaultBatchWidth = 8;
constexpr std::size_t kMaxBatchWidth = 8;

inline void mark_used() {
  if (!g_used.load(std::memory_order_relaxed))
    g_used.store(true, std::memory_order_relaxed);
}

// Davies-Meyer over the fixed-key AES permutation pi:
//   h_0 = tweak;  h_{k+1} = pi(m_k ^ h_k) ^ (m_k ^ h_k)
// absorbing the input 16 bytes at a time; squeezed to 256 bits with two
// finalization tweaks. Fast instantiation of the OT-extension hash in the
// fixed-key random-permutation model.
RoDigest aes_ro(u64 tag, u64 index, std::span<const u8> data) {
  const Aes128& pi = fixed_key_aes();
  Block h{tag, index};
  h = pi.mmo(h);
  std::size_t i = 0;
  while (i < data.size()) {
    u8 chunk[16] = {};
    const std::size_t take = std::min<std::size_t>(16, data.size() - i);
    std::memcpy(chunk, data.data() + i, take);
    // Mark the final (possibly short) chunk with its length so that inputs
    // of different lengths cannot collide.
    if (take < 16) chunk[15] ^= static_cast<u8>(0x80 | take);
    h = pi.mmo(Block::from_bytes(chunk) ^ h);
    i += take;
  }
  RoDigest out;
  const Block o0 = pi.mmo(h ^ kOneBlock);
  const Block o1 = pi.mmo(h ^ Block{0, 2});
  o0.to_bytes(out.d.data());
  o1.to_bytes(out.d.data() + 16);
  return out;
}

// Up to 8 Davies-Meyer chains in lockstep. Every chain performs exactly the
// per-instance AES calls of aes_ro (AES is pure, so interleaving the calls
// through the 8-way pipelined kernel changes throughput, not results). The
// chains advance together because all rows share one length.
void aes_ro_batch_chunk(const Aes128& pi, u64 tag, u64 index0, const u8* rows,
                        std::size_t row_bytes, std::size_t n, RoDigest* out) {
  Block h[kMaxBatchWidth];
  Block e[2 * kMaxBatchWidth];
  for (std::size_t k = 0; k < n; ++k) h[k] = Block{tag, index0 + k};
  pi.encrypt_blocks(h, e, n);
  for (std::size_t k = 0; k < n; ++k) h[k] ^= e[k];
  std::size_t i = 0;
  while (i < row_bytes) {
    const std::size_t take = std::min<std::size_t>(16, row_bytes - i);
    for (std::size_t k = 0; k < n; ++k) {
      u8 chunk[16] = {};
      std::memcpy(chunk, rows + k * row_bytes + i, take);
      if (take < 16) chunk[15] ^= static_cast<u8>(0x80 | take);
      h[k] = Block::from_bytes(chunk) ^ h[k];
    }
    pi.encrypt_blocks(h, e, n);
    for (std::size_t k = 0; k < n; ++k) h[k] ^= e[k];
    i += take;
  }
  Block fin[2 * kMaxBatchWidth];
  for (std::size_t k = 0; k < n; ++k) {
    fin[2 * k] = h[k] ^ kOneBlock;
    fin[2 * k + 1] = h[k] ^ Block{0, 2};
  }
  pi.encrypt_blocks(fin, e, 2 * n);
  for (std::size_t k = 0; k < n; ++k) {
    const Block o0 = e[2 * k] ^ fin[2 * k];
    const Block o1 = e[2 * k + 1] ^ fin[2 * k + 1];
    o0.to_bytes(out[k].d.data());
    o1.to_bytes(out[k].d.data() + 16);
  }
}

RoDigest sha_ro(u64 tag, u64 index, std::span<const u8> data) {
  Sha256 h;
  h.update(&tag, sizeof(tag));
  h.update(&index, sizeof(index));
  h.update(data);
  return RoDigest{h.digest()};
}

// SHA-256 instances whose message (tag | index | row) fits one padded block
// run four at a time through the multi-buffer kernel. The padded block is
// exactly what the incremental Sha256 would compress: message bytes, 0x80,
// zeros, 64-bit big-endian bit length.
void sha_ro_batch(u64 tag, u64 index0, const u8* rows, std::size_t row_bytes,
                  std::size_t n, RoDigest* out, std::size_t width) {
  const auto& kt = simd::active_kernels();
  const std::size_t msg_len = 16 + row_bytes;
  std::size_t i = 0;
  if (kt.sha256_x4 != nullptr && width >= 4 && msg_len <= 55) {
    alignas(16) u8 blocks[4 * 64];
    u8 dig[4 * 32];
    const u64 bit_len = static_cast<u64>(msg_len) * 8;
    for (; i + 4 <= n; i += 4) {
      std::memset(blocks, 0, sizeof(blocks));
      for (std::size_t l = 0; l < 4; ++l) {
        u8* p = blocks + 64 * l;
        const u64 idx = index0 + i + l;
        std::memcpy(p, &tag, 8);
        std::memcpy(p + 8, &idx, 8);
        std::memcpy(p + 16, rows + (i + l) * row_bytes, row_bytes);
        p[msg_len] = 0x80;
        for (int b = 0; b < 8; ++b)
          p[56 + b] = static_cast<u8>(bit_len >> (56 - 8 * b));
      }
      kt.sha256_x4(blocks, dig);
      for (std::size_t l = 0; l < 4; ++l)
        std::memcpy(out[i + l].d.data(), dig + 32 * l, 32);
    }
  }
  for (; i < n; ++i)
    out[i] = sha_ro(tag, index0 + i,
                    std::span<const u8>(rows + i * row_bytes, row_bytes));
}

}  // namespace

RoMode ro_mode() { return g_mode.load(std::memory_order_relaxed); }

void set_ro_mode(RoMode mode) {
  if (g_used.load(std::memory_order_acquire) &&
      mode != g_mode.load(std::memory_order_relaxed))
    throw ProtocolError(
        "set_ro_mode: RO instantiation cannot change after first use "
        "(both parties hashed under the current mode)");
  g_mode.store(mode, std::memory_order_relaxed);
}

void reset_ro_mode_for_bench() {
  g_used.store(false, std::memory_order_release);
}

std::size_t ro_batch_width() {
  std::size_t w = g_batch_width.load(std::memory_order_relaxed);
  if (w == 0) {
    w = kDefaultBatchWidth;
    if (const char* env = std::getenv("ABNN2_RO_BATCH_WIDTH")) {
      const long v = std::atol(env);
      if (v >= 1 && v <= static_cast<long>(kMaxBatchWidth))
        w = static_cast<std::size_t>(v);
    }
    g_batch_width.store(w, std::memory_order_relaxed);
  }
  return w;
}

void set_ro_batch_width(std::size_t w) {
  if (w == 0) {
    g_batch_width.store(kDefaultBatchWidth, std::memory_order_relaxed);
    return;
  }
  ABNN2_CHECK_ARG(w <= kMaxBatchWidth, "batch width out of range");
  g_batch_width.store(w, std::memory_order_relaxed);
}

RoDigest ro_hash(u64 tag, u64 index, std::span<const u8> data) {
  mark_used();
  if (ro_mode() == RoMode::kFixedKeyAes) return aes_ro(tag, index, data);
  return sha_ro(tag, index, data);
}

void ro_hash_batch(u64 tag, u64 index0, const u8* rows, std::size_t row_bytes,
                   std::size_t n, RoDigest* out) {
  if (n == 0) return;
  mark_used();
  const std::size_t w = ro_batch_width();
  if (w == 1) {
    // Width 1 is the per-instance reference path (one independent ro_hash
    // per row), the baseline the lockstep chains are benchmarked against.
    for (std::size_t i = 0; i < n; ++i)
      out[i] = ro_hash(tag, index0 + i,
                       std::span<const u8>(rows + i * row_bytes, row_bytes));
    return;
  }
  if (ro_mode() == RoMode::kFixedKeyAes) {
    const Aes128& pi = fixed_key_aes();
    for (std::size_t i = 0; i < n; i += w)
      aes_ro_batch_chunk(pi, tag, index0 + i, rows + i * row_bytes, row_bytes,
                         std::min(w, n - i), out + i);
    return;
  }
  sha_ro_batch(tag, index0, rows, row_bytes, n, out, w);
}

}  // namespace abnn2
