// Random oracle used by the OT extension protocols.
//
// H(tag, i, q) hashes a domain-separation tag, the OT instance index and the
// code word q into 256 bits. Two interchangeable instantiations:
//   - kSha256 (default): SHA-256, the conservative random-oracle choice.
//   - kFixedKeyAes: a Davies-Meyer chain over the fixed-key AES permutation
//     (JustGarble-style circular-correlation-robust model); ~10x faster and
//     used by the benchmarks, matching what ABY/libOTe do in practice.
//
// The hot loops call ro_hash_batch(), which evaluates many instances at once
// so the kernel layer (src/simd/) can pipeline them: 8 Davies-Meyer chains
// interleaved through the 8-way AES unit, or 4 SHA-256 compressions in a
// 4-lane multi-buffer. Batching is an execution strategy only — the batch
// output is bit-identical to n single ro_hash calls for every batch width
// and dispatch target (asserted by tests), so wire transcripts never depend
// on how the pads were computed.
//
// Pads longer than 256 bits (the paper's multi-batch message packing,
// section 4.1.2) are derived by running AES-CTR keyed with the first 128 bits
// of the digest; this realizes the "output of the random oracle packs
// multiple multiplications" optimization quoted in section 4.1.3.
#pragma once

#include <span>
#include <vector>

#include "crypto/prg.h"
#include "crypto/sha256.h"

namespace abnn2 {

enum class RoMode { kSha256, kFixedKeyAes };

/// Process-wide RO instantiation. Both parties must agree, so the mode must
/// be chosen before the first hash: once any ro_hash/ro_hash_batch has run,
/// set_ro_mode throws ProtocolError on an attempt to *change* the mode
/// (setting the already-active mode stays a no-op). Benchmarks and tests
/// that intentionally A/B the two modes between self-contained runs use
/// ScopedRoMode / reset_ro_mode_for_bench().
RoMode ro_mode();
void set_ro_mode(RoMode mode);

/// Clears the first-use latch so the mode may be changed again. Strictly a
/// bench/test escape hatch for comparing modes between independent protocol
/// runs in one process — never call this mid-protocol.
void reset_ro_mode_for_bench();

/// RAII mode switch for benches/tests: unlocks, sets `mode`, and restores
/// the previous mode (unlocking again) on destruction.
class ScopedRoMode {
 public:
  explicit ScopedRoMode(RoMode mode) : prev_(ro_mode()) {
    reset_ro_mode_for_bench();
    set_ro_mode(mode);
  }
  ~ScopedRoMode() {
    reset_ro_mode_for_bench();
    set_ro_mode(prev_);
    reset_ro_mode_for_bench();
  }
  ScopedRoMode(const ScopedRoMode&) = delete;
  ScopedRoMode& operator=(const ScopedRoMode&) = delete;

 private:
  RoMode prev_;
};

/// 256-bit random-oracle output.
struct RoDigest {
  std::array<u8, 32> d{};

  Block block0() const { return Block::from_bytes(d.data()); }
  Block block1() const { return Block::from_bytes(d.data() + 16); }

  /// Low `l`-bit integer extracted from the digest (the paper's
  /// "take l bits of H_i0 as the value of s_i").
  u64 low_bits(std::size_t l) const {
    u64 v;
    std::memcpy(&v, d.data(), 8);
    return v & mask_l(l);
  }
};

/// H(tag, index, data).
RoDigest ro_hash(u64 tag, u64 index, std::span<const u8> data);

/// Batched oracle: out[i] = H(tag, index0 + i, rows[i*row_bytes ..
/// (i+1)*row_bytes)) for i in [0, n). `rows` holds n contiguous equal-length
/// rows — exactly the layout of a BitMatrix row range, which is what the
/// IKNP/KK13 pad loops feed it. Bit-identical to n ro_hash calls.
void ro_hash_batch(u64 tag, u64 index0, const u8* rows, std::size_t row_bytes,
                   std::size_t n, RoDigest* out);

/// Internal batch width of ro_hash_batch in [1, 8]; defaults to 8 (or the
/// ABNN2_RO_BATCH_WIDTH environment variable). Width 1 degenerates to the
/// seed's per-instance path; the determinism tests sweep widths to prove the
/// transcript does not depend on it.
std::size_t ro_batch_width();
void set_ro_batch_width(std::size_t w);  // 0 restores the default

/// Expand a digest into `n` ring elements of `l` bits each (mask stream for
/// packed OT messages). Deterministic in the digest.
inline void ro_expand_u64(const RoDigest& dig, std::size_t l, u64* out,
                          std::size_t n) {
  if (n == 0) return;
  if (n == 1) {  // fast path: one element comes straight from the digest
    out[0] = dig.low_bits(l);
    return;
  }
  Prg prg(dig.block0(), /*stream_id=*/dig.d[16]);
  const u64 m = mask_l(l);
  for (std::size_t i = 0; i < n; ++i) out[i] = prg.next_u64() & m;
}

}  // namespace abnn2
