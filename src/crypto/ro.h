// Random oracle used by the OT extension protocols.
//
// H(tag, i, q) hashes a domain-separation tag, the OT instance index and the
// code word q into 256 bits. Two interchangeable instantiations:
//   - kSha256 (default): SHA-256, the conservative random-oracle choice.
//   - kFixedKeyAes: a Davies-Meyer chain over the fixed-key AES permutation
//     (JustGarble-style circular-correlation-robust model); ~10x faster and
//     used by the benchmarks, matching what ABY/libOTe do in practice.
//
// Pads longer than 256 bits (the paper's multi-batch message packing,
// section 4.1.2) are derived by running AES-CTR keyed with the first 128 bits
// of the digest; this realizes the "output of the random oracle packs
// multiple multiplications" optimization quoted in section 4.1.3.
#pragma once

#include <span>
#include <vector>

#include "crypto/prg.h"
#include "crypto/sha256.h"

namespace abnn2 {

enum class RoMode { kSha256, kFixedKeyAes };

/// Process-wide RO instantiation. Both parties must agree (benchmarks set it
/// once before running the protocol threads).
RoMode ro_mode();
void set_ro_mode(RoMode mode);

/// 256-bit random-oracle output.
struct RoDigest {
  std::array<u8, 32> d{};

  Block block0() const { return Block::from_bytes(d.data()); }
  Block block1() const { return Block::from_bytes(d.data() + 16); }

  /// Low `l`-bit integer extracted from the digest (the paper's
  /// "take l bits of H_i0 as the value of s_i").
  u64 low_bits(std::size_t l) const {
    u64 v;
    std::memcpy(&v, d.data(), 8);
    return v & mask_l(l);
  }
};

/// H(tag, index, data).
RoDigest ro_hash(u64 tag, u64 index, std::span<const u8> data);

/// Expand a digest into `n` ring elements of `l` bits each (mask stream for
/// packed OT messages). Deterministic in the digest.
inline void ro_expand_u64(const RoDigest& dig, std::size_t l, u64* out,
                          std::size_t n) {
  if (n == 0) return;
  if (n == 1) {  // fast path: one element comes straight from the digest
    out[0] = dig.low_bits(l);
    return;
  }
  Prg prg(dig.block0(), /*stream_id=*/dig.d[16]);
  const u64 m = mask_l(l);
  for (std::size_t i = 0; i < n; ++i) out[i] = prg.next_u64() & m;
}

}  // namespace abnn2
