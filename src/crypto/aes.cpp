#include "crypto/aes.h"

#include "simd/kernels.h"

namespace abnn2 {

// All AES work routes through the runtime-dispatched kernel table
// (src/simd/): AES-NI with 8-way round interleaving when CPUID reports it,
// scalar S-box fallback otherwise. Both key schedules produce byte-identical
// round keys, so an Aes128 object keyed under one dispatch target encrypts
// correctly under another.

void Aes128::set_key(Block key) {
  simd::active_kernels().aes128_key_expand(key, rk_.data());
}

Block Aes128::encrypt(Block pt) const {
  Block out;
  simd::active_kernels().aes128_encrypt_blocks(rk_.data(), &pt, &out, 1);
  return out;
}

void Aes128::encrypt_blocks(const Block* in, Block* out, std::size_t n) const {
  simd::active_kernels().aes128_encrypt_blocks(rk_.data(), in, out, n);
}

const Aes128& fixed_key_aes() {
  // Arbitrary published constant ("expand 32-byte k" style nothing-up-my-
  // sleeve value).
  static const Aes128 kFixed{Block{0x6170786593810fabull, 0x2443dd2c0e47b5f6ull}};
  return kFixed;
}

}  // namespace abnn2
