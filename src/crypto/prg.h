// Pseudo-random generator (AES-128 in CTR mode) and system randomness.
//
// Every protocol object takes its randomness from a Prg so tests can run
// deterministically from fixed seeds while production seeds from the OS.
#pragma once

#include <vector>

#include "common/block.h"
#include "crypto/aes.h"

namespace abnn2 {

/// Cryptographically strong PRG: AES-128-CTR keyed by a 128-bit seed.
class Prg {
 public:
  /// Seeded from OS entropy.
  Prg();
  /// Deterministic stream from `seed` (domain-separated by `stream_id`).
  explicit Prg(Block seed, u64 stream_id = 0);

  void reseed(Block seed, u64 stream_id = 0);

  /// Fill `n` bytes.
  void bytes(void* out, std::size_t n);

  Block next_block();
  u64 next_u64();
  /// Uniform in [0, 2^l) for l in [0,64].
  u64 next_bits(std::size_t l) { return next_u64() & mask_l(l); }
  /// Uniform in [0, bound) by rejection sampling (bound > 0).
  u64 next_below(u64 bound);
  bool next_bit() { return next_u64() & 1; }

  void next_blocks(Block* out, std::size_t n);
  std::vector<Block> blocks(std::size_t n) {
    std::vector<Block> v(n);
    next_blocks(v.data(), n);
    return v;
  }

  /// Fresh random 128-bit value (convenience for seeds/keys).
  static Block random_block();

 private:
  void refill();

  Aes128 aes_;
  u64 counter_ = 0;
  u64 stream_id_ = 0;
  static constexpr std::size_t kBuf = 32;  // blocks per refill
  std::array<Block, kBuf> buf_;
  std::size_t buf_pos_ = kBuf;            // in blocks
  std::size_t byte_pos_ = 16;             // within current block for bytes()
};

}  // namespace abnn2
