// Tests for secret sharing, bit packing, fragment schemes, quantization and
// the plaintext model reference.
#include <gtest/gtest.h>

#include "common/packing.h"
#include "core/inference.h"
#include "nn/model.h"
#include "nn/quantize.h"
#include "ss/additive.h"

namespace abnn2 {
namespace {

using nn::FragScheme;
using nn::MatF;
using nn::MatU64;
using ss::Ring;

class RingTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingTest, ArithmeticWraps) {
  Ring r(GetParam());
  EXPECT_EQ(r.add(r.mask(), 1), 0u);
  EXPECT_EQ(r.sub(0, 1), r.mask());
  EXPECT_EQ(r.mul(r.mask(), r.mask()), 1u);  // (-1)*(-1) = 1
  EXPECT_EQ(r.neg(0), 0u);
}

TEST_P(RingTest, SignedRoundTrip) {
  Ring r(GetParam());
  // Compute the signed bounds via unsigned math: at width 64 the naive
  // `(i64{1} << 63) - 1` overflows (UB), while 2^63 - 1 is fine in u64.
  const u64 uhalf = u64{1} << (GetParam() - 1);
  const i64 hi = static_cast<i64>(uhalf - 1);  // 2^(w-1) - 1
  const i64 lo = -hi - 1;                      // -2^(w-1)
  for (i64 v : {i64{0}, i64{1}, i64{-1}, hi, lo}) {
    EXPECT_EQ(r.to_signed(r.from_signed(v)), v) << v;
  }
  EXPECT_TRUE(r.msb(r.from_signed(-1)));
  EXPECT_FALSE(r.msb(r.from_signed(1)));
}

TEST_P(RingTest, ShareReconstructIdentity) {
  Ring r(GetParam());
  Prg prg(Block{1, GetParam()});
  for (int i = 0; i < 50; ++i) {
    const u64 x = r.random(prg);
    const auto p = ss::share(r, x, prg);
    EXPECT_EQ(ss::reconst(r, p.s0, p.s1), x);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, RingTest, ::testing::Values(2, 8, 13, 32, 64));

TEST(Ring, RejectsBadWidth) {
  EXPECT_THROW(Ring(0), std::invalid_argument);
  EXPECT_THROW(Ring(65), std::invalid_argument);
}

TEST(Ring, ShareMarginalIsUniformish) {
  // Each share alone carries no information: check the first share of a
  // constant secret covers the whole small ring.
  Ring r(4);
  Prg prg(Block{2, 2});
  std::set<u64> seen;
  for (int i = 0; i < 400; ++i) seen.insert(ss::share(r, 7, prg).s0);
  EXPECT_EQ(seen.size(), 16u);
}

TEST(Ring, VectorShareHelpers) {
  Ring r(32);
  Prg prg(Block{3, 3});
  std::vector<u64> xs{1, 2, 3, 0xffffffff};
  auto [s0, s1] = ss::share_vec(r, xs, prg);
  EXPECT_EQ(ss::reconst_vec(r, s0, s1), xs);
  std::vector<u64> bad(3);
  EXPECT_THROW(ss::reconst_vec(r, s0, bad), std::invalid_argument);
}

class PackTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PackTest, RoundTrip) {
  const std::size_t l = GetParam();
  Prg prg(Block{4, l});
  std::vector<u64> vals(37);
  for (auto& v : vals) v = prg.next_bits(l);
  const auto packed = pack_bits(vals, l);
  EXPECT_EQ(packed.size(), bytes_for_bits(vals.size() * l));
  EXPECT_EQ(unpack_bits(packed, l, vals.size()), vals);
}

INSTANTIATE_TEST_SUITE_P(Widths, PackTest,
                         ::testing::Values(1, 2, 3, 7, 8, 9, 31, 32, 33, 63, 64));

TEST(Pack, TruncatedBufferThrows) {
  std::vector<u8> small(3);
  EXPECT_THROW(unpack_bits(small, 32, 2), ProtocolError);
}

// ---- fragment schemes -------------------------------------------------

struct SchemeCase {
  std::string spec;
  std::size_t gamma;
  u32 max_n;
};

class SchemeTest : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(SchemeTest, DecompositionIdentity) {
  const auto& p = GetParam();
  const FragScheme s = FragScheme::parse(p.spec);
  EXPECT_EQ(s.gamma(), p.gamma);
  EXPECT_EQ(s.max_n(), p.max_n);
  Ring ring(32);
  // For EVERY valid code: sum of fragment values == interpreted value.
  for (u64 code = 0; code < s.code_space(); ++code) {
    u64 sum = 0;
    for (std::size_t f = 0; f < s.gamma(); ++f)
      sum = ring.add(sum, s.value(f, s.choice(code, f), ring));
    EXPECT_EQ(sum, s.interpret_ring(code, ring)) << p.spec << " code " << code;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperTuples, SchemeTest,
    ::testing::Values(SchemeCase{"(1,1,1,1,1,1,1,1)", 8, 2},
                      SchemeCase{"(2,2,2,2)", 4, 4},
                      SchemeCase{"(3,3,2)", 3, 8}, SchemeCase{"(4,4)", 2, 16},
                      SchemeCase{"(2,2,2)", 3, 4}, SchemeCase{"(3,3)", 2, 8},
                      SchemeCase{"(2,2)", 2, 4}, SchemeCase{"(4)", 1, 16},
                      SchemeCase{"(2,1)", 2, 4}, SchemeCase{"(3)", 1, 8},
                      SchemeCase{"s(2,2,2,2)", 4, 4},
                      SchemeCase{"s(3,3,2)", 3, 8}, SchemeCase{"s(2,1)", 2, 4},
                      SchemeCase{"ternary", 1, 3},
                      SchemeCase{"binary", 1, 2}));

TEST(FragScheme, UnsignedInterpretation) {
  const FragScheme s = FragScheme::parse("(2,2)");
  EXPECT_EQ(s.eta(), 4u);
  EXPECT_FALSE(s.is_signed());
  EXPECT_EQ(s.interpret(0), 0);
  EXPECT_EQ(s.interpret(15), 15);
  EXPECT_EQ(s.interpret(9), 9);
  // Low fragment first: code 9 = 0b1001 -> low frag 0b01=1, high frag 0b10=2.
  EXPECT_EQ(s.choice(9, 0), 1u);
  EXPECT_EQ(s.choice(9, 1), 2u);
}

TEST(FragScheme, SignedInterpretation) {
  const FragScheme s = FragScheme::parse("s(2,2)");
  EXPECT_TRUE(s.is_signed());
  EXPECT_EQ(s.interpret(15), -1);  // 0b1111 = -1 in 4-bit two's complement
  EXPECT_EQ(s.interpret(8), -8);
  EXPECT_EQ(s.interpret(7), 7);
}

TEST(FragScheme, TernaryAndBinary) {
  const FragScheme t = FragScheme::ternary();
  EXPECT_EQ(t.interpret(0), -1);
  EXPECT_EQ(t.interpret(1), 0);
  EXPECT_EQ(t.interpret(2), 1);
  EXPECT_EQ(t.code_space(), 3u);
  EXPECT_THROW(t.choice(3, 0), std::invalid_argument);
  const FragScheme b = FragScheme::binary();
  EXPECT_EQ(b.interpret(0), 0);
  EXPECT_EQ(b.interpret(1), 1);
}

TEST(FragScheme, ParseRejectsGarbage) {
  EXPECT_THROW(FragScheme::parse("nope"), std::invalid_argument);
  EXPECT_THROW(FragScheme::parse("()"), std::exception);
  EXPECT_THROW(FragScheme::unsigned_bits({}), std::invalid_argument);
  EXPECT_THROW(FragScheme::unsigned_bits({9}), std::invalid_argument);
}

// ---- quantization -------------------------------------------------------

TEST(Quantize, SignedSchemeRoundTripsWithinStep) {
  const FragScheme s = FragScheme::parse("s(2,2,2,2)");  // signed 8-bit
  MatF w(4, 4);
  Prg prg(Block{5, 5});
  for (auto& v : w.data())
    v = (static_cast<double>(prg.next_below(2000)) - 1000.0) / 500.0;
  const auto q = nn::quantize(w, s);
  const auto back = nn::dequantize(q, s);
  for (std::size_t i = 0; i < w.data().size(); ++i)
    EXPECT_NEAR(back.data()[i], w.data()[i], q.scale * 0.5 + 1e-12);
}

TEST(Quantize, BinaryAndTernaryCodes) {
  MatF w(1, 4);
  w.data() = {-1.0, -0.01, 0.01, 1.0};
  const auto b = nn::quantize(w, FragScheme::binary());
  EXPECT_EQ(b.codes.data(), (std::vector<u64>{0, 0, 1, 1}));
  const auto t = nn::quantize(w, FragScheme::ternary());
  EXPECT_EQ(t.codes.data()[0], 0u);  // strongly negative -> -1
  EXPECT_EQ(t.codes.data()[3], 2u);  // strongly positive -> +1
  EXPECT_EQ(t.codes.data()[1], 1u);  // small -> 0
}

TEST(Quantize, FixedPointEncoding) {
  Ring ring(32);
  EXPECT_EQ(nn::decode_fixed(nn::encode_fixed(0.5, 8, ring), 8, ring), 0.5);
  EXPECT_EQ(nn::decode_fixed(nn::encode_fixed(-1.25, 8, ring), 8, ring), -1.25);
  EXPECT_NEAR(nn::decode_fixed(nn::encode_fixed(0.123, 8, ring), 8, ring),
              0.123, 1.0 / 256);
}

// ---- model / plaintext inference ---------------------------------------

TEST(Model, MatmulCodesMatchesNaive) {
  Ring ring(32);
  const FragScheme s = FragScheme::parse("s(2,2)");
  Prg prg(Block{6, 6});
  MatU64 codes(3, 5);
  for (auto& c : codes.data()) c = prg.next_below(s.code_space());
  MatU64 x = nn::random_mat(5, 2, 32, prg);
  const MatU64 y = nn::matmul_codes(ring, codes, s, x);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t k = 0; k < 2; ++k) {
      u64 want = 0;
      for (std::size_t j = 0; j < 5; ++j)
        want = ring.add(want, ring.mul(s.interpret_ring(codes.at(i, j), ring),
                                       x.at(j, k)));
      EXPECT_EQ(y.at(i, k), want);
    }
}

TEST(Model, ReluMatchesSignedDefinition) {
  Ring ring(16);
  MatU64 y(1, 4);
  y.data() = {ring.from_signed(5), ring.from_signed(-5), 0,
              ring.from_signed(-32768)};
  nn::relu_inplace(ring, y);
  EXPECT_EQ(y.data(), (std::vector<u64>{5, 0, 0, 0}));
}

TEST(Model, Fig4ShapesAndDeterminism) {
  Ring ring(32);
  const auto m1 = nn::fig4_model(ring, FragScheme::parse("(2,2,2,2)"), Block{1, 2});
  const auto m2 = nn::fig4_model(ring, FragScheme::parse("(2,2,2,2)"), Block{1, 2});
  EXPECT_EQ(m1.layers.size(), 3u);
  EXPECT_EQ(m1.input_dim(), 784u);
  EXPECT_EQ(m1.output_dim(), 10u);
  EXPECT_EQ(m1.num_weights(), 784u * 128 + 128 * 128 + 128 * 10);
  EXPECT_EQ(m1.layers[0].codes, m2.layers[0].codes);
}

TEST(Model, InferPlainShapeAndArgmax) {
  Ring ring(32);
  const auto model =
      nn::random_model(ring, FragScheme::ternary(), {6, 4, 3}, Block{7, 7});
  const auto x = nn::synthetic_images(6, 5, 8, ring, Block{8, 8});
  const auto logits = nn::infer_plain(model, x);
  EXPECT_EQ(logits.rows(), 3u);
  EXPECT_EQ(logits.cols(), 5u);
  const auto cls = nn::argmax_logits(ring, logits);
  EXPECT_EQ(cls.size(), 5u);
  for (auto c : cls) EXPECT_LT(c, 3u);
}

TEST(Model, ValidateCatchesBadShapes) {
  Ring ring(32);
  nn::Model m(ring);
  nn::FcLayer l1{MatU64(4, 6), {}, FragScheme::binary(), {}, {}};
  nn::FcLayer l2{MatU64(3, 5), {}, FragScheme::binary(), {}, {}};  // 5 != 4
  m.layers = {l1, l2};
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Model, ValidateCatchesBadCodes) {
  Ring ring(32);
  nn::Model m(ring);
  nn::FcLayer l{MatU64(2, 2), {}, FragScheme::ternary(), {}, {}};
  l.codes.at(0, 0) = 3;  // ternary codes are 0..2
  m.layers = {l};
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Model, SyntheticImagesAreFixedPointFractions) {
  Ring ring(32);
  const auto x = nn::synthetic_images(10, 3, 8, ring, Block{9, 9});
  for (u64 v : x.data()) EXPECT_LT(v, 256u);
  EXPECT_THROW(nn::synthetic_images(4, 2, 32, ring, Block{1, 1}),
               std::invalid_argument);
}

TEST(TruncateShare, RecombinesToTruncatedValue) {
  // SecureML local truncation: correct up to +-1 with overwhelming
  // probability when |x| << 2^l.
  Ring ring(32);
  Prg prg(Block{10, 1});
  for (int it = 0; it < 200; ++it) {
    const i64 x = static_cast<i64>(prg.next_below(1 << 20)) - (1 << 19);
    const auto sh = ss::share(ring, ring.from_signed(x), prg);
    const u64 t0 = core::truncate_share(ring, sh.s0, 8, 0);
    const u64 t1 = core::truncate_share(ring, sh.s1, 8, 1);
    const i64 got = ring.to_signed(ring.add(t0, t1));
    EXPECT_NEAR(static_cast<double>(got), static_cast<double>(x >> 8), 1.0);
  }
}

}  // namespace
}  // namespace abnn2
