// Tests for the transport layer: in-memory channel, TCP channel, framing
// (sequence numbers + CRC32C), deterministic fault injection and the chaos
// sweep, socket deadlines, reconnect-and-resume, traffic metering / round
// counting, the LAN/WAN network model and the two-party runner's failure
// handling.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <future>
#include <set>
#include <thread>
#include <tuple>

#include "core/inference.h"
#include "crypto/sha256.h"
#include "nn/model_io.h"
#include "net/fault_channel.h"
#include "net/framed_channel.h"
#include "net/mem_channel.h"
#include "net/party_runner.h"
#include "net/socket_channel.h"

namespace abnn2 {
namespace {

TEST(MemChannel, RoundTripsBytesInOrder) {
  auto [a, b] = MemChannel::make_pair();
  const std::string msg = "hello protocol";
  a->send(msg.data(), msg.size());
  a->send_u64(42);
  std::string got(msg.size(), '\0');
  b->recv(got.data(), got.size());
  EXPECT_EQ(got, msg);
  EXPECT_EQ(b->recv_u64(), 42u);
}

TEST(MemChannel, DuplexIsIndependent) {
  auto [a, b] = MemChannel::make_pair();
  a->send_u64(1);
  b->send_u64(2);
  EXPECT_EQ(a->recv_u64(), 2u);
  EXPECT_EQ(b->recv_u64(), 1u);
}

TEST(MemChannel, BlockingRecvWakesOnSend) {
  auto [a, b] = MemChannel::make_pair();
  std::atomic<bool> got{false};
  std::thread t([&] {
    EXPECT_EQ(b->recv_u64(), 77u);
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got);
  a->send_u64(77);
  t.join();
  EXPECT_TRUE(got);
}

TEST(MemChannel, CloseUnblocksPeerWithError) {
  auto [a, b] = MemChannel::make_pair();
  std::thread t([&] { a->close(); });
  EXPECT_THROW(b->recv_u64(), ChannelError);
  t.join();
  EXPECT_THROW(b->send_u64(1), ChannelError);
}

TEST(MemChannel, StatsCountBytesAndMessages) {
  auto [a, b] = MemChannel::make_pair();
  a->send_u64(1);
  a->send_u64(2);
  b->recv_u64();
  b->recv_u64();
  EXPECT_EQ(a->stats().bytes_sent, 16u);
  EXPECT_EQ(a->stats().messages_sent, 2u);
  EXPECT_EQ(b->stats().bytes_received, 16u);
  a->reset_stats();
  EXPECT_EQ(a->stats().bytes_sent, 0u);
}

TEST(MemChannel, RoundsCountDirectionFlips) {
  // A round is counted at an endpoint when it receives after having sent.
  auto res = run_two_parties(
      [&](Channel& ch) {
        ch.send_u64(1);        // send
        ch.recv_u64();         // flip -> round 1
        ch.send_u64(3);        // send
        ch.send_u64(4);
        ch.recv_u64();         // flip -> round 2
        return ch.stats().rounds;
      },
      [&](Channel& ch) {
        ch.recv_u64();         // no send yet -> no round
        ch.send_u64(2);
        ch.recv_u64();
        ch.recv_u64();         // flip -> round 1
        ch.send_u64(5);
        return ch.stats().rounds;
      });
  EXPECT_EQ(res.party0, 2u);
  EXPECT_EQ(res.party1, 1u);
}

TEST(MemChannel, MessageHelpersRoundTrip) {
  auto [a, b] = MemChannel::make_pair();
  std::vector<u8> payload{1, 2, 3, 4, 5};
  a->send_msg(payload);
  EXPECT_EQ(b->recv_msg(), payload);
  a->send_msg(std::vector<u8>{});
  EXPECT_TRUE(b->recv_msg().empty());
}

TEST(MemChannel, OversizedMessageRejected) {
  auto [a, b] = MemChannel::make_pair();
  a->send_u64(u64{1} << 40);  // absurd length prefix
  EXPECT_THROW(b->recv_msg(/*max_size=*/1 << 20), ProtocolError);
}

TEST(NetworkModel, SimulatedTimeComposition) {
  ChannelStats s0, s1;
  s0.bytes_sent = 9'000'000;  // exactly 1 s at 9 MB/s
  s0.rounds = 2;
  s1.rounds = 3;
  const double t = kWanTable3.simulate(0.5, s0, s1);
  // Round count is max(a, b): both endpoints observe the same flips, so the
  // old sum (5 here) charged each round trip nearly twice.
  EXPECT_NEAR(t, 0.5 + 1.0 + 3 * 0.072, 1e-9);
  // LAN is strictly faster than WAN for the same traffic.
  EXPECT_LT(kLan.simulate(0.5, s0, s1), t);
}

TEST(NetworkModel, OnePingPongCostsExactlyOneRtt) {
  // One send + one recv on each side: a single round trip, so the simulated
  // time must include exactly one RTT on top of the transfer time.
  auto res = run_two_parties(
      [](Channel& ch) {
        ch.send_u64(1);
        return ch.recv_u64();
      },
      [](Channel& ch) {
        const u64 v = ch.recv_u64();
        ch.send_u64(v + 1);
        return v;
      });
  EXPECT_EQ(res.stats0.rounds, 1u);
  EXPECT_EQ(res.stats1.rounds, 0u);
  const NetworkModel net{1.0e9, 0.040, "test"};
  const double transfer = 16.0 / 1.0e9;
  EXPECT_NEAR(net.simulate(0.0, res.stats0, res.stats1), transfer + 0.040,
              1e-12);
}

TEST(NetworkModel, SustainedPingPongIsNotDoubleCounted) {
  // k request/response exchanges cost k RTTs. The initiator counts k flips,
  // the responder k-1; summing (2k-1) was the accounting bug.
  constexpr int kExchanges = 3;
  auto res = run_two_parties(
      [](Channel& ch) {
        for (int i = 0; i < kExchanges; ++i) {
          ch.send_u64(static_cast<u64>(i));
          ch.recv_u64();
        }
        return 0;
      },
      [](Channel& ch) {
        for (int i = 0; i < kExchanges; ++i) {
          const u64 v = ch.recv_u64();
          ch.send_u64(v);
        }
        return 0;
      });
  EXPECT_EQ(res.stats0.rounds, 3u);
  EXPECT_EQ(res.stats1.rounds, 2u);
  const NetworkModel net{1.0e9, 0.040, "test"};
  const double transfer = 48.0 / 1.0e9;
  EXPECT_NEAR(net.simulate(0.0, res.stats0, res.stats1),
              transfer + kExchanges * 0.040, 1e-12);
}

TEST(PartyRunner, PropagatesExceptionsFromEitherParty) {
  EXPECT_THROW(run_two_parties(
                   [](Channel&) -> int { throw ProtocolError("boom0"); },
                   [](Channel& ch) {
                     ch.recv_u64();  // blocked until peer failure closes pipe
                     return 0;
                   }),
               ProtocolError);
  EXPECT_THROW(run_two_parties(
                   [](Channel& ch) {
                     ch.recv_u64();
                     return 0;
                   },
                   [](Channel&) -> int { throw ProtocolError("boom1"); }),
               ProtocolError);
}

TEST(PartyRunner, ReturnsBothResultsAndStats) {
  auto res = run_two_parties(
      [](Channel& ch) {
        ch.send_u64(10);
        return std::string("server");
      },
      [](Channel& ch) { return ch.recv_u64(); });
  EXPECT_EQ(res.party0, "server");
  EXPECT_EQ(res.party1, 10u);
  EXPECT_EQ(res.total_comm_bytes(), 8u);
  EXPECT_GE(res.wall_seconds, 0.0);
}

TEST(SocketChannel, LoopbackRoundTrip) {
  constexpr u16 port = 19471;
  std::unique_ptr<SocketChannel> srv;
  std::thread t([&] { srv = SocketChannel::listen(port); });
  auto cli = SocketChannel::connect("127.0.0.1", port);
  t.join();

  cli->send_u64(123);
  EXPECT_EQ(srv->recv_u64(), 123u);
  std::vector<u8> big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<u8>(i);
  srv->send_msg(big);
  EXPECT_EQ(cli->recv_msg(), big);
  EXPECT_EQ(cli->stats().bytes_sent, 8u);
}

TEST(SocketChannel, PeerCloseRaises) {
  constexpr u16 port = 19472;
  std::unique_ptr<SocketChannel> srv;
  std::thread t([&] { srv = SocketChannel::listen(port); });
  auto cli = SocketChannel::connect("127.0.0.1", port);
  t.join();
  srv.reset();  // close server side
  EXPECT_THROW(cli->recv_u64(), ChannelError);
}

TEST(SocketChannel, ConnectToNothingEventuallyFails) {
  SocketOptions opts;
  opts.connect_timeout_ms = 200;  // fail fast: nothing listens on port 1
  EXPECT_THROW(SocketChannel::connect("127.0.0.1", 1, opts), ChannelTimeout);
}

TEST(SocketChannel, BadAddressRejected) {
  EXPECT_THROW(SocketChannel::connect("not-an-ip", 9999), ChannelError);
}

TEST(SocketListener, EphemeralPortAndMultipleAccepts) {
  SocketListener listener(0);  // kernel-assigned port
  ASSERT_NE(listener.port(), 0);
  for (int round = 0; round < 2; ++round) {
    auto fut = std::async(std::launch::async, [&] {
      return SocketChannel::connect("127.0.0.1", listener.port());
    });
    auto srv = listener.accept();
    auto cli = fut.get();
    cli->send_u64(100 + static_cast<u64>(round));
    EXPECT_EQ(srv->recv_u64(), 100u + static_cast<u64>(round));
  }
}

TEST(SocketListener, AcceptTimesOut) {
  SocketListener listener(0);
  SocketOptions opts;
  opts.accept_timeout_ms = 50;
  EXPECT_THROW(listener.accept(opts), ChannelTimeout);
}

TEST(SocketChannel, RecvTimesOutOnSilentPeer) {
  SocketListener listener(0);
  SocketOptions opts;
  opts.recv_timeout_ms = 50;
  auto fut = std::async(std::launch::async, [&] {
    return SocketChannel::connect("127.0.0.1", listener.port(), opts);
  });
  auto srv = listener.accept(opts);
  auto cli = fut.get();
  EXPECT_THROW(cli->recv_u64(), ChannelTimeout);  // server never sends
  srv->send_u64(7);
  EXPECT_EQ(cli->recv_u64(), 7u);  // channel still usable after a timeout
}

// ---- framing ------------------------------------------------------------

TEST(FramedChannel, RoundTripsAcrossGranularities) {
  auto [a, b] = MemChannel::make_pair();
  FramedChannel fa(*a), fb(*b);
  fa.send_u64(11);
  std::vector<u8> big(100'000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<u8>(i * 7);
  fa.send_msg(big);
  EXPECT_EQ(fb.recv_u64(), 11u);
  EXPECT_EQ(fb.recv_msg(), big);
  // Receive granularity need not match send granularity.
  fa.send_u64(0x0102030405060708);
  u8 lo[4], hi[4];
  fb.recv(lo, 4);
  fb.recv(hi, 4);
  EXPECT_EQ(lo[0], 0x08);
  EXPECT_EQ(hi[3], 0x01);
  EXPECT_GE(fa.frames_sent(), 3u);
  EXPECT_EQ(fb.frames_received(), fa.frames_sent());
}

TEST(FramedChannel, OversizedSendsAreSplit) {
  auto [a, b] = MemChannel::make_pair();
  FramedChannel fa(*a, /*max_frame=*/1024);
  FramedChannel fb(*b, /*max_frame=*/1024);
  std::vector<u8> big(10'000, 0xAB);
  fa.send(big.data(), big.size());
  std::vector<u8> got(big.size());
  fb.recv(got.data(), got.size());
  EXPECT_EQ(got, big);
  EXPECT_GE(fa.frames_sent(), 10u);
}

TEST(FramedChannel, PayloadCorruptionDetected) {
  auto [a, b] = MemChannel::make_pair();
  FramedChannel fa(*a);
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kCorruptRecv;
  plan.trigger_offset = FramedChannel::kHeaderBytes + 3;  // inside payload
  plan.bit_in_byte = 5;
  FaultInjectingChannel fc(*b, plan);
  FramedChannel fb(fc);
  fa.send_u64(0xDEAD);
  try {
    fb.recv_u64();
    FAIL() << "corrupted payload was not detected";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

TEST(FramedChannel, HeaderCorruptionDetectedBeforeLenIsTrusted) {
  auto [a, b] = MemChannel::make_pair();
  FramedChannel fa(*a);
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kCorruptRecv;
  plan.trigger_offset = 5;  // inside the length field of the first header
  plan.bit_in_byte = 7;     // a high bit: would inflate len by 2^31 if trusted
  FaultInjectingChannel fc(*b, plan);
  FramedChannel fb(fc);
  fa.send_u64(1);
  // Must throw instead of blocking forever on bytes that will never arrive.
  EXPECT_THROW(fb.recv_u64(), ProtocolError);
}

TEST(FramedChannel, PeerRestartDetectedViaSequenceNumbers) {
  auto [a, b] = MemChannel::make_pair();
  FramedChannel fb(*b);
  {
    FramedChannel fa(*a);
    fa.send_u64(1);
    EXPECT_EQ(fb.recv_u64(), 1u);
  }
  // A "restarted" sender begins a fresh stream at seq 0; the receiver
  // expects seq 1 and must flag the desync.
  FramedChannel fa2(*a);
  fa2.send_u64(2);
  EXPECT_THROW(fb.recv_u64(), ProtocolError);
}

TEST(FramedChannel, GarbageStreamRejected) {
  auto [a, b] = MemChannel::make_pair();
  FramedChannel fb(*b);
  std::vector<u8> junk(64, 0x5A);  // no valid frame magic
  a->send(junk.data(), junk.size());
  EXPECT_THROW(fb.recv_u64(), ProtocolError);
}

TEST(FramedChannel, FrameAboveReceiverLimitRejected) {
  auto [a, b] = MemChannel::make_pair();
  FramedChannel fa(*a);                        // default (large) max frame
  FramedChannel fb(*b, /*max_frame=*/1 << 10);  // strict receiver
  std::vector<u8> big(1 << 12, 1);
  fa.send(big.data(), big.size());
  EXPECT_THROW(fb.recv_u64(), ProtocolError);
}

// ---- fault injection ----------------------------------------------------

TEST(FaultPlan, DeterministicAndDiverse) {
  bool kinds_seen[6] = {};
  for (u64 seed = 0; seed < 64; ++seed) {
    const FaultPlan p = FaultPlan::from_seed(seed, 10'000);
    const FaultPlan q = FaultPlan::from_seed(seed, 10'000);
    EXPECT_EQ(p.kind, q.kind);
    EXPECT_EQ(p.trigger_offset, q.trigger_offset);
    EXPECT_EQ(p.bit_in_byte, q.bit_in_byte);
    EXPECT_EQ(p.delay_ms, q.delay_ms);
    EXPECT_LT(p.trigger_offset, 10'000u);
    EXPECT_LT(p.bit_in_byte, 8u);
    kinds_seen[static_cast<u32>(p.kind)] = true;
    EXPECT_FALSE(p.describe().empty());
  }
  for (bool seen : kinds_seen) EXPECT_TRUE(seen) << "64 seeds missed a kind";
}

TEST(FaultPlan, PerSessionPlansReplayAndDecorrelate) {
  // One base seed must replay exactly per session...
  for (u64 sid = 0; sid < 16; ++sid) {
    const FaultPlan p = FaultPlan::for_session(42, sid, 10'000, 10'000);
    const FaultPlan q = FaultPlan::for_session(42, sid, 10'000, 10'000);
    EXPECT_EQ(p.kind, q.kind);
    EXPECT_EQ(p.trigger_offset, q.trigger_offset);
  }
  // ...while different sessions draw independent faults (a concurrent chaos
  // run hits many kinds/offsets from a single replayable number).
  bool kinds_seen[6] = {};
  std::set<u64> offsets;
  for (u64 sid = 0; sid < 64; ++sid) {
    const FaultPlan p = FaultPlan::for_session(42, sid, 10'000, 10'000);
    kinds_seen[static_cast<u32>(p.kind)] = true;
    offsets.insert(p.trigger_offset);
  }
  int distinct_kinds = 0;
  for (bool seen : kinds_seen) distinct_kinds += seen ? 1 : 0;
  EXPECT_GE(distinct_kinds, 4) << "64 sessions drew too few fault kinds";
  EXPECT_GT(offsets.size(), 32u) << "per-session offsets are correlated";
}

TEST(FaultInjectingChannel, CutSendFailsThisEndpointAndUnblocksPeer) {
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kCutSend;
  plan.trigger_offset = 4;
  EXPECT_THROW(
      run_two_parties(
          [&](Channel& ch) {
            FaultInjectingChannel fc(ch, plan);
            fc.send_u64(1);  // cut mid-message
            return 0;
          },
          [&](Channel& ch) {
            ch.recv_u64();  // must unblock with an error, not hang
            return 0;
          }),
      ChannelError);
}

// ---- chaos sweep --------------------------------------------------------

// Full secure inference with a deterministic fault injected under the framed
// layer. Every seed must either complete with the exact plaintext result or
// surface a typed error (ChannelError / ProtocolError) on some party —
// never hang, never return a wrong answer.
TEST(Chaos, InferenceSurvivesSeedSweep) {
  using core::InferenceClient;
  using core::InferenceConfig;
  using core::InferenceServer;
  const ss::Ring ring(32);
  const auto model = nn::random_model(ring, nn::FragScheme::parse("s(2,2)"),
                                      {20, 12, 4}, Block{404, 7});
  const std::size_t batch = 2;
  const auto x = nn::synthetic_images(20, batch, 12, ring, Block{405, 8});
  const nn::MatU64 want = nn::infer_plain(model, x);
  InferenceConfig cfg(ring);

  // One run of the full stack: protocol -> FramedChannel ->
  // FaultInjectingChannel -> MemChannel. Returns per-endpoint traffic (bytes
  // through the fault layer) for calibrating trigger offsets.
  struct RunOut {
    u64 server_sent = 0, server_recv = 0, client_sent = 0, client_recv = 0;
    bool ok = false;
    bool fired = false;
  };
  const auto run_once = [&](FaultPlan sp, FaultPlan cp) {
    RunOut out;
    InferenceServer server(model, cfg);
    InferenceClient client(cfg);
    auto res = run_two_parties(
        [&](Channel& ch) {
          FaultInjectingChannel fc(ch, sp);
          FramedChannel f(fc);
          server.run_offline(f);
          server.run_online(f);
          return std::tuple{fc.stats().bytes_sent, fc.stats().bytes_received,
                            fc.fired()};
        },
        [&](Channel& ch) {
          FaultInjectingChannel fc(ch, cp);
          FramedChannel f(fc);
          client.run_offline(f, batch);
          auto logits = client.run_online(f, x);
          EXPECT_EQ(logits, want) << "fault produced a WRONG result: "
                                  << sp.describe() << " / " << cp.describe();
          return std::tuple{fc.stats().bytes_sent, fc.stats().bytes_received,
                            fc.fired(), logits == want};
        });
    out.server_sent = std::get<0>(res.party0);
    out.server_recv = std::get<1>(res.party0);
    out.client_sent = std::get<0>(res.party1);
    out.client_recv = std::get<1>(res.party1);
    out.fired = std::get<2>(res.party0) || std::get<2>(res.party1);
    out.ok = std::get<3>(res.party1);
    return out;
  };

  // Calibration: a clean run measures per-endpoint, per-direction traffic.
  const RunOut clean = run_once(FaultPlan{}, FaultPlan{});
  ASSERT_TRUE(clean.ok);
  ASSERT_GT(clean.server_sent, 0u);
  ASSERT_GT(clean.client_sent, 0u);

  int successes = 0, typed_failures = 0, faults_fired = 0;
  for (u64 seed = 1; seed <= 24; ++seed) {
    // Odd seeds fault the server endpoint, even seeds the client, so both
    // directions of every protocol phase fall inside some trigger window.
    FaultPlan sp, cp;
    if (seed % 2) {
      sp = FaultPlan::from_seed(seed, clean.server_sent, clean.server_recv);
    } else {
      cp = FaultPlan::from_seed(seed, clean.client_sent, clean.client_recv);
    }
    try {
      const RunOut out = run_once(sp, cp);
      EXPECT_TRUE(out.ok) << "seed " << seed;
      ++successes;
      faults_fired += out.fired ? 1 : 0;
    } catch (const ProtocolError&) {
      ++typed_failures;
      ++faults_fired;
    } catch (const ChannelError&) {
      ++typed_failures;
      ++faults_fired;
    }
  }
  // The sweep must exercise both outcomes.
  EXPECT_GE(successes, 1) << "every seed failed";
  EXPECT_GE(typed_failures, 1) << "no seed injected an effective fault";
  EXPECT_GE(faults_fired, 8);
}

// ---- reconnect and resume ----------------------------------------------

// Kills the client mid-online-phase over a real socket, then reconnects:
// the server must keep its offline triplet material, grant the resume, and
// the re-run batch must produce the exact plaintext result.
TEST(Reconnect, ClientResumesInterruptedBatchOverSockets) {
  using core::InferenceClient;
  using core::InferenceConfig;
  using core::InferenceServer;
  const ss::Ring ring(32);
  const auto model = nn::random_model(ring, nn::FragScheme::parse("s(2,2)"),
                                      {20, 12, 4}, Block{500, 3});
  const std::size_t batch = 2;
  const auto x = nn::synthetic_images(20, batch, 12, ring, Block{501, 4});
  const nn::MatU64 want = nn::infer_plain(model, x);
  InferenceConfig cfg(ring);

  // Calibrate: client send-bytes during the offline phase (deterministic for
  // a fixed model/config — message sizes depend only on shapes).
  u64 offline_send_bytes = 0;
  {
    InferenceServer server(model, cfg);
    InferenceClient client(cfg);
    run_two_parties(
        [&](Channel& ch) {
          FramedChannel f(ch);
          server.run_offline(f);
          server.run_online(f);
          return 0;
        },
        [&](Channel& ch) {
          FaultInjectingChannel fc(ch, FaultPlan{});
          FramedChannel f(fc);
          client.run_offline(f, batch);
          offline_send_bytes = fc.stats().bytes_sent;
          (void)client.run_online(f, x);
          return 0;
        });
    ASSERT_GT(offline_send_bytes, 0u);
  }

  SocketOptions opts;
  opts.accept_timeout_ms = 10'000;
  opts.recv_timeout_ms = 10'000;
  opts.connect_timeout_ms = 10'000;

  SocketListener listener(0);
  InferenceServer server(model, cfg);
  std::thread srv([&] {
    {
      auto s1 = listener.accept(opts);
      FramedChannel ch(*s1);
      try {
        server.run_offline(ch);
        server.run_online(ch);
        ADD_FAILURE() << "server finished a batch the client abandoned";
      } catch (const ChannelError&) {
      } catch (const ProtocolError&) {
      }
    }
    server.reset_session();
    EXPECT_TRUE(server.has_offline_material());
    auto s2 = listener.accept(opts);
    FramedChannel ch(*s2);
    server.run_offline(ch);
    server.run_online(ch);
  });

  InferenceClient client(cfg);
  {
    // Connection 1: the link dies partway into the online phase.
    FaultPlan cut;
    cut.kind = FaultPlan::Kind::kCutSend;
    cut.trigger_offset = offline_send_bytes + 100;
    auto sock = SocketChannel::connect("127.0.0.1", listener.port(), opts);
    FaultInjectingChannel fc(*sock, cut);
    FramedChannel ch(fc);
    client.run_offline(ch, batch);
    EXPECT_FALSE(client.resumed());
    EXPECT_THROW(client.run_online(ch, x), ChannelError);
    EXPECT_TRUE(client.has_offline_material());
  }
  // Connection 2: reconnect, resume, re-run the interrupted batch.
  client.reset_session();
  auto sock = SocketChannel::connect("127.0.0.1", listener.port(), opts);
  FramedChannel ch(*sock);
  client.run_offline(ch, batch);
  EXPECT_TRUE(client.resumed());
  const auto logits = client.run_online(ch, x);
  EXPECT_EQ(logits, want);
  srv.join();
  EXPECT_FALSE(server.has_offline_material());  // consumed by the success
}

// Regression: an interruption *inside* the offline phase leaves partial
// triplet material on both sides. Pairing a partial server half with a
// partial client half would produce silently wrong logits, so neither side
// may offer or grant a resume — the retried batch runs a full offline phase.
TEST(Reconnect, PartialOfflineMaterialIsNeverResumed) {
  using core::InferenceClient;
  using core::InferenceConfig;
  using core::InferenceServer;
  const ss::Ring ring(32);
  const auto model = nn::random_model(ring, nn::FragScheme::parse("s(2,2)"),
                                      {20, 12, 4}, Block{520, 3});
  const std::size_t batch = 2;
  const auto x = nn::synthetic_images(20, batch, 12, ring, Block{521, 4});
  const nn::MatU64 want = nn::infer_plain(model, x);
  InferenceConfig cfg(ring);

  u64 offline_send_bytes = 0;
  {
    InferenceServer server(model, cfg);
    InferenceClient client(cfg);
    run_two_parties(
        [&](Channel& ch) {
          FramedChannel f(ch);
          server.run_offline(f);
          server.run_online(f);
          return 0;
        },
        [&](Channel& ch) {
          FaultInjectingChannel fc(ch, FaultPlan{});
          FramedChannel f(fc);
          client.run_offline(f, batch);
          offline_send_bytes = fc.stats().bytes_sent;
          (void)client.run_online(f, x);
          return 0;
        });
    ASSERT_GT(offline_send_bytes, 0u);
  }

  SocketOptions opts;
  opts.accept_timeout_ms = 10'000;
  opts.recv_timeout_ms = 10'000;
  opts.connect_timeout_ms = 10'000;

  SocketListener listener(0);
  InferenceServer server(model, cfg);
  std::thread srv([&] {
    {
      auto s1 = listener.accept(opts);
      FramedChannel ch(*s1);
      try {
        server.run_offline(ch);
        ADD_FAILURE() << "offline phase survived a mid-phase cut";
      } catch (const ChannelError&) {
      } catch (const ProtocolError&) {
      }
    }
    server.reset_session();
    // Partial triplets are not resumable material.
    EXPECT_FALSE(server.has_offline_material());
    auto s2 = listener.accept(opts);
    FramedChannel ch(*s2);
    server.run_offline(ch);
    EXPECT_FALSE(server.last_resume_granted());
    server.run_online(ch);
  });

  InferenceClient client(cfg);
  {
    // Connection 1: the link dies three quarters into the offline phase.
    FaultPlan cut;
    cut.kind = FaultPlan::Kind::kCutSend;
    cut.trigger_offset = offline_send_bytes * 3 / 4;
    auto sock = SocketChannel::connect("127.0.0.1", listener.port(), opts);
    FaultInjectingChannel fc(*sock, cut);
    FramedChannel ch(fc);
    EXPECT_THROW(client.run_offline(ch, batch), ChannelError);
    EXPECT_FALSE(client.has_offline_material());
  }
  // Connection 2: no resume offered or granted; full offline, right answer.
  client.reset_session();
  auto sock = SocketChannel::connect("127.0.0.1", listener.port(), opts);
  FramedChannel ch(*sock);
  client.run_offline(ch, batch);
  EXPECT_FALSE(client.resumed());
  EXPECT_EQ(client.run_online(ch, x), want);
  srv.join();
}

// accept() retries transient errnos (EINTR, ECONNABORTED, fd pressure)
// instead of tearing down the listener; injected errors are consumed before
// the real accept so the sequence is deterministic.
TEST(SocketListener, AcceptRetriesTransientErrors) {
  SocketOptions opts;
  opts.accept_timeout_ms = 10'000;
  opts.connect_timeout_ms = 10'000;
  opts.recv_timeout_ms = 10'000;

  SocketListener listener(0);
  listener.inject_accept_errors({EINTR, ECONNABORTED, EINTR, EMFILE});
  std::thread cli([&, port = listener.port()] {
    auto c = SocketChannel::connect("127.0.0.1", port, opts);
    c->send_u64(7);
  });
  auto s = listener.accept(opts);  // must survive all four injected errors
  EXPECT_EQ(s->recv_u64(), 7u);
  cli.join();
}

// Sustained fd pressure (EMFILE storm) must surface as ChannelTimeout at the
// accept deadline, not as an unhandled error or a busy spin past it.
TEST(SocketListener, AcceptFdPressureRespectsDeadline) {
  SocketListener listener(0);
  listener.inject_accept_errors(std::vector<int>(200, EMFILE));
  // A queued connection makes poll() report readiness immediately, so the
  // deadline is consumed by the EMFILE backoff alone.
  SocketOptions copts;
  copts.connect_timeout_ms = 5'000;
  auto pending = SocketChannel::connect("127.0.0.1", listener.port(), copts);
  SocketOptions aopts;
  aopts.accept_timeout_ms = 200;
  EXPECT_THROW((void)listener.accept(aopts), ChannelTimeout);
}

// Model digest pinning: the handshake aborts when the server serves a
// different model than the client expects.
TEST(Handshake, ModelDigestPinRejectsWrongModel) {
  using core::InferenceClient;
  using core::InferenceConfig;
  using core::InferenceServer;
  const ss::Ring ring(32);
  const auto served = nn::random_model(ring, nn::FragScheme::parse("s(2,2)"),
                                       {10, 8, 4}, Block{600, 1});
  const auto expected = nn::random_model(ring, nn::FragScheme::parse("s(2,2)"),
                                         {10, 8, 4}, Block{600, 2});
  const auto bytes = nn::serialize_model(expected);
  InferenceConfig scfg(ring);
  InferenceConfig ccfg(ring);
  ccfg.expected_model_digest = Sha256::hash(bytes.data(), bytes.size());
  EXPECT_THROW(
      run_two_parties(
          [&](Channel& ch) {
            InferenceServer server(served, scfg);
            server.run_offline(ch);
            return 0;
          },
          [&](Channel& ch) {
            InferenceClient client(ccfg);
            client.run_offline(ch, 1);
            return 0;
          }),
      ProtocolError);
}

// Handshake diagnostics render wire constants as real hexadecimal (the old
// code glued decimal digits behind an "0x" prefix).
TEST(Handshake, BadMagicDiagnosticRendersHex) {
  using core::InferenceConfig;
  using core::InferenceServer;
  const ss::Ring ring(32);
  const auto model = nn::random_model(ring, nn::FragScheme::parse("s(2,2)"),
                                      {6, 4}, Block{700, 1});
  InferenceConfig cfg(ring);
  try {
    run_two_parties(
        [&](Channel& ch) {
          InferenceServer server(model, cfg);
          server.run_offline(ch);
          return 0;
        },
        [&](Channel& ch) {
          const u32 bad_magic = 0x00C0FFEE;
          ch.send(&bad_magic, 4);
          ch.recv_u64();  // server aborts; this throws ChannelError
          return 0;
        });
    FAIL() << "bad magic was accepted";
  } catch (const ProtocolError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("0x00c0ffee"), std::string::npos) << what;
    EXPECT_EQ(what.find("0x12648430"), std::string::npos)
        << "decimal digits behind a hex prefix: " << what;
  }
}

TEST(Handshake, VersionMismatchDiagnosticRendersHex) {
  using core::InferenceClient;
  using core::InferenceConfig;
  const ss::Ring ring(32);
  InferenceConfig cfg(ring);
  try {
    run_two_parties(
        [&](Channel& ch) {
          // Fake server: consume the client hello, answer with the right
          // magic but a bogus protocol version.
          u32 v32;
          ch.recv(&v32, 4);  // magic
          ch.recv(&v32, 4);  // version
          ch.recv_u64();     // ring bits
          ch.recv_u64();     // batch
          ch.recv_u64();     // flags
          const u32 magic = core::kHandshakeMagicServer;
          ch.send(&magic, 4);
          const u32 bogus_version = 0x00000099;
          ch.send(&bogus_version, 4);
          return 0;
        },
        [&](Channel& ch) {
          InferenceClient client(cfg);
          client.run_offline(ch, 1);
          return 0;
        });
    FAIL() << "version mismatch was accepted";
  } catch (const ProtocolError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("0x00000099"), std::string::npos) << what;
    EXPECT_NE(what.find(hex_u32(core::kProtocolVersion)), std::string::npos)
        << what;
  }
}

}  // namespace
}  // namespace abnn2
