// Tests for the transport layer: in-memory channel, TCP channel, traffic
// metering / round counting, the LAN/WAN network model and the two-party
// runner's failure handling.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/mem_channel.h"
#include "net/party_runner.h"
#include "net/socket_channel.h"

namespace abnn2 {
namespace {

TEST(MemChannel, RoundTripsBytesInOrder) {
  auto [a, b] = MemChannel::make_pair();
  const std::string msg = "hello protocol";
  a->send(msg.data(), msg.size());
  a->send_u64(42);
  std::string got(msg.size(), '\0');
  b->recv(got.data(), got.size());
  EXPECT_EQ(got, msg);
  EXPECT_EQ(b->recv_u64(), 42u);
}

TEST(MemChannel, DuplexIsIndependent) {
  auto [a, b] = MemChannel::make_pair();
  a->send_u64(1);
  b->send_u64(2);
  EXPECT_EQ(a->recv_u64(), 2u);
  EXPECT_EQ(b->recv_u64(), 1u);
}

TEST(MemChannel, BlockingRecvWakesOnSend) {
  auto [a, b] = MemChannel::make_pair();
  std::atomic<bool> got{false};
  std::thread t([&] {
    EXPECT_EQ(b->recv_u64(), 77u);
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got);
  a->send_u64(77);
  t.join();
  EXPECT_TRUE(got);
}

TEST(MemChannel, CloseUnblocksPeerWithError) {
  auto [a, b] = MemChannel::make_pair();
  std::thread t([&] { a->close(); });
  EXPECT_THROW(b->recv_u64(), ChannelError);
  t.join();
  EXPECT_THROW(b->send_u64(1), ChannelError);
}

TEST(MemChannel, StatsCountBytesAndMessages) {
  auto [a, b] = MemChannel::make_pair();
  a->send_u64(1);
  a->send_u64(2);
  b->recv_u64();
  b->recv_u64();
  EXPECT_EQ(a->stats().bytes_sent, 16u);
  EXPECT_EQ(a->stats().messages_sent, 2u);
  EXPECT_EQ(b->stats().bytes_received, 16u);
  a->reset_stats();
  EXPECT_EQ(a->stats().bytes_sent, 0u);
}

TEST(MemChannel, RoundsCountDirectionFlips) {
  // A round is counted at an endpoint when it receives after having sent.
  auto res = run_two_parties(
      [&](Channel& ch) {
        ch.send_u64(1);        // send
        ch.recv_u64();         // flip -> round 1
        ch.send_u64(3);        // send
        ch.send_u64(4);
        ch.recv_u64();         // flip -> round 2
        return ch.stats().rounds;
      },
      [&](Channel& ch) {
        ch.recv_u64();         // no send yet -> no round
        ch.send_u64(2);
        ch.recv_u64();
        ch.recv_u64();         // flip -> round 1
        ch.send_u64(5);
        return ch.stats().rounds;
      });
  EXPECT_EQ(res.party0, 2u);
  EXPECT_EQ(res.party1, 1u);
}

TEST(MemChannel, MessageHelpersRoundTrip) {
  auto [a, b] = MemChannel::make_pair();
  std::vector<u8> payload{1, 2, 3, 4, 5};
  a->send_msg(payload);
  EXPECT_EQ(b->recv_msg(), payload);
  a->send_msg(std::vector<u8>{});
  EXPECT_TRUE(b->recv_msg().empty());
}

TEST(MemChannel, OversizedMessageRejected) {
  auto [a, b] = MemChannel::make_pair();
  a->send_u64(u64{1} << 40);  // absurd length prefix
  EXPECT_THROW(b->recv_msg(/*max_size=*/1 << 20), ProtocolError);
}

TEST(NetworkModel, SimulatedTimeComposition) {
  ChannelStats s0, s1;
  s0.bytes_sent = 9'000'000;  // exactly 1 s at 9 MB/s
  s0.rounds = 2;
  s1.rounds = 3;
  const double t = kWanTable3.simulate(0.5, s0, s1);
  EXPECT_NEAR(t, 0.5 + 1.0 + 5 * 0.072, 1e-9);
  // LAN is strictly faster than WAN for the same traffic.
  EXPECT_LT(kLan.simulate(0.5, s0, s1), t);
}

TEST(PartyRunner, PropagatesExceptionsFromEitherParty) {
  EXPECT_THROW(run_two_parties(
                   [](Channel&) -> int { throw ProtocolError("boom0"); },
                   [](Channel& ch) {
                     ch.recv_u64();  // blocked until peer failure closes pipe
                     return 0;
                   }),
               ProtocolError);
  EXPECT_THROW(run_two_parties(
                   [](Channel& ch) {
                     ch.recv_u64();
                     return 0;
                   },
                   [](Channel&) -> int { throw ProtocolError("boom1"); }),
               ProtocolError);
}

TEST(PartyRunner, ReturnsBothResultsAndStats) {
  auto res = run_two_parties(
      [](Channel& ch) {
        ch.send_u64(10);
        return std::string("server");
      },
      [](Channel& ch) { return ch.recv_u64(); });
  EXPECT_EQ(res.party0, "server");
  EXPECT_EQ(res.party1, 10u);
  EXPECT_EQ(res.total_comm_bytes(), 8u);
  EXPECT_GE(res.wall_seconds, 0.0);
}

TEST(SocketChannel, LoopbackRoundTrip) {
  constexpr u16 port = 19471;
  std::unique_ptr<SocketChannel> srv;
  std::thread t([&] { srv = SocketChannel::listen(port); });
  auto cli = SocketChannel::connect("127.0.0.1", port);
  t.join();

  cli->send_u64(123);
  EXPECT_EQ(srv->recv_u64(), 123u);
  std::vector<u8> big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<u8>(i);
  srv->send_msg(big);
  EXPECT_EQ(cli->recv_msg(), big);
  EXPECT_EQ(cli->stats().bytes_sent, 8u);
}

TEST(SocketChannel, PeerCloseRaises) {
  constexpr u16 port = 19472;
  std::unique_ptr<SocketChannel> srv;
  std::thread t([&] { srv = SocketChannel::listen(port); });
  auto cli = SocketChannel::connect("127.0.0.1", port);
  t.join();
  srv.reset();  // close server side
  EXPECT_THROW(cli->recv_u64(), ChannelError);
}

TEST(SocketChannel, ConnectToNothingEventuallyFails) {
  EXPECT_THROW(SocketChannel::connect("127.0.0.1", 1), ChannelError);
}

TEST(SocketChannel, BadAddressRejected) {
  EXPECT_THROW(SocketChannel::connect("not-an-ip", 9999), ChannelError);
}

}  // namespace
}  // namespace abnn2
