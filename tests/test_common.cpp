// Tests for src/common: Block, BitVec, BitMatrix, serialization.
#include <gtest/gtest.h>

#include "common/bitmatrix.h"
#include "common/bitvec.h"
#include "common/block.h"
#include "common/crc32c.h"
#include "common/packing.h"
#include "common/serial.h"
#include "crypto/prg.h"

namespace abnn2 {
namespace {

TEST(Block, XorAndEquality) {
  Block a{0x0123456789abcdefull, 0xfedcba9876543210ull};
  Block b{0xffffffffffffffffull, 0x0ull};
  EXPECT_EQ((a ^ b).hi(), ~a.hi());
  EXPECT_EQ((a ^ b).lo(), a.lo());
  EXPECT_EQ(a ^ b ^ b, a);
  EXPECT_NE(a, b);
  EXPECT_EQ((a & kZeroBlock), kZeroBlock);
  EXPECT_EQ((a & kAllOneBlock), a);
}

TEST(Block, BitAccess) {
  Block b = kZeroBlock;
  b.set_bit(0, true);
  EXPECT_TRUE(b.lsb());
  b.set_bit(127, true);
  EXPECT_TRUE(b.bit(127));
  EXPECT_EQ(b.hi(), u64{1} << 63);
  b.set_bit(127, false);
  EXPECT_EQ(b.hi(), 0u);
}

TEST(Block, BytesRoundTrip) {
  Prg prg(Block{1, 2});
  for (int i = 0; i < 16; ++i) {
    Block b = prg.next_block();
    u8 raw[16];
    b.to_bytes(raw);
    EXPECT_EQ(Block::from_bytes(raw), b);
  }
}

TEST(Block, GfDoubleMatchesShiftForSmall) {
  Block one = kOneBlock;
  Block two = one.gf_double();
  EXPECT_EQ(two, (Block{0, 2}));
  // Doubling the top bit wraps into the reduction polynomial 0x87.
  Block top{u64{1} << 63, 0};
  EXPECT_EQ(top.gf_double(), (Block{0, 0x87}));
}

TEST(Block, HexFormat) {
  EXPECT_EQ(kZeroBlock.hex(), std::string(32, '0'));
  EXPECT_EQ((Block{0, 1}).hex(), "00000000000000000000000000000001");
}

TEST(BitVec, SetGetResize) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.popcount(), 0u);
  v.set(0, true);
  v.set(129, true);
  EXPECT_TRUE(v[0]);
  EXPECT_TRUE(v[129]);
  EXPECT_FALSE(v[64]);
  EXPECT_EQ(v.popcount(), 2u);
  v.resize(1);
  EXPECT_EQ(v.popcount(), 1u);
}

TEST(BitVec, XorAnd) {
  BitVec a(65), b(65);
  a.set(3, true);
  a.set(64, true);
  b.set(3, true);
  b.set(10, true);
  BitVec x = a ^ b;
  EXPECT_FALSE(x[3]);
  EXPECT_TRUE(x[10]);
  EXPECT_TRUE(x[64]);
  BitVec n = a & b;
  EXPECT_EQ(n.popcount(), 1u);
  EXPECT_TRUE(n[3]);
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec v(8);
  EXPECT_THROW(v.get(8), std::invalid_argument);
  EXPECT_THROW(v.set(100, true), std::invalid_argument);
  BitVec w(9);
  EXPECT_THROW(v ^= w, std::invalid_argument);
}

TEST(BitVec, BytesRoundTrip) {
  Prg prg(Block{7, 7});
  std::vector<u8> raw(17);
  prg.bytes(raw.data(), raw.size());
  BitVec v;
  v.from_bytes(raw.data(), 131);
  std::vector<u8> out(bytes_for_bits(131));
  v.to_bytes(out.data());
  // All bits below 131 must round-trip.
  for (std::size_t i = 0; i < 131; ++i) {
    EXPECT_EQ((out[i / 8] >> (i % 8)) & 1, (raw[i / 8] >> (i % 8)) & 1);
  }
}

class BitMatrixTransposeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BitMatrixTransposeTest, TransposeIsCorrect) {
  auto [r, c] = GetParam();
  BitMatrix m(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
  Prg prg(Block{static_cast<u64>(r), static_cast<u64>(c)});
  prg.bytes(m.data(), m.size_bytes());
  // Zero tail bits beyond `c` in each row so transpose precondition holds.
  for (int i = 0; i < r; ++i)
    for (int j = c; j < static_cast<int>(m.row_bytes() * 8); ++j)
      m.row(static_cast<std::size_t>(i))[j >> 3] &= static_cast<u8>(~(1u << (j & 7)));
  BitMatrix t = m.transpose();
  ASSERT_EQ(t.rows(), static_cast<std::size_t>(c));
  ASSERT_EQ(t.cols(), static_cast<std::size_t>(r));
  for (int i = 0; i < r; ++i)
    for (int j = 0; j < c; ++j)
      ASSERT_EQ(m.get(static_cast<std::size_t>(i), static_cast<std::size_t>(j)),
                t.get(static_cast<std::size_t>(j), static_cast<std::size_t>(i)))
          << i << "," << j;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BitMatrixTransposeTest,
    ::testing::Values(std::pair{1, 1}, std::pair{8, 8}, std::pair{128, 128},
                      std::pair{7, 9}, std::pair{129, 255}, std::pair{1000, 256},
                      std::pair{3, 64}, std::pair{64, 3}, std::pair{255, 129}));

TEST(BitMatrix, DoubleTransposeIsIdentity) {
  BitMatrix m(77, 190);
  Prg prg(Block{3, 4});
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      m.set(i, j, prg.next_bit());
  EXPECT_EQ(m.transpose().transpose(), m);
}

// Cross-check the tiled (and, above the size threshold, parallel) transpose
// against the naive bitwise loop on ragged shapes where rows/cols are not
// multiples of 8, including shapes big enough to take the parallel path.
TEST(BitMatrix, TransposeMatchesNaiveOnRaggedShapes) {
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {1, 1},  {3, 5},    {7, 9},    {9, 17},   {13, 130},
      {127, 3}, {130, 257}, {511, 513}, {1025, 259}};
  Prg prg(Block{3, 5});
  for (const auto& [rows, cols] : shapes) {
    BitMatrix m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < cols; ++j) m.set(i, j, prg.next_bit());
    const BitMatrix t = m.transpose();
    ASSERT_EQ(t.rows(), cols);
    ASSERT_EQ(t.cols(), rows);
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < cols; ++j)
        ASSERT_EQ(t.get(j, i), m.get(i, j)) << rows << "x" << cols << " at ("
                                            << i << "," << j << ")";
  }
}

TEST(Packing, RoundTripAcrossAllWidths) {
  Prg prg(Block{77, 1});
  for (std::size_t l = 1; l <= 64; ++l) {
    // 64+l values so every byte alignment of the l-bit fields occurs.
    std::vector<u64> vals(64 + l);
    for (u64& v : vals) v = prg.next_u64();
    const std::vector<u8> blob = pack_bits(vals, l);
    EXPECT_EQ(blob.size(), bytes_for_bits(vals.size() * l));
    const std::vector<u64> back = unpack_bits(blob, l, vals.size());
    ASSERT_EQ(back.size(), vals.size());
    for (std::size_t i = 0; i < vals.size(); ++i)
      ASSERT_EQ(back[i], vals[i] & mask_l(l)) << "l=" << l << " i=" << i;
  }
}

TEST(Packing, Width64KeepsFullWords) {
  // l=64 exercises the mask_l(64) edge: no truncation at all.
  const std::vector<u64> vals = {~u64{0}, 0, 1, u64{1} << 63,
                                 0x0123456789abcdefull};
  const std::vector<u8> blob = pack_bits(vals, 64);
  EXPECT_EQ(blob.size(), vals.size() * 8);
  EXPECT_EQ(unpack_bits(blob, 64, vals.size()), vals);
}

TEST(Packing, BitWriterReaderRoundTripMixedWidths) {
  Prg prg(Block{77, 2});
  // Mixed-width stream covering every width 1..64 several times, in an
  // irregular order so fields straddle byte boundaries both ways.
  std::vector<std::pair<std::size_t, u64>> fields;
  for (int rep = 0; rep < 3; ++rep)
    for (std::size_t w = 1; w <= 64; ++w) {
      const std::size_t width = (rep % 2) ? 65 - w : w;
      fields.emplace_back(width, prg.next_u64());
    }
  BitWriter bw;
  std::size_t total_bits = 0;
  for (const auto& [width, v] : fields) {
    bw.write(v, width);
    total_bits += width;
  }
  EXPECT_EQ(bw.bits(), total_bits);
  const std::vector<u8> buf = bw.take();
  EXPECT_EQ(buf.size(), bytes_for_bits(total_bits));
  BitReader br(buf);
  for (const auto& [width, v] : fields)
    ASSERT_EQ(br.read(width), v & mask_l(width)) << "width=" << width;
}

TEST(Packing, BitReaderThrowsPastEnd) {
  BitWriter bw;
  bw.write(0x5a, 7);
  const std::vector<u8> buf = bw.take();  // 1 byte
  BitReader br(buf);
  EXPECT_EQ(br.read(7), 0x5au);
  EXPECT_THROW(br.read(2), ProtocolError);  // only 1 bit of slack remains
}

TEST(Serial, RoundTrip) {
  Writer w;
  w.u8_(7);
  w.u32_(0xdeadbeef);
  w.u64_(~u64{0});
  w.block(Block{1, 2});
  w.vec_u64({1, 2, 3});
  w.vec_block({kOneBlock, kZeroBlock});

  Reader r(w.data());
  EXPECT_EQ(r.u8_(), 7);
  EXPECT_EQ(r.u32_(), 0xdeadbeefu);
  EXPECT_EQ(r.u64_(), ~u64{0});
  EXPECT_EQ(r.block(), (Block{1, 2}));
  EXPECT_EQ(r.vec_u64(), (std::vector<u64>{1, 2, 3}));
  EXPECT_EQ(r.vec_block(), (std::vector<Block>{kOneBlock, kZeroBlock}));
  EXPECT_TRUE(r.done());
}

TEST(Serial, TruncatedThrows) {
  Writer w;
  w.u32_(5);
  Reader r(w.data());
  EXPECT_THROW(r.u64_(), ProtocolError);
}

TEST(Serial, TruncatedVectorThrows) {
  Writer w;
  w.u64_(1000);  // claims 1000 elements, provides none
  Reader r(w.data());
  EXPECT_THROW(r.vec_u64(), ProtocolError);
}

TEST(Defines, MaskAndRounding) {
  EXPECT_EQ(mask_l(0), 0u);
  EXPECT_EQ(mask_l(1), 1u);
  EXPECT_EQ(mask_l(32), 0xffffffffull);
  EXPECT_EQ(mask_l(64), ~u64{0});
  EXPECT_EQ(bytes_for_bits(0), 0u);
  EXPECT_EQ(bytes_for_bits(1), 1u);
  EXPECT_EQ(bytes_for_bits(8), 1u);
  EXPECT_EQ(bytes_for_bits(9), 2u);
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(round_up(10, 8), 16u);
}

TEST(Crc32c, KnownAnswersAndChaining) {
  // RFC 3720 test vector for CRC32C (Castagnoli).
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c("", 0), 0u);
  const std::vector<u8> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros.data(), 32), 0x8A9136AAu);  // RFC 3720 vector
  // Chaining via the seed argument equals one pass over the concatenation.
  const std::string msg = "hello framed transport layer";
  const u32 whole = crc32c(msg.data(), msg.size());
  const u32 part = crc32c(msg.data() + 10, msg.size() - 10,
                          crc32c(msg.data(), 10));
  EXPECT_EQ(part, whole);
  // Single-bit sensitivity: any one flipped bit changes the checksum.
  std::vector<u8> buf(64, 0x5C);
  const u32 base = crc32c(buf.data(), buf.size());
  for (std::size_t i = 0; i < buf.size() * 8; i += 37) {
    auto copy = buf;
    copy[i / 8] ^= static_cast<u8>(1u << (i % 8));
    EXPECT_NE(crc32c(copy.data(), copy.size()), base);
  }
}

}  // namespace
}  // namespace abnn2
