// Tests for the RLWE AHE substrate: modular arithmetic, bigint, NTT and the
// BFV-style scheme (encrypt/decrypt, homomorphic ops, noise flooding).
#include <gtest/gtest.h>

#include "he/bfv.h"
#include "he/bigint.h"
#include "he/modarith.h"
#include "he/ntt.h"

namespace abnn2::he {
namespace {

TEST(ModArith, BasicOps) {
  const u64 p = 0xFFFFFFFF00000001ull;  // a prime
  EXPECT_EQ(add_mod(p - 1, 1, p), 0u);
  EXPECT_EQ(sub_mod(0, 1, p), p - 1);
  EXPECT_EQ(mul_mod(p - 1, p - 1, p), 1u);  // (-1)^2
  EXPECT_EQ(pow_mod(3, p - 1, p), 1u);      // Fermat
  EXPECT_EQ(mul_mod(inv_mod(12345, p), 12345, p), 1u);
}

TEST(ModArith, MillerRabinKnownValues) {
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(1));
  EXPECT_FALSE(is_prime(561));        // Carmichael
  EXPECT_FALSE(is_prime(3215031751)); // strong pseudoprime to 2,3,5,7
  EXPECT_TRUE(is_prime(0xFFFFFFFF00000001ull));
  EXPECT_TRUE(is_prime((u64{1} << 61) - 1));  // Mersenne
  EXPECT_FALSE(is_prime((u64{1} << 62) - 1));
}

TEST(ModArith, NttPrimeSearch) {
  const u64 p = next_ntt_prime(u64{1} << 59, 8192);
  EXPECT_TRUE(is_prime(p));
  EXPECT_EQ((p - 1) % 8192, 0u);
  EXPECT_GE(p, u64{1} << 59);
}

TEST(ModArith, PrimitiveRootHasExactOrder) {
  Prg prg(Block{1, 1});
  const u64 p = next_ntt_prime(u64{1} << 40, 256);
  const u64 r = find_primitive_root(p, 256, prg);
  EXPECT_EQ(pow_mod(r, 256, p), 1u);
  EXPECT_EQ(pow_mod(r, 128, p), p - 1);
}

TEST(BigUint, AddSubMul) {
  BigUint a(0xFFFFFFFFFFFFFFFFull);
  BigUint b = a;
  b.add(a);  // 2*(2^64-1)
  BigUint c = b;
  c.sub(a);
  EXPECT_TRUE(c == a);
  BigUint d(1);
  d.mul_small(0xFFFFFFFFFFFFFFFFull);
  EXPECT_TRUE(d == a);
  EXPECT_THROW(BigUint(1).sub(BigUint(2)), ProtocolError);
}

TEST(BigUint, ShiftAndBitLength) {
  BigUint a(1);
  a.shift_left_bits(130);
  EXPECT_EQ(a.bit_length(), 131u);
  BigUint b(0);
  EXPECT_EQ(b.bit_length(), 0u);
  EXPECT_TRUE(b.is_zero());
}

TEST(BigUint, DivmodAgainstU128) {
  Prg prg(Block{2, 2});
  for (int it = 0; it < 200; ++it) {
    const u128 x = (static_cast<u128>(prg.next_u64()) << 64) | prg.next_u64();
    u64 d64 = prg.next_u64();
    if (d64 == 0) d64 = 7;
    const BigUint q = BigUint::from_u128(x) / BigUint(d64);
    const BigUint r = BigUint::from_u128(x) % BigUint(d64);
    EXPECT_TRUE(q == BigUint::from_u128(x / d64));
    EXPECT_TRUE(r == BigUint::from_u128(x % d64));
  }
}

TEST(BigUint, DivmodMultiLimbDivisor) {
  Prg prg(Block{3, 3});
  for (int it = 0; it < 200; ++it) {
    const u128 x = (static_cast<u128>(prg.next_u64()) << 64) | prg.next_u64();
    u128 d = (static_cast<u128>(prg.next_bits(33)) << 64) | prg.next_u64();
    if (d == 0) d = 99;
    const auto [q, r] = BigUint::from_u128(x).divmod(BigUint::from_u128(d));
    EXPECT_TRUE(q == BigUint::from_u128(x / d)) << it;
    EXPECT_TRUE(r == BigUint::from_u128(x % d)) << it;
  }
}

TEST(BigUint, DivmodIdentityReconstructs) {
  // (q*d + r == x) for 256-bit x built from shifts.
  Prg prg(Block{4, 4});
  for (int it = 0; it < 50; ++it) {
    BigUint x = BigUint::from_u128(
        (static_cast<u128>(prg.next_u64()) << 64) | prg.next_u64());
    x.shift_left_bits(97);
    x.add(BigUint(prg.next_u64()));
    BigUint d = BigUint::from_u128(
        (static_cast<u128>(prg.next_bits(50)) << 64) | prg.next_u64());
    const auto [q, r] = x.divmod(d);
    EXPECT_TRUE(r < d);
    // Reconstruct q*d via repeated shift-mul on 32-bit chunks of d... simpler:
    // verify with the other direction: (x - r) / d == q exactly.
    BigUint xr = x;
    xr.sub(r);
    const auto [q2, r2] = xr.divmod(d);
    EXPECT_TRUE(q2 == q);
    EXPECT_TRUE(r2.is_zero());
  }
}

TEST(Ntt, RoundTripAndConvolution) {
  Prg prg(Block{5, 5});
  const std::size_t n = 64;
  const u64 p = next_ntt_prime(u64{1} << 40, 2 * n);
  NttTables ntt(n, p, prg);

  std::vector<u64> a(n), b(n);
  for (auto& v : a) v = prg.next_below(p);
  for (auto& v : b) v = prg.next_below(p);

  // Round trip.
  std::vector<u64> a2 = a;
  ntt.forward(a2.data());
  ntt.inverse(a2.data());
  EXPECT_EQ(a2, a);

  // Negacyclic convolution vs schoolbook.
  std::vector<u64> want(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t k = (i + j) % n;
      const u64 prod = mul_mod(a[i], b[j], p);
      if (i + j < n)
        want[k] = add_mod(want[k], prod, p);
      else
        want[k] = sub_mod(want[k], prod, p);  // x^n = -1
    }
  std::vector<u64> fa = a, fb = b;
  ntt.forward(fa.data());
  ntt.forward(fb.data());
  for (std::size_t i = 0; i < n; ++i) fa[i] = mul_mod(fa[i], fb[i], p);
  ntt.inverse(fa.data());
  EXPECT_EQ(fa, want);
}

class BfvTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BfvTest, EncryptDecryptRoundTrip) {
  const std::size_t t_bits = GetParam();
  const BfvParams params(t_bits, 64);
  Prg prg(Block{6, t_bits});
  SecretKey sk(params, prg);
  std::vector<u64> pt(params.n());
  for (auto& v : pt) v = prg.next_bits(t_bits);
  const auto ct = sk.encrypt(params, pt, prg);
  EXPECT_EQ(sk.decrypt(params, ct), pt);
}

TEST_P(BfvTest, HomomorphicAddAndPlainOps) {
  const std::size_t t_bits = GetParam();
  const u64 tmask = mask_l(t_bits);
  const BfvParams params(t_bits, 64);
  Prg prg(Block{7, t_bits});
  SecretKey sk(params, prg);
  std::vector<u64> a(params.n()), b(params.n());
  for (auto& v : a) v = prg.next_bits(t_bits);
  for (auto& v : b) v = prg.next_bits(t_bits);

  const auto ca = sk.encrypt(params, a, prg);
  const auto cb = sk.encrypt(params, b, prg);
  const auto sum = sk.decrypt(params, add_ct(params, ca, cb));
  for (std::size_t i = 0; i < params.n(); ++i)
    ASSERT_EQ(sum[i], (a[i] + b[i]) & tmask);

  auto cp = ca;
  add_plain_inplace(params, cp, b);
  const auto psum = sk.decrypt(params, cp);
  for (std::size_t i = 0; i < params.n(); ++i)
    ASSERT_EQ(psum[i], (a[i] + b[i]) & tmask);
}

TEST_P(BfvTest, PlainMultiplyIsNegacyclicConvolution) {
  const std::size_t t_bits = GetParam();
  const u64 tmask = mask_l(t_bits);
  const BfvParams params(t_bits, 64);
  Prg prg(Block{8, t_bits});
  SecretKey sk(params, prg);
  std::vector<u64> m(params.n());
  for (auto& v : m) v = prg.next_bits(t_bits);
  std::vector<i64> w(params.n());
  for (auto& v : w) v = static_cast<i64>(prg.next_below(513)) - 256;

  const auto ct = sk.encrypt(params, m, prg);
  auto prod = mul_plain(params, ct, w);
  flood_noise_inplace(params, prod, prg);
  const auto got = sk.decrypt(params, prod);

  // Schoolbook negacyclic product mod t (t = 2^t_bits wraps naturally).
  const std::size_t n = params.n();
  std::vector<u64> want(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const u64 prod_ij =
          m[i] * static_cast<u64>(static_cast<i64>(w[j])) ;
      const std::size_t k = (i + j) % n;
      if (i + j < n)
        want[k] = (want[k] + prod_ij) & tmask;
      else
        want[k] = (want[k] - prod_ij) & tmask;
    }
  EXPECT_EQ(got, want);
}

TEST_P(BfvTest, PreparedMultiplyMatchesDirect) {
  const std::size_t t_bits = GetParam();
  const BfvParams params(t_bits, 64);
  Prg prg(Block{9, t_bits});
  SecretKey sk(params, prg);
  std::vector<u64> m(params.n());
  for (auto& v : m) v = prg.next_bits(t_bits);
  std::vector<i64> w(params.n());
  for (auto& v : w) v = static_cast<i64>(prg.next_below(101)) - 50;

  const auto ct = sk.encrypt(params, m, prg);
  const auto direct = sk.decrypt(params, mul_plain(params, ct, w));
  const auto prepared = sk.decrypt(
      params, mul_prepared(params, to_ntt(params, ct), prepare_plain(params, w)));
  EXPECT_EQ(direct, prepared);
}

INSTANTIATE_TEST_SUITE_P(PlaintextBits, BfvTest, ::testing::Values(32, 64));

TEST(Bfv, SerializationRoundTripAndValidation) {
  const BfvParams params(32, 64);
  Prg prg(Block{10, 10});
  SecretKey sk(params, prg);
  std::vector<u64> m(params.n(), 42);
  const auto ct = sk.encrypt(params, m, prg);
  Writer w;
  ct.serialize(w);
  EXPECT_EQ(w.size(), params.ciphertext_bytes());
  Reader r(w.data());
  const auto ct2 = Ciphertext::deserialize(r, params);
  EXPECT_EQ(sk.decrypt(params, ct2), m);

  // Out-of-range coefficients are rejected.
  Writer bad;
  ct.serialize(bad);
  auto bytes = bad.take();
  std::memset(bytes.data(), 0xFF, 8);
  Reader rb(bytes);
  EXPECT_THROW(Ciphertext::deserialize(rb, params), ProtocolError);
}

TEST(Bfv, ParamsAreDeterministicAcrossInstances) {
  const BfvParams a(32, 64), b(32, 64);
  EXPECT_EQ(a.num_primes(), b.num_primes());
  for (std::size_t i = 0; i < a.num_primes(); ++i)
    EXPECT_EQ(a.prime(i), b.prime(i));
  EXPECT_TRUE(a.delta() == b.delta());
  // Cross-instance interop: encrypt under a's params, decrypt under b's.
  Prg prg(Block{11, 11});
  SecretKey sk(a, prg);
  std::vector<u64> m(a.n(), 7);
  Writer w;
  sk.encrypt(a, m, prg).serialize(w);
  Reader r(w.data());
  EXPECT_EQ(sk.decrypt(b, Ciphertext::deserialize(r, b)), m);
}

TEST(Bfv, FloodingChangesCiphertextNotPlaintext) {
  const BfvParams params(32, 64);
  Prg prg(Block{12, 12});
  SecretKey sk(params, prg);
  std::vector<u64> m(params.n(), 123);
  auto ct = sk.encrypt(params, m, prg);
  const auto before = ct.c0;
  flood_noise_inplace(params, ct, prg);
  EXPECT_NE(before.c[0], ct.c0.c[0]);
  EXPECT_EQ(sk.decrypt(params, ct), m);
}

TEST(Bfv, RejectsOversizedPlaintextMultiplier) {
  const BfvParams params(32, 64);
  Prg prg(Block{13, 13});
  SecretKey sk(params, prg);
  std::vector<u64> m(params.n(), 1);
  const auto ct = sk.encrypt(params, m, prg);
  std::vector<i64> w(1, i64{1} << 40);
  EXPECT_THROW(mul_plain(params, ct, w), std::invalid_argument);
}

}  // namespace
}  // namespace abnn2::he
