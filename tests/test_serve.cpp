// Tests for the serve::Supervisor: concurrent sessions over real sockets,
// admission control (BUSY), watchdog reaping, graceful drain, session-token
// routing with resume across reconnects, and the resume-mismatch fallback
// in core::InferenceServer. The chaos test here runs under TSan in CI.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>

#include "core/inference.h"
#include "net/fault_channel.h"
#include "net/framed_channel.h"
#include "net/mem_channel.h"
#include "net/socket_channel.h"
#include "nn/model_io.h"
#include "serve/supervisor.h"

// Sanitizers slow compute by up to an order of magnitude; watchdog deadlines
// and the hang sleeps that must overshoot them are scaled so "hung" stays
// distinguishable from "instrumented and slow".
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define ABNN2_TEST_SANITIZED 1
#endif
#elif defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define ABNN2_TEST_SANITIZED 1
#endif

namespace abnn2 {
namespace {

#ifdef ABNN2_TEST_SANITIZED
constexpr int kTimeScale = 8;
#else
constexpr int kTimeScale = 1;
#endif

using core::InferenceClient;
using core::InferenceConfig;
using core::InferenceServer;

nn::Model test_model(const ss::Ring& ring) {
  return nn::random_model(ring, nn::FragScheme::parse("s(2,2)"), {20, 12, 4},
                          Block{910, 1});
}

SocketOptions client_opts() {
  SocketOptions o;
  o.connect_timeout_ms = 10'000;
  o.recv_timeout_ms = 10'000;
  return o;
}

// ---- concurrent clean serving -------------------------------------------

TEST(Serve, ConcurrentCleanSessionsAllCorrect) {
  const ss::Ring ring(32);
  const auto model = test_model(ring);
  const auto digest = nn::model_digest(model);
  const std::size_t batch = 2;

  serve::ModelRegistry reg;
  reg.add(model);
  serve::ServeOptions sopts;
  sopts.max_sessions = 8;
  sopts.recv_timeout_ms = 10'000;
  serve::Supervisor sup(std::move(reg), InferenceConfig(ring), sopts);

  InferenceConfig ccfg(ring);
  ccfg.expected_model_digest = digest;

  constexpr int kClients = 8;
  std::array<int, kClients> ok{};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      const auto x = nn::synthetic_images(20, batch, 16, ring,
                                          Block{911, static_cast<u64>(c)});
      const auto want = nn::infer_plain(model, x);
      InferenceClient client(ccfg);
      for (int attempt = 0; attempt < 50; ++attempt) {
        try {
          auto sock =
              SocketChannel::connect("127.0.0.1", sup.port(), client_opts());
          FramedChannel ch(*sock);
          client.run_offline(ch, batch);
          const auto logits = client.run_online(ch, x);
          EXPECT_EQ(logits, want) << "client " << c;
          ok[c] = logits == want ? 1 : -1;
          return;
        } catch (const core::ServerBusy& e) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(e.retry_after_ms()));
        } catch (const ChannelError&) {
          client.reset_session();
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      }
      ADD_FAILURE() << "client " << c << " never completed";
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(ok[c], 1) << "client " << c;
  sup.drain();  // joins workers: counters are final after this
  const auto st = sup.stats();
  EXPECT_GE(st.batches_served, static_cast<u64>(kClients));
  EXPECT_EQ(st.protocol_errors, 0u);
}

// ---- admission control ---------------------------------------------------

TEST(Serve, AdmissionCapRejectsBusyAndClientRetriesAfterward) {
  const ss::Ring ring(32);
  const auto model = test_model(ring);
  const auto digest = nn::model_digest(model);
  const std::size_t batch = 1;

  serve::ModelRegistry reg;
  reg.add(model);
  serve::ServeOptions sopts;
  sopts.max_sessions = 1;  // every second connection is over the cap
  sopts.recv_timeout_ms = 10'000;
  sopts.busy_retry_ms = 25;
  serve::Supervisor sup(std::move(reg), InferenceConfig(ring), sopts);

  InferenceConfig ccfg(ring);
  ccfg.expected_model_digest = digest;
  const auto x = nn::synthetic_images(20, batch, 16, ring, Block{912, 0});
  const auto want = nn::infer_plain(model, x);

  // Client A completes a batch and keeps its connection open, pinning the
  // only session slot.
  InferenceClient a(ccfg);
  auto sock_a = SocketChannel::connect("127.0.0.1", sup.port(), client_opts());
  {
    FramedChannel ch(*sock_a);
    a.run_offline(ch, batch);
    EXPECT_EQ(a.run_online(ch, x), want);
  }

  // Client B is over the cap: explicit BUSY with a retry hint, not a hang.
  InferenceClient b(ccfg);
  bool saw_busy = false;
  try {
    auto sock = SocketChannel::connect("127.0.0.1", sup.port(), client_opts());
    FramedChannel ch(*sock);
    b.run_offline(ch, batch);
  } catch (const core::ServerBusy& e) {
    saw_busy = true;
    EXPECT_GT(e.retry_after_ms(), 0u);
  }
  EXPECT_TRUE(saw_busy);
  EXPECT_GE(sup.stats().rejected_busy, 1u);

  // A hangs up; B's jittered retries must eventually be admitted.
  sock_a.reset();
  bool b_done = false;
  for (int attempt = 0; attempt < 200 && !b_done; ++attempt) {
    try {
      auto sock =
          SocketChannel::connect("127.0.0.1", sup.port(), client_opts());
      FramedChannel ch(*sock);
      b.run_offline(ch, batch);
      EXPECT_EQ(b.run_online(ch, x), want);
      b_done = true;
    } catch (const core::ServerBusy& e) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(e.retry_after_ms()));
    } catch (const ChannelError&) {
      b.reset_session();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(b_done);
  sup.drain();
}

// ---- watchdog ------------------------------------------------------------

TEST(Serve, WatchdogReapsHungSessionThenClientResumes) {
  const ss::Ring ring(32);
  const auto model = test_model(ring);
  const auto digest = nn::model_digest(model);
  const std::size_t batch = 2;

  serve::ModelRegistry reg;
  reg.add(model);
  serve::ServeOptions sopts;
  sopts.max_sessions = 2;
  sopts.watchdog_ms = 400 * kTimeScale;
  sopts.recv_timeout_ms = 10'000 * kTimeScale;
  serve::Supervisor sup(std::move(reg), InferenceConfig(ring), sopts);

  InferenceConfig ccfg(ring);
  ccfg.expected_model_digest = digest;
  const auto x = nn::synthetic_images(20, batch, 16, ring, Block{913, 0});
  const auto want = nn::infer_plain(model, x);

  InferenceClient client(ccfg);
  {
    auto sock =
        SocketChannel::connect("127.0.0.1", sup.port(), client_opts());
    FramedChannel ch(*sock);
    client.run_offline(ch, batch);
    EXPECT_FALSE(client.resumed());
    // Hang past the watchdog: the server must reap the session (socket shut
    // down) while retaining the completed offline material.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(1'500 * kTimeScale));
    EXPECT_THROW((void)client.run_online(ch, x), ChannelError);
  }
  EXPECT_TRUE(client.has_offline_material());
  EXPECT_GE(sup.stats().reaped, 1u);

  // Reconnect: the session token routes back to the retained material and
  // the batch resumes at the online phase.
  client.reset_session();
  bool done = false;
  for (int attempt = 0; attempt < 50 && !done; ++attempt) {
    try {
      auto sock =
          SocketChannel::connect("127.0.0.1", sup.port(), client_opts());
      FramedChannel ch(*sock);
      client.run_offline(ch, batch);
      EXPECT_TRUE(client.resumed());
      EXPECT_EQ(client.run_online(ch, x), want);
      done = true;
    } catch (const core::ServerBusy& e) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(e.retry_after_ms()));
    } catch (const ChannelError&) {
      client.reset_session();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(done);
  EXPECT_GE(sup.stats().resumed, 1u);
  sup.drain();
}

// ---- concurrent chaos ----------------------------------------------------

// >= 8 concurrent clients; a deterministic subset is killed mid-online,
// hung past the watchdog, or fed corrupted frames. Every client must end
// with byte-identical logits vs the plaintext reference, and the
// killed/hung clients must get there via resume, not a full offline rerun.
TEST(Serve, ConcurrentChaosAllClientsCorrect) {
  const ss::Ring ring(32);
  const auto model = test_model(ring);
  const auto digest = nn::model_digest(model);
  const std::size_t batch = 2;

  serve::ModelRegistry reg;
  reg.add(model);
  serve::ServeOptions sopts;
  sopts.max_sessions = 8;
  // Generous deadline: with every session sharing few cores, honest compute
  // between frames can stall for hundreds of ms; only the deliberate hangs
  // below should overshoot this.
  sopts.watchdog_ms = 1'000 * kTimeScale;
  sopts.recv_timeout_ms = 20'000 * kTimeScale;
  sopts.busy_retry_ms = 25;
  serve::Supervisor sup(std::move(reg), InferenceConfig(ring), sopts);

  InferenceConfig ccfg(ring);
  ccfg.expected_model_digest = digest;

  // Calibration: a clean batch measures the client's framed send volume for
  // the offline phase, so kill faults can target the online window.
  u64 offline_sent = 0;
  {
    InferenceClient probe(ccfg);
    auto sock =
        SocketChannel::connect("127.0.0.1", sup.port(), client_opts());
    FaultInjectingChannel fc(*sock, FaultPlan{});
    FramedChannel ch(fc);
    probe.run_offline(ch, batch);
    offline_sent = fc.stats().bytes_sent;
    const auto x = nn::synthetic_images(20, batch, 16, ring, Block{914, 0});
    EXPECT_EQ(probe.run_online(ch, x), nn::infer_plain(model, x));
  }
  ASSERT_GT(offline_sent, 0u);

  constexpr int kClients = 8;
  constexpr int kBatches = 2;
  std::array<std::atomic<int>, kClients> completed{};
  std::array<std::atomic<int>, kClients> resumes{};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      InferenceClient client(ccfg);  // one logical session per thread
      for (int b = 0; b < kBatches; ++b) {
        const auto x = nn::synthetic_images(
            20, batch, 16, ring, Block{915, static_cast<u64>(c * 100 + b)});
        const auto want = nn::infer_plain(model, x);
        // Deterministic fault assignment on each client's first batch:
        //   c % 4 == 1: connection cut mid-online (after offline completes)
        //   c % 4 == 2: client hangs past the watchdog, server reaps it
        //   c % 4 == 3: one bit flipped in flight (CRC-detected upstream)
        FaultPlan plan;
        bool hang = false;
        if (b == 0) {
          switch (c % 4) {
            case 1:
              plan.kind = FaultPlan::Kind::kCutSend;
              plan.trigger_offset =
                  offline_sent + 64 + static_cast<u64>(c) * 37;
              break;
            case 2:
              hang = true;
              break;
            case 3:
              plan.kind = FaultPlan::Kind::kCorruptSend;
              plan.trigger_offset = 1'000 + static_cast<u64>(c) * 997;
              plan.bit_in_byte = static_cast<u32>(c % 8);
              break;
            default:
              break;
          }
        }
        int attempts = 0;
        bool done = false;
        while (!done && attempts < 20) {
          std::unique_ptr<SocketChannel> sock;
          std::optional<FaultInjectingChannel> fc;
          try {
            sock = SocketChannel::connect("127.0.0.1", sup.port(),
                                          client_opts());
            fc.emplace(*sock, plan);
            FramedChannel ch(*fc);
            client.run_offline(ch, batch);
            if (client.resumed()) ++resumes[c];
            if (hang) {
              hang = false;
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(2'500 * kTimeScale));
            }
            const auto logits = client.run_online(ch, x);
            EXPECT_EQ(logits, want) << "client " << c << " batch " << b;
            if (logits == want) ++completed[c];
            done = true;
          } catch (const core::ServerBusy& e) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(e.retry_after_ms() + c * 7));
          } catch (const ProtocolError&) {
            client.reset_session();
            // A fault that never fired (e.g. the watchdog reaped a slow but
            // honest session first) stays armed for the next attempt, so the
            // per-client resume assertions below remain deterministic.
            if (fc && fc->fired()) plan = FaultPlan{};
            ++attempts;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20 + c * 5));
          } catch (const ChannelError&) {
            client.reset_session();
            if (fc && fc->fired()) plan = FaultPlan{};
            ++attempts;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20 + c * 5));
          }
        }
        EXPECT_TRUE(done) << "client " << c << " batch " << b
                          << " never completed";
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int c = 0; c < kClients; ++c)
    EXPECT_EQ(completed[c].load(), kBatches) << "client " << c;
  // Kill and hang clients had completed the offline phase when their fault
  // hit — every one of them must have recovered via resume.
  for (int c = 0; c < kClients; ++c) {
    if (c % 4 == 1 || c % 4 == 2) {
      EXPECT_GE(resumes[c].load(), 1) << "client " << c;
    }
  }
  sup.drain();  // joins workers: counters are final after this
  const auto st = sup.stats();
  EXPECT_GE(st.resumed, 4u);
  EXPECT_GE(st.reaped, 1u);  // at least the hung sessions
  EXPECT_EQ(st.active_sessions, 0u);
}

// ---- graceful drain ------------------------------------------------------

TEST(Serve, DrainFinishesInFlightBatchThenStopsAccepting) {
  const ss::Ring ring(32);
  const auto model = test_model(ring);
  const auto digest = nn::model_digest(model);
  const std::size_t batch = 2;

  serve::ModelRegistry reg;
  reg.add(model);
  serve::ServeOptions sopts;
  sopts.max_sessions = 2;
  sopts.watchdog_ms = 10'000;
  sopts.drain_deadline_ms = 10'000;
  sopts.recv_timeout_ms = 10'000;
  serve::Supervisor sup(std::move(reg), InferenceConfig(ring), sopts);

  InferenceConfig ccfg(ring);
  ccfg.expected_model_digest = digest;
  const auto x = nn::synthetic_images(20, batch, 16, ring, Block{916, 0});
  const auto want = nn::infer_plain(model, x);

  std::atomic<bool> offline_done{false};
  std::atomic<bool> batch_ok{false};
  std::thread cli([&] {
    InferenceClient client(ccfg);
    auto sock =
        SocketChannel::connect("127.0.0.1", sup.port(), client_opts());
    FramedChannel ch(*sock);
    client.run_offline(ch, batch);
    offline_done = true;
    // Delay so the drain below starts while this batch is in flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    const auto logits = client.run_online(ch, x);
    EXPECT_EQ(logits, want);
    batch_ok = logits == want;
  });

  while (!offline_done)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sup.drain();  // must wait for the in-flight online phase
  cli.join();
  EXPECT_TRUE(batch_ok);
  EXPECT_GE(sup.stats().batches_served, 1u);
  EXPECT_EQ(sup.stats().active_sessions, 0u);

  // Drained: nothing accepts anymore; a new handshake times out or fails.
  SocketOptions short_opts;
  short_opts.connect_timeout_ms = 1'000;
  short_opts.recv_timeout_ms = 300;
  EXPECT_THROW(
      {
        InferenceClient late(ccfg);
        auto sock =
            SocketChannel::connect("127.0.0.1", sup.port(), short_opts);
        FramedChannel ch(*sock);
        late.run_offline(ch, batch);
      },
      ChannelError);
}

// ---- resume-mismatch fallback (core::InferenceServer) --------------------

// Crafts a protocol-v3 hello requesting a resume that cannot be honored and
// checks the server discards its stale offline material (instead of pairing
// it with a mismatched client half) and then serves a full offline run.
class ResumeMismatchTest : public ::testing::Test {
 protected:
  ResumeMismatchTest()
      : ring_(32), model_(test_model(ring_)), cfg_(ring_),
        server_(model_, cfg_) {}

  // Leaves the server holding completed offline material for batch = 2.
  void fill_server_material() {
    auto [sch, cch] = MemChannel::make_pair();
    InferenceClient client(cfg_);
    std::thread srv([&, sc = sch.get()] {
      FramedChannel f(*sc);
      server_.run_offline(f);
    });
    {
      FramedChannel f(*cch);
      client.run_offline(f, 2);
    }
    srv.join();
    server_.reset_session();
    ASSERT_TRUE(server_.has_offline_material());
  }

  // Sends a crafted resume hello, reads the server hello, returns the
  // resume_granted flag; the server side ends with ChannelError when the
  // fake client hangs up mid-offline.
  u64 crafted_resume_hello(u64 batch, const std::array<u8, 32>& digest) {
    auto [sch, cch] = MemChannel::make_pair();
    std::thread srv([&, sc = sch.get()] {
      FramedChannel f(*sc);
      try {
        server_.run_offline(f);
        ADD_FAILURE() << "offline succeeded against a half-duplex fake";
      } catch (const ChannelError&) {
        // expected: the fake client closes after the handshake
      }
    });
    u64 granted = 0;
    {
      FramedChannel f(*cch);
      const u32 magic = core::kHandshakeMagicClient;
      const u32 version = core::kProtocolVersion;
      f.send(&magic, 4);
      f.send(&version, 4);
      f.send_u64(ring_.bits());
      f.send_u64(batch);
      f.send_u64(1);  // flags: resume requested
      f.send_u64(server_.session_token());
      f.send(digest.data(), digest.size());

      u32 smagic = 0, sversion = 0;
      f.recv(&smagic, 4);
      EXPECT_EQ(smagic, core::kHandshakeMagicServer);
      f.recv(&sversion, 4);
      (void)f.recv_u64();  // ring
      (void)f.recv_u64();  // relu
      (void)f.recv_u64();  // backend
      (void)f.recv_u64();  // reveal
      std::array<u8, 32> sdigest{};
      f.recv(sdigest.data(), sdigest.size());
      granted = f.recv_u64();
      (void)f.recv_u64();  // session token
      cch->close();
    }
    srv.join();
    server_.reset_session();
    return granted;
  }

  ss::Ring ring_;
  nn::Model model_;
  InferenceConfig cfg_;
  InferenceServer server_;
};

TEST_F(ResumeMismatchTest, BatchSizeMismatchDiscardsStaleMaterial) {
  fill_server_material();
  const u64 granted = crafted_resume_hello(3, server_.model_digest());
  EXPECT_EQ(granted, 0u);
  EXPECT_FALSE(server_.last_resume_granted());
  // The stale batch-2 material must be gone: it can never be paired with a
  // batch-3 client half.
  EXPECT_FALSE(server_.has_offline_material());

  // Fallback: a real client now gets a correct full offline run.
  auto [sch, cch] = MemChannel::make_pair();
  InferenceClient client(cfg_);
  std::thread srv([&, sc = sch.get()] {
    FramedChannel f(*sc);
    server_.run_offline(f);
    server_.run_online(f);
  });
  const auto x = nn::synthetic_images(20, 3, 16, ring_, Block{917, 0});
  FramedChannel f(*cch);
  client.run_offline(f, 3);
  EXPECT_FALSE(client.resumed());
  EXPECT_EQ(client.run_online(f, x), nn::infer_plain(model_, x));
  srv.join();
}

TEST_F(ResumeMismatchTest, ModelDigestMismatchDiscardsStaleMaterial) {
  fill_server_material();
  std::array<u8, 32> wrong{};
  wrong.fill(0xFF);
  const u64 granted = crafted_resume_hello(2, wrong);
  EXPECT_EQ(granted, 0u);
  EXPECT_FALSE(server_.last_resume_granted());
  EXPECT_FALSE(server_.has_offline_material());

  auto [sch, cch] = MemChannel::make_pair();
  InferenceClient client(cfg_);
  std::thread srv([&, sc = sch.get()] {
    FramedChannel f(*sc);
    server_.run_offline(f);
    server_.run_online(f);
  });
  const auto x = nn::synthetic_images(20, 2, 16, ring_, Block{918, 0});
  FramedChannel f(*cch);
  client.run_offline(f, 2);
  EXPECT_FALSE(client.resumed());
  EXPECT_EQ(client.run_online(f, x), nn::infer_plain(model_, x));
  srv.join();
}

}  // namespace
}  // namespace abnn2
