// Tests for the ABNN2 core protocols: triplet generation (Alg 1 + the
// one-batch and multi-batch optimizations), the ReLU protocols (Alg 2 and
// the optimized variant), and end-to-end secure inference vs the plaintext
// reference.
#include <gtest/gtest.h>

#include "core/inference.h"
#include "core/nonlinear.h"
#include "core/triplet_gen.h"
#include "net/party_runner.h"

namespace abnn2::core {
namespace {

using nn::FragScheme;
using nn::MatU64;
using ss::Ring;

// Runs triplet generation for given shapes and verifies U + V == W * R.
void check_triplets(const std::string& spec, std::size_t l, std::size_t m,
                    std::size_t n, std::size_t o, BatchMode mode,
                    std::size_t chunk = 8192) {
  const Ring ring(l);
  const FragScheme scheme = FragScheme::parse(spec);
  Prg wprg(Block{1, static_cast<u64>(l + m + n + o)});
  MatU64 codes(m, n);
  for (auto& c : codes.data()) c = wprg.next_below(scheme.code_space());
  MatU64 r = nn::random_mat(n, o, l, wprg);

  TripletConfig cfg(ring);
  cfg.mode = mode;
  cfg.chunk_instances = chunk;

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{2, 1});
        Kk13Receiver ot;
        ot.setup(ch, prg);
        return triplet_gen_server(ch, ot, codes, scheme, o, cfg);
      },
      [&](Channel& ch) {
        Prg prg(Block{2, 2});
        Kk13Sender ot;
        ot.setup(ch, prg);
        return triplet_gen_client(ch, ot, r, scheme, m, cfg, prg);
      });

  const MatU64 want = nn::matmul_codes(ring, codes, scheme, r);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t k = 0; k < o; ++k)
      ASSERT_EQ(ring.add(res.party0.at(i, k), res.party1.at(i, k)),
                want.at(i, k))
          << spec << " l=" << l << " (" << i << "," << k << ")";
}

struct TripletCase {
  const char* spec;
  std::size_t l;
};

class TripletSchemeTest : public ::testing::TestWithParam<TripletCase> {};

TEST_P(TripletSchemeTest, OneBatchCot) {
  check_triplets(GetParam().spec, GetParam().l, 4, 9, 1,
                 BatchMode::kOneBatchCot);
}

TEST_P(TripletSchemeTest, MultiBatch) {
  check_triplets(GetParam().spec, GetParam().l, 4, 9, 5,
                 BatchMode::kMultiBatch);
}

TEST_P(TripletSchemeTest, MultiBatchWithBatchOne) {
  // Multi-batch mode must also be correct at o == 1.
  check_triplets(GetParam().spec, GetParam().l, 3, 4, 1,
                 BatchMode::kMultiBatch);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, TripletSchemeTest,
    ::testing::Values(TripletCase{"(1,1,1,1,1,1,1,1)", 32},
                      TripletCase{"(2,2,2,2)", 32}, TripletCase{"(3,3,2)", 32},
                      TripletCase{"(4,4)", 32}, TripletCase{"(2,2,2)", 32},
                      TripletCase{"(3,3)", 32}, TripletCase{"(2,2)", 32},
                      TripletCase{"(4)", 32}, TripletCase{"(2,1)", 32},
                      TripletCase{"(3)", 32}, TripletCase{"s(2,2,2,2)", 32},
                      TripletCase{"s(4,4)", 32}, TripletCase{"ternary", 32},
                      TripletCase{"binary", 32}, TripletCase{"(2,2,2,2)", 64},
                      TripletCase{"ternary", 64}, TripletCase{"binary", 8},
                      TripletCase{"s(2,1)", 16}));

TEST(Triplets, SmallChunksMatchLargeChunks) {
  // Chunked processing must not change results: force tiny chunks that do
  // not divide the instance count.
  check_triplets("(2,2,2)", 32, 5, 7, 3, BatchMode::kMultiBatch, /*chunk=*/11);
  check_triplets("(3,3,2)", 32, 5, 7, 1, BatchMode::kOneBatchCot, /*chunk=*/7);
}

TEST(Triplets, SingleElementShapes) {
  check_triplets("(2,2)", 32, 1, 1, 1, BatchMode::kOneBatchCot);
  check_triplets("ternary", 32, 1, 1, 4, BatchMode::kMultiBatch);
}

TEST(Triplets, AutoModePicksByBatch) {
  EXPECT_EQ(resolve_mode(BatchMode::kAuto, 1), BatchMode::kOneBatchCot);
  EXPECT_EQ(resolve_mode(BatchMode::kAuto, 2), BatchMode::kMultiBatch);
  EXPECT_EQ(resolve_mode(BatchMode::kMultiBatch, 1), BatchMode::kMultiBatch);
}

TEST(Triplets, OneBatchModeRejectsLargerBatch) {
  const Ring ring(32);
  TripletConfig cfg(ring);
  cfg.mode = BatchMode::kOneBatchCot;
  auto [c0, c1] = MemChannel::make_pair();
  Kk13Receiver ot;
  MatU64 codes(2, 2);
  EXPECT_THROW(triplet_gen_server(*c0, ot, codes, FragScheme::binary(), 3, cfg),
               std::invalid_argument);
}

TEST(Triplets, DotProductWrapper) {
  const Ring ring(32);
  const FragScheme scheme = FragScheme::parse("(2,2,2,2)");
  Prg wprg(Block{3, 3});
  std::vector<u64> w(16), r(16);
  for (auto& c : w) c = wprg.next_below(scheme.code_space());
  for (auto& x : r) x = ring.random(wprg);
  TripletConfig cfg(ring);

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{4, 1});
        Kk13Receiver ot;
        ot.setup(ch, prg);
        return dot_triplet_server(ch, ot, w, scheme, cfg);
      },
      [&](Channel& ch) {
        Prg prg(Block{4, 2});
        Kk13Sender ot;
        ot.setup(ch, prg);
        return dot_triplet_client(ch, ot, r, scheme, cfg, prg);
      });
  u64 want = 0;
  for (std::size_t j = 0; j < w.size(); ++j)
    want = ring.add(want, ring.mul(scheme.interpret_ring(w[j], ring), r[j]));
  EXPECT_EQ(ring.add(res.party0, res.party1), want);
}

// ---- ReLU protocols ------------------------------------------------------

void check_relu(ReluMode mode, std::size_t l, std::size_t n) {
  const Ring ring(l);
  Prg dprg(Block{5, static_cast<u64>(l * 100 + n)});
  std::vector<u64> y(n), y0(n), y1(n), z1(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = ring.random(dprg);
    const auto sh = ss::share(ring, y[i], dprg);
    y0[i] = sh.s0;
    y1[i] = sh.s1;
    z1[i] = ring.random(dprg);
  }
  // Make sure both signs appear.
  y[0] = ring.from_signed(-7);
  y[1] = ring.from_signed(7);
  for (std::size_t i : {std::size_t{0}, std::size_t{1}}) {
    y0[i] = ring.sub(y[i], y1[i]);
  }

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{6, 1});
        ReluServer srv(ring, mode);
        return srv.run(ch, y0, prg);
      },
      [&](Channel& ch) {
        Prg prg(Block{6, 2});
        ReluClient cli(ring, mode);
        cli.run(ch, y1, z1, prg);
        return 0;
      });

  for (std::size_t i = 0; i < n; ++i) {
    const u64 relu = ring.msb(y[i]) ? 0 : y[i];
    EXPECT_EQ(ring.add(res.party0[i], z1[i]), relu)
        << "i=" << i << " y=" << ring.to_signed(y[i]);
  }
}

class ReluTest
    : public ::testing::TestWithParam<std::tuple<ReluMode, std::size_t>> {};

TEST_P(ReluTest, SharesReconstructToRelu) {
  auto [mode, l] = GetParam();
  check_relu(mode, l, 40);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndWidths, ReluTest,
    ::testing::Combine(::testing::Values(ReluMode::kGeneric,
                                         ReluMode::kOptimized),
                       ::testing::Values(std::size_t{8}, std::size_t{16},
                                         std::size_t{32}, std::size_t{64})));

TEST(Relu, AllNegativeAndAllPositiveBatches) {
  const Ring ring(32);
  for (const bool positive : {false, true}) {
    const std::size_t n = 10;
    Prg dprg(Block{7, positive ? 1u : 0u});
    std::vector<u64> y(n), y0(n), y1(n), z1(n);
    for (std::size_t i = 0; i < n; ++i) {
      const i64 v = static_cast<i64>(dprg.next_below(1000)) + 1;
      y[i] = ring.from_signed(positive ? v : -v);
      y1[i] = ring.random(dprg);
      y0[i] = ring.sub(y[i], y1[i]);
      z1[i] = ring.random(dprg);
    }
    auto res = run_two_parties(
        [&](Channel& ch) {
          Prg prg(Block{8, 1});
          ReluServer srv(ring, ReluMode::kOptimized);
          return srv.run(ch, y0, prg);
        },
        [&](Channel& ch) {
          Prg prg(Block{8, 2});
          ReluClient cli(ring, ReluMode::kOptimized);
          cli.run(ch, y1, z1, prg);
          return 0;
        });
    for (std::size_t i = 0; i < n; ++i) {
      const u64 want = positive ? y[i] : 0;
      EXPECT_EQ(ring.add(res.party0[i], z1[i]), want);
    }
  }
}

TEST(Relu, OptimizedSendsLessGcForNegativeNeurons) {
  // The optimization's whole point: mostly-negative batches cost less
  // communication than the generic protocol.
  const Ring ring(32);
  const std::size_t n = 64;
  std::vector<u64> y0(n), y1(n), z1(n);
  Prg dprg(Block{9, 9});
  for (std::size_t i = 0; i < n; ++i) {
    const u64 y = ring.from_signed(-static_cast<i64>(dprg.next_below(1000)) - 1);
    y1[i] = ring.random(dprg);
    y0[i] = ring.sub(y, y1[i]);
    z1[i] = ring.random(dprg);
  }
  auto run = [&](ReluMode mode) {
    return run_two_parties(
        [&](Channel& ch) {
          Prg prg(Block{10, 1});
          ReluServer srv(ring, mode);
          return srv.run(ch, y0, prg);
        },
        [&](Channel& ch) {
          Prg prg(Block{10, 2});
          ReluClient cli(ring, mode);
          cli.run(ch, y1, z1, prg);
          return 0;
        });
  };
  const auto generic = run(ReluMode::kGeneric);
  const auto optimized = run(ReluMode::kOptimized);
  EXPECT_LT(optimized.total_comm_bytes(), generic.total_comm_bytes());
}

TEST(Relu, CircuitGateCounts) {
  // Generic Alg 2 circuit ~ 3l ANDs; sign circuit ~ l ANDs; reshare ~ 2l.
  const auto g = relu_generic_circuit(32);
  const auto s = sign_circuit(32);
  const auto r = reshare_circuit(32);
  EXPECT_EQ(s.and_count(), 31u);
  EXPECT_EQ(r.and_count(), 62u);
  EXPECT_EQ(g.and_count(), 94u);
  EXPECT_LT(s.and_count() + r.and_count(), 2 * g.and_count());
}

TEST(Relu, MismatchedShareSizesThrow) {
  const Ring ring(32);
  ReluClient cli(ring, ReluMode::kGeneric);
  auto [c0, c1] = MemChannel::make_pair();
  Prg prg(Block{1, 1});
  std::vector<u64> y1(4), z1(3);
  EXPECT_THROW(cli.run(*c1, y1, z1, prg), std::invalid_argument);
}

// ---- end-to-end inference -------------------------------------------------

void check_inference(const std::string& spec, std::size_t l, std::size_t batch,
                     ReluMode relu, const std::vector<std::size_t>& dims) {
  const Ring ring(l);
  const FragScheme scheme = FragScheme::parse(spec);
  const auto model = nn::random_model(ring, scheme, dims, Block{11, batch});
  const auto x = nn::synthetic_images(dims[0], batch, l / 2, ring,
                                      Block{12, static_cast<u64>(l)});

  InferenceConfig cfg(ring);
  cfg.relu = relu;

  auto res = run_two_parties(
      [&](Channel& ch) {
        InferenceServer server(model, cfg);
        server.run_offline(ch);
        server.run_online(ch);
        return 0;
      },
      [&](Channel& ch) {
        InferenceClient client(cfg);
        client.run_offline(ch, batch);
        return client.run_online(ch, x);
      });

  const MatU64 want = nn::infer_plain(model, x);
  EXPECT_EQ(res.party1, want) << spec << " l=" << l << " batch=" << batch;
}

struct E2eCase {
  const char* spec;
  std::size_t l;
  std::size_t batch;
  ReluMode relu;
};

class InferenceTest : public ::testing::TestWithParam<E2eCase> {};

TEST_P(InferenceTest, SecureMatchesPlainExactly) {
  const auto& p = GetParam();
  check_inference(p.spec, p.l, p.batch, p.relu, {12, 8, 8, 4});
}

INSTANTIATE_TEST_SUITE_P(
    Configs, InferenceTest,
    ::testing::Values(E2eCase{"(2,2)", 32, 1, ReluMode::kOptimized},
                      E2eCase{"(2,2)", 32, 5, ReluMode::kOptimized},
                      E2eCase{"(2,1)", 32, 2, ReluMode::kGeneric},
                      E2eCase{"s(2,2,2,2)", 32, 3, ReluMode::kOptimized},
                      E2eCase{"ternary", 32, 4, ReluMode::kOptimized},
                      E2eCase{"binary", 32, 1, ReluMode::kGeneric},
                      E2eCase{"ternary", 64, 2, ReluMode::kOptimized},
                      E2eCase{"(3,3,2)", 64, 1, ReluMode::kGeneric},
                      E2eCase{"(2,2,2,2)", 16, 2, ReluMode::kOptimized}));

TEST(Inference, SingleLayerModel) {
  check_inference("ternary", 32, 2, ReluMode::kOptimized, {5, 3});
}

TEST(Inference, RepeatedBatchesReuseSetup) {
  const Ring ring(32);
  const auto model = nn::random_model(ring, FragScheme::parse("(2,2)"),
                                      {6, 5, 3}, Block{13, 13});
  const auto x1 = nn::synthetic_images(6, 2, 8, ring, Block{14, 1});
  const auto x2 = nn::synthetic_images(6, 2, 8, ring, Block{14, 2});
  InferenceConfig cfg(ring);

  auto res = run_two_parties(
      [&](Channel& ch) {
        InferenceServer server(model, cfg);
        server.run_offline(ch);
        server.run_online(ch);
        server.run_offline(ch);
        server.run_online(ch);
        return 0;
      },
      [&](Channel& ch) {
        InferenceClient client(cfg);
        client.run_offline(ch, 2);
        auto a = client.run_online(ch, x1);
        client.run_offline(ch, 2);
        auto b = client.run_online(ch, x2);
        return std::pair{a, b};
      });
  EXPECT_EQ(res.party1.first, nn::infer_plain(model, x1));
  EXPECT_EQ(res.party1.second, nn::infer_plain(model, x2));
}

TEST(Inference, ArgmaxRevealReturnsOnlyClasses) {
  const Ring ring(32);
  const auto model = nn::random_model(ring, FragScheme::parse("s(2,2)"),
                                      {10, 8, 5}, Block{21, 21});
  const auto x = nn::synthetic_images(10, 3, 12, ring, Block{22, 22});
  InferenceConfig cfg(ring);
  cfg.reveal = Reveal::kArgmax;

  auto res = run_two_parties(
      [&](Channel& ch) {
        InferenceServer server(model, cfg);
        server.run_offline(ch);
        server.run_online(ch);
        return 0;
      },
      [&](Channel& ch) {
        InferenceClient client(cfg);
        client.run_offline(ch, 3);
        return client.run_online(ch, x);
      });

  ASSERT_EQ(res.party1.rows(), 1u);
  ASSERT_EQ(res.party1.cols(), 3u);
  const auto want = nn::argmax_logits(ring, nn::infer_plain(model, x));
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_EQ(res.party1.at(0, k), want[k]) << k;
}

TEST(Inference, RevealModeMismatchDetected) {
  const Ring ring(32);
  const auto model = nn::random_model(ring, FragScheme::binary(), {4, 2},
                                      Block{23, 23});
  InferenceConfig scfg(ring), ccfg(ring);
  scfg.reveal = Reveal::kLogits;
  ccfg.reveal = Reveal::kArgmax;
  EXPECT_THROW(run_two_parties(
                   [&](Channel& ch) {
                     InferenceServer server(model, scfg);
                     server.run_offline(ch);
                     return 0;
                   },
                   [&](Channel& ch) {
                     InferenceClient client(ccfg);
                     client.run_offline(ch, 1);
                     return 0;
                   }),
               ProtocolError);
}

TEST(Inference, OnlineBeforeOfflineThrows) {
  const Ring ring(32);
  InferenceConfig cfg(ring);
  auto [c0, c1] = MemChannel::make_pair();
  InferenceClient client(cfg);
  nn::MatU64 x(4, 1);
  EXPECT_THROW(client.run_online(*c1, x), ProtocolError);
}

TEST(Inference, MismatchedReluModesDetectedInHandshake) {
  const Ring ring(32);
  const auto model = nn::random_model(ring, FragScheme::binary(), {4, 2},
                                      Block{15, 15});
  InferenceConfig scfg(ring);
  scfg.relu = ReluMode::kGeneric;
  InferenceConfig ccfg(ring);
  ccfg.relu = ReluMode::kOptimized;
  EXPECT_THROW(run_two_parties(
                   [&](Channel& ch) {
                     InferenceServer server(model, scfg);
                     server.run_offline(ch);
                     return 0;
                   },
                   [&](Channel& ch) {
                     InferenceClient client(ccfg);
                     client.run_offline(ch, 1);
                     return 0;
                   }),
               std::exception);
}

TEST(Inference, TruncationTracksIntegerReferenceWithinError) {
  // Extension feature: local share truncation rescales activations by
  // 2^-trunc after every linear layer. Compare against an integer reference
  // that applies the same arithmetic shift; the probabilistic truncation
  // contributes at most +-1 per element per layer, amplified by the next
  // layer's fan-in.
  const Ring ring(32);
  const std::size_t frac = 10, trunc = 4;
  const auto scheme = nn::FragScheme::ternary();
  const auto model = nn::random_model(ring, scheme, {8, 6, 4}, Block{16, 16});
  const auto x = nn::synthetic_images(8, 2, frac, ring, Block{17, 17});

  InferenceConfig cfg(ring);
  cfg.trunc_bits = trunc;

  auto res = run_two_parties(
      [&](Channel& ch) {
        InferenceServer server(model, cfg);
        server.run_offline(ch);
        server.run_online(ch);
        return 0;
      },
      [&](Channel& ch) {
        InferenceClient client(cfg);
        client.run_offline(ch, 2);
        return client.run_online(ch, x);
      });

  // Integer reference with the same per-layer arithmetic shift.
  std::vector<std::vector<i64>> act(2);
  for (std::size_t k = 0; k < 2; ++k) {
    act[k].resize(8);
    for (std::size_t j = 0; j < 8; ++j)
      act[k][j] = static_cast<i64>(x.at(j, k));
  }
  for (std::size_t li = 0; li < model.layers.size(); ++li) {
    const auto& layer = model.layers[li];
    for (std::size_t k = 0; k < 2; ++k) {
      std::vector<i64> y(layer.out_dim());
      for (std::size_t i = 0; i < layer.out_dim(); ++i) {
        i64 acc = 0;
        for (std::size_t j = 0; j < layer.in_dim(); ++j)
          acc += scheme.interpret(layer.codes.at(i, j)) * act[k][j];
        acc >>= trunc;
        if (li + 1 < model.layers.size()) acc = std::max<i64>(acc, 0);
        y[i] = acc;
      }
      act[k] = std::move(y);
    }
  }
  // Error budget: +-1 per truncation, amplified through fan-in-8 layers.
  for (std::size_t k = 0; k < 2; ++k)
    for (std::size_t i = 0; i < 4; ++i) {
      const i64 got = ring.to_signed(res.party1.at(i, k));
      EXPECT_NEAR(static_cast<double>(got), static_cast<double>(act[k][i]),
                  12.0)
          << "col " << k << " row " << i;
    }
}

}  // namespace
}  // namespace abnn2::core
