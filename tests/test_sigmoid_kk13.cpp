// Tests for the generic Algorithm-2 sigmoid instantiation and the KK13
// chosen-message OT API.
#include <gtest/gtest.h>

#include "core/nonlinear.h"
#include "net/party_runner.h"
#include "ot/kk13.h"

namespace abnn2 {
namespace {

using ss::Ring;

TEST(SigmoidPlain, PiecewiseShape) {
  const Ring ring(32);
  const std::size_t f = 8;  // 1/2 == 128, 1 == 256
  EXPECT_EQ(core::sigmoid_plain(ring, f, ring.from_signed(-1000)), 0u);
  EXPECT_EQ(core::sigmoid_plain(ring, f, ring.from_signed(-129)), 0u);
  EXPECT_EQ(core::sigmoid_plain(ring, f, ring.from_signed(-128)), 0u);
  EXPECT_EQ(core::sigmoid_plain(ring, f, ring.from_signed(-127)), 1u);
  EXPECT_EQ(core::sigmoid_plain(ring, f, 0), 128u);
  EXPECT_EQ(core::sigmoid_plain(ring, f, 127), 255u);
  EXPECT_EQ(core::sigmoid_plain(ring, f, 128), 256u);
  EXPECT_EQ(core::sigmoid_plain(ring, f, 5000), 256u);
}

class SigmoidTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SigmoidTest, SecureMatchesPlain) {
  const std::size_t l = GetParam();
  const Ring ring(l);
  const std::size_t f = l / 2;
  Prg dprg(Block{1, l});
  const std::size_t n = 64;
  std::vector<u64> y(n), y0(n), y1(n), z1(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Values spanning all three pieces.
    const i64 range = i64{1} << (f + 2);
    y[i] = ring.from_signed(
        static_cast<i64>(dprg.next_below(static_cast<u64>(2 * range))) - range);
    y1[i] = ring.random(dprg);
    y0[i] = ring.sub(y[i], y1[i]);
    z1[i] = ring.random(dprg);
  }
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{2, 1});
        gc::GcEvaluator gce;
        return core::sigmoid_server(ch, gce, ring, f, y0, prg);
      },
      [&](Channel& ch) {
        Prg prg(Block{2, 2});
        gc::GcGarbler gcg;
        core::sigmoid_client(ch, gcg, ring, f, y1, z1, prg);
        return 0;
      });
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(ring.add(res.party0[i], z1[i]),
              core::sigmoid_plain(ring, f, y[i]))
        << "y=" << ring.to_signed(y[i]);
}

INSTANTIATE_TEST_SUITE_P(Widths, SigmoidTest, ::testing::Values(16, 32, 64));

TEST(Sigmoid, BadFracBitsRejected) {
  const Ring ring(16);
  gc::GcGarbler gcg;
  auto [c0, c1] = MemChannel::make_pair();
  Prg prg(Block{1, 1});
  std::vector<u64> y1(2), z1(2);
  EXPECT_THROW(core::sigmoid_client(*c1, gcg, ring, 16, y1, z1, prg),
               std::invalid_argument);
  EXPECT_THROW(core::sigmoid_client(*c1, gcg, ring, 0, y1, z1, prg),
               std::invalid_argument);
}

class Kk13BlocksTest : public ::testing::TestWithParam<u32> {};

TEST_P(Kk13BlocksTest, ChosenBlockIsTransferred) {
  const u32 n = GetParam();
  const std::size_t m = 20;
  Prg dprg(Block{3, n});
  std::vector<u32> choices(m);
  for (auto& w : choices) w = static_cast<u32>(dprg.next_below(n));
  std::vector<Block> msgs(m * n);
  for (auto& b : msgs) b = dprg.next_block();

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{4, 1});
        Kk13Sender s;
        s.setup(ch, prg);
        s.extend(ch, m);
        s.send_blocks(ch, msgs, n);
        return 0;
      },
      [&](Channel& ch) {
        Prg prg(Block{4, 2});
        Kk13Receiver r;
        r.setup(ch, prg);
        r.extend(ch, choices);
        return r.recv_blocks(ch, n);
      });
  for (std::size_t i = 0; i < m; ++i)
    EXPECT_EQ(res.party1[i], msgs[i * n + choices[i]]) << i;
}

INSTANTIATE_TEST_SUITE_P(NValues, Kk13BlocksTest,
                         ::testing::Values(2, 4, 16, 256));

TEST(Kk13Blocks, MessageCountMismatchThrows) {
  auto [c0, c1] = MemChannel::make_pair();
  Kk13Sender s;
  std::vector<Block> msgs(4);
  EXPECT_THROW(s.send_blocks(*c0, msgs, 300), std::invalid_argument);
}

}  // namespace
}  // namespace abnn2
