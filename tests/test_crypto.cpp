// Known-answer and property tests for AES-128, SHA-256, the PRG and the
// random oracle.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "crypto/aes.h"
#include "crypto/prg.h"
#include "crypto/ro.h"
#include "crypto/sha256.h"

namespace abnn2 {
namespace {

// AES test vectors are byte strings: hex digit pair i is state byte i.
Block block_from_hex(const std::string& hex) {
  u8 raw[16];
  for (int i = 0; i < 16; ++i)
    raw[i] = static_cast<u8>(std::stoul(hex.substr(2 * static_cast<std::size_t>(i), 2),
                                        nullptr, 16));
  return Block::from_bytes(raw);
}

std::string bytes_hex(const Block& b) {
  u8 raw[16];
  b.to_bytes(raw);
  static const char* d = "0123456789abcdef";
  std::string s;
  for (u8 byte : raw) {
    s.push_back(d[byte >> 4]);
    s.push_back(d[byte & 15]);
  }
  return s;
}

// FIPS-197 Appendix B: key 2b7e151628aed2a6abf7158809cf4f3c,
// plaintext 3243f6a8885a308d313198a2e0370734 ->
// ciphertext 3925841d02dc09fbdc118597196a0b32.
TEST(Aes128, Fips197KnownAnswer) {
  Aes128 aes(block_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Block pt = block_from_hex("3243f6a8885a308d313198a2e0370734");
  Block ct = aes.encrypt(pt);
  EXPECT_EQ(bytes_hex(ct), "3925841d02dc09fbdc118597196a0b32");
}

// NIST AESAVS KAT: all-zero key, all-zero plaintext.
TEST(Aes128, ZeroKeyKnownAnswer) {
  Aes128 aes(kZeroBlock);
  EXPECT_EQ(bytes_hex(aes.encrypt(kZeroBlock)), "66e94bd4ef8a2c3b884cfa59ca342b2e");
}

TEST(Aes128, BatchMatchesSingle) {
  Aes128 aes(Block{42, 43});
  Prg prg(Block{1, 1});
  std::vector<Block> in = prg.blocks(33);
  std::vector<Block> out(33);
  aes.encrypt_blocks(in.data(), out.data(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_EQ(out[i], aes.encrypt(in[i]));
}

TEST(Aes128, EncryptIsPermutation) {
  Aes128 aes(Block{9, 9});
  std::set<std::string> seen;
  for (u64 i = 0; i < 256; ++i)
    seen.insert(bytes_hex(aes.encrypt(Block{0, i})));
  EXPECT_EQ(seen.size(), 256u);
}

TEST(Sha256, NistKnownAnswers) {
  // "abc"
  EXPECT_EQ(Sha256::hex(Sha256::hash("abc", 3)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // empty string
  EXPECT_EQ(Sha256::hex(Sha256::hash("", 0)),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  // two-block message
  const char* m2 = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(Sha256::hex(Sha256::hash(m2, std::strlen(m2))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk.data(), chunk.size());
  EXPECT_EQ(Sha256::hex(h.digest()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::string msg(517, '\0');
  Prg prg(Block{5, 5});
  prg.bytes(msg.data(), msg.size());
  auto one = Sha256::hash(msg.data(), msg.size());
  for (std::size_t split : {1u, 63u, 64u, 65u, 200u, 516u}) {
    Sha256 h;
    h.update(msg.data(), split);
    h.update(msg.data() + split, msg.size() - split);
    EXPECT_EQ(h.digest(), one) << "split=" << split;
  }
}

TEST(Prg, DeterministicFromSeed) {
  Prg a(Block{11, 22}), b(Block{11, 22});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prg, DistinctSeedsAndStreamsDiffer) {
  Prg a(Block{11, 22}), b(Block{11, 23}), c(Block{11, 22}, 1);
  EXPECT_NE(a.next_u64(), b.next_u64());
  Prg a2(Block{11, 22});
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Prg, BytesMatchesBlocks) {
  Prg a(Block{3, 1}), b(Block{3, 1});
  std::vector<u8> bytes(16 * 10);
  a.bytes(bytes.data(), bytes.size());
  auto blocks = b.blocks(10);
  EXPECT_EQ(std::memcmp(bytes.data(), blocks.data(), bytes.size()), 0);
}

TEST(Prg, UnalignedBytesAreConsistentStream) {
  // Reading the stream in odd chunks must equal reading it in one shot.
  Prg a(Block{8, 8}), b(Block{8, 8});
  std::vector<u8> one(100), parts(100);
  a.bytes(one.data(), 100);
  std::size_t off = 0;
  for (std::size_t chunk : {3u, 17u, 1u, 31u, 48u}) {
    b.bytes(parts.data() + off, chunk);
    off += chunk;
  }
  EXPECT_EQ(off, 100u);
  EXPECT_EQ(one, parts);
}

TEST(Prg, NextBelowIsInRangeAndCoversValues) {
  Prg prg(Block{4, 2});
  std::map<u64, int> hist;
  for (int i = 0; i < 3000; ++i) {
    u64 v = prg.next_below(10);
    ASSERT_LT(v, 10u);
    hist[v]++;
  }
  EXPECT_EQ(hist.size(), 10u);  // every residue hit
  EXPECT_THROW(prg.next_below(0), std::invalid_argument);
}

TEST(Prg, NextBitsMasksCorrectly) {
  Prg prg(Block{6, 6});
  for (std::size_t l : {1u, 5u, 31u, 32u, 63u, 64u}) {
    for (int i = 0; i < 50; ++i) {
      u64 v = prg.next_bits(l);
      if (l < 64) {
        ASSERT_LT(v, u64{1} << l);
      }
    }
  }
}

TEST(Prg, MonobitSanity) {
  // ~50% ones over 64k bits.
  Prg prg(Block{10, 20});
  std::size_t ones = 0;
  for (int i = 0; i < 1024; ++i)
    ones += static_cast<std::size_t>(__builtin_popcountll(prg.next_u64()));
  EXPECT_NEAR(static_cast<double>(ones), 32768.0, 700.0);
}

TEST(RandomOracle, DeterministicAndDomainSeparated) {
  std::vector<u8> data{1, 2, 3, 4};
  auto a = ro_hash(1, 7, data);
  auto b = ro_hash(1, 7, data);
  EXPECT_EQ(a.d, b.d);
  EXPECT_NE(ro_hash(2, 7, data).d, a.d);  // tag separation
  EXPECT_NE(ro_hash(1, 8, data).d, a.d);  // index separation
  data[0] ^= 1;
  EXPECT_NE(ro_hash(1, 7, data).d, a.d);  // data separation
}

TEST(RandomOracle, ExpandSingleUsesDigestBits) {
  std::vector<u8> data{9, 9};
  auto d = ro_hash(3, 3, data);
  u64 one;
  ro_expand_u64(d, 32, &one, 1);
  EXPECT_EQ(one, d.low_bits(32));
  EXPECT_LT(one, u64{1} << 32);
}

TEST(RandomOracle, ExpandDeterministicAndMasked) {
  std::vector<u8> data{5};
  auto d = ro_hash(0, 0, data);
  std::vector<u64> a(100), b(100);
  ro_expand_u64(d, 17, a.data(), a.size());
  ro_expand_u64(d, 17, b.data(), b.size());
  EXPECT_EQ(a, b);
  for (u64 v : a) EXPECT_LT(v, u64{1} << 17);
}

TEST(FixedKeyAes, IsStableAcrossCalls) {
  Block x{123, 456};
  EXPECT_EQ(fixed_key_aes().encrypt(x), fixed_key_aes().encrypt(x));
  EXPECT_NE(fixed_key_aes().encrypt(x), x);
}

}  // namespace
}  // namespace abnn2
