// Tests for the GF(2^255-19) field and the Ed25519 group.
#include <gtest/gtest.h>

#include "crypto/prg.h"
#include "ec/ed25519.h"
#include "ec/fe25519.h"

namespace abnn2::ec {
namespace {

Fe random_fe(Prg& prg) {
  u8 b[32];
  prg.bytes(b, 32);
  b[31] &= 0x7f;
  return Fe::from_bytes(b);
}

Scalar random_scalar(Prg& prg) {
  Scalar s;
  prg.bytes(s.data(), 32);
  return s;
}

std::string hex32(const std::array<u8, 32>& b) {
  static const char* d = "0123456789abcdef";
  std::string s;
  for (u8 x : b) {
    s.push_back(d[x >> 4]);
    s.push_back(d[x & 15]);
  }
  return s;
}

TEST(Fe25519, AddSubRoundTrip) {
  Prg prg(Block{1, 2});
  for (int i = 0; i < 50; ++i) {
    Fe a = random_fe(prg), b = random_fe(prg);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ(a - a, Fe::zero());
    EXPECT_EQ(a + Fe::zero(), a);
  }
}

TEST(Fe25519, MulProperties) {
  Prg prg(Block{3, 4});
  for (int i = 0; i < 30; ++i) {
    Fe a = random_fe(prg), b = random_fe(prg), c = random_fe(prg);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * Fe::one(), a);
    EXPECT_EQ(a.square(), a * a);
  }
}

TEST(Fe25519, InverseIsInverse) {
  Prg prg(Block{5, 6});
  for (int i = 0; i < 20; ++i) {
    Fe a = random_fe(prg);
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.invert(), Fe::one());
  }
  EXPECT_EQ(Fe::zero().invert(), Fe::zero());
}

TEST(Fe25519, SqrtM1Squared) {
  EXPECT_EQ(fe_sqrtm1().square(), Fe::zero() - Fe::one());
}

TEST(Fe25519, CanonicalEncoding) {
  // p encodes to the same bytes as 0; p+1 as 1.
  u8 p_bytes[32];
  std::memset(p_bytes, 0xff, 32);
  p_bytes[0] = 0xed;
  p_bytes[31] = 0x7f;
  Fe p = Fe::from_bytes(p_bytes);
  EXPECT_TRUE(p.is_zero());
  u8 out[32];
  p.to_bytes(out);
  u8 zero[32] = {};
  EXPECT_EQ(std::memcmp(out, zero, 32), 0);
}

TEST(Fe25519, BytesRoundTrip) {
  Prg prg(Block{7, 8});
  for (int i = 0; i < 20; ++i) {
    Fe a = random_fe(prg);
    u8 b[32];
    a.to_bytes(b);
    EXPECT_EQ(Fe::from_bytes(b), a);
  }
}

TEST(Ed25519, BasepointEncoding) {
  // RFC 8032: B = (x, 4/5) with even x encodes to 0x58 0x66...0x66.
  auto enc = Point::base().encode();
  EXPECT_EQ(hex32(enc),
            "5866666666666666666666666666666666666666666666666666666666666666");
}

TEST(Ed25519, DecodeEncodeRoundTrip) {
  auto p = Point::decode(Point::base().encode());
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->equals(Point::base()));
}

TEST(Ed25519, DecodeRejectsNonCurvePoints) {
  std::array<u8, 32> bad{};
  bad[0] = 2;  // y = 2 is not on the curve
  EXPECT_FALSE(Point::decode(bad).has_value());
}

TEST(Ed25519, AddDoubleConsistency) {
  const Point& b = Point::base();
  EXPECT_TRUE(b.add(b).equals(b.dbl()));
  Point four1 = b.dbl().dbl();
  Point four2 = b.add(b).add(b).add(b);
  EXPECT_TRUE(four1.equals(four2));
}

TEST(Ed25519, IdentityLaws) {
  const Point& b = Point::base();
  EXPECT_TRUE(b.add(Point::identity()).equals(b));
  EXPECT_TRUE(b.sub(b).is_identity());
  EXPECT_TRUE(Point::identity().dbl().is_identity());
}

TEST(Ed25519, OrderAnnihilatesBase) {
  EXPECT_TRUE(Point::base().mul(group_order()).is_identity());
}

TEST(Ed25519, ScalarMulMatchesRepeatedAdd) {
  Scalar k{};
  k[0] = 13;
  Point expect = Point::identity();
  for (int i = 0; i < 13; ++i) expect = expect.add(Point::base());
  EXPECT_TRUE(Point::base().mul(k).equals(expect));
}

TEST(Ed25519, ScalarMulDistributes) {
  // (a+b)B == aB + bB using small scalars to avoid scalar-field reduction.
  Prg prg(Block{9, 1});
  for (int it = 0; it < 5; ++it) {
    Scalar a{}, b{}, ab{};
    a[0] = static_cast<u8>(prg.next_below(100));
    b[0] = static_cast<u8>(prg.next_below(100));
    ab[0] = static_cast<u8>(a[0] + b[0]);
    ab[1] = static_cast<u8>((static_cast<u16>(a[0]) + b[0]) >> 8);
    Point lhs = Point::base().mul(ab);
    Point rhs = Point::base().mul(a).add(Point::base().mul(b));
    EXPECT_TRUE(lhs.equals(rhs));
  }
}

TEST(Ed25519, DiffieHellmanAgreement) {
  // The exact structure the Chou-Orlandi base OT relies on: x(yB) == y(xB).
  Prg prg(Block{2, 2});
  for (int it = 0; it < 3; ++it) {
    Scalar x = random_scalar(prg), y = random_scalar(prg);
    Point xb = Point::base().mul(x);
    Point yb = Point::base().mul(y);
    EXPECT_TRUE(yb.mul(x).equals(xb.mul(y)));
  }
}

TEST(Ed25519, EncodingsAreUniquePerPoint) {
  Prg prg(Block{4, 4});
  Scalar k = random_scalar(prg);
  Point p = Point::base().mul(k);
  // Same group element via different computation paths encodes identically.
  Point q = p.add(Point::base()).sub(Point::base());
  EXPECT_EQ(p.encode(), q.encode());
}

}  // namespace
}  // namespace abnn2::ec
