// Cross-checks of the batched SIMD kernel layer (src/simd/) against the
// portable reference path: NIST AES vectors through both tables, randomized
// batch-vs-single equivalence, bit-transpose and XOR property tests, the
// 4-lane SHA-256 multi-buffer, batched random-oracle equivalence in both
// instantiations, and an end-to-end MNIST-scale inference that must be
// byte-identical across dispatch target, RO batch width and thread count.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/bitmatrix.h"
#include "core/inference.h"
#include "crypto/aes.h"
#include "crypto/prg.h"
#include "crypto/ro.h"
#include "crypto/sha256.h"
#include "net/party_runner.h"
#include "nn/model.h"
#include "runtime/thread_pool.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"

namespace abnn2 {
namespace {

using core::InferenceClient;
using core::InferenceConfig;
using core::InferenceServer;

Block block_from_hex(const std::string& hex) {
  u8 raw[16];
  for (int i = 0; i < 16; ++i)
    raw[i] = static_cast<u8>(
        std::stoul(hex.substr(2 * static_cast<std::size_t>(i), 2), nullptr, 16));
  return Block::from_bytes(raw);
}

std::string bytes_hex(const Block& b) {
  u8 raw[16];
  b.to_bytes(raw);
  static const char* d = "0123456789abcdef";
  std::string s;
  for (u8 byte : raw) {
    s.push_back(d[byte >> 4]);
    s.push_back(d[byte & 15]);
  }
  return s;
}

struct DispatchGuard {
  ~DispatchGuard() { simd::set_force_portable(false); }
};
struct WidthGuard {
  ~WidthGuard() { set_ro_batch_width(0); }
};
struct ThreadGuard {
  ~ThreadGuard() { runtime::set_threads(0); }
};

// ---------------------------------------------------------------------------
// AES kernels.

TEST(SimdKernels, RoundKeysMatchAcrossTables) {
  const auto& p = simd::portable_kernels();
  const auto& n = simd::native_kernels();
  Prg prg(Block{0x51, 1});
  for (int t = 0; t < 16; ++t) {
    const Block key = prg.next_block();
    Block rk_p[11], rk_n[11];
    p.aes128_key_expand(key, rk_p);
    n.aes128_key_expand(key, rk_n);
    for (int r = 0; r < 11; ++r) EXPECT_EQ(rk_p[r], rk_n[r]) << t << "/" << r;
  }
}

// FIPS-197 Appendix B and the NIST AESAVS zero-key KAT, through BOTH tables.
TEST(SimdKernels, KnownAnswersBothTables) {
  for (const auto* kt : {&simd::portable_kernels(), &simd::native_kernels()}) {
    Block rk[11];
    kt->aes128_key_expand(block_from_hex("2b7e151628aed2a6abf7158809cf4f3c"),
                          rk);
    Block ct;
    const Block pt = block_from_hex("3243f6a8885a308d313198a2e0370734");
    kt->aes128_encrypt_blocks(rk, &pt, &ct, 1);
    EXPECT_EQ(bytes_hex(ct), "3925841d02dc09fbdc118597196a0b32") << kt->name;

    kt->aes128_key_expand(kZeroBlock, rk);
    const Block zero = kZeroBlock;
    kt->aes128_encrypt_blocks(rk, &zero, &ct, 1);
    EXPECT_EQ(bytes_hex(ct), "66e94bd4ef8a2c3b884cfa59ca342b2e") << kt->name;
  }
}

// Random inputs at every batch size 1..9 (exercises the 8-way main loop, the
// 4-way and 1-way tails, and their combinations) must match the portable
// single-block path, in-place and out-of-place.
TEST(SimdKernels, EncryptBlocksPortableVsNativeBatch1To9) {
  const auto& p = simd::portable_kernels();
  const auto& n = simd::native_kernels();
  Prg prg(Block{0x52, 1});
  const Block key = prg.next_block();
  Block rk_p[11], rk_n[11];
  p.aes128_key_expand(key, rk_p);
  n.aes128_key_expand(key, rk_n);
  for (std::size_t batch = 1; batch <= 9; ++batch) {
    std::vector<Block> in(batch), want(batch), got(batch);
    for (auto& b : in) b = prg.next_block();
    for (std::size_t i = 0; i < batch; ++i)
      p.aes128_encrypt_blocks(rk_p, &in[i], &want[i], 1);
    n.aes128_encrypt_blocks(rk_n, in.data(), got.data(), batch);
    EXPECT_EQ(got, want) << "batch " << batch;
    // In-place (`in` may alias `out`).
    n.aes128_encrypt_blocks(rk_n, in.data(), in.data(), batch);
    EXPECT_EQ(in, want) << "in-place batch " << batch;
  }
}

// ---------------------------------------------------------------------------
// XOR kernels.

TEST(SimdKernels, XorKernelsMatchNaive) {
  Prg prg(Block{0x53, 1});
  for (const auto* kt : {&simd::portable_kernels(), &simd::native_kernels()}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{16},
                          std::size_t{31}, std::size_t{32}, std::size_t{33},
                          std::size_t{64}, std::size_t{100}}) {
      std::vector<u8> dst(n), a(n), b(n);
      prg.bytes(dst.data(), n);
      prg.bytes(a.data(), n);
      prg.bytes(b.data(), n);
      std::vector<u8> want2 = dst, want3 = dst;
      for (std::size_t i = 0; i < n; ++i) want2[i] ^= a[i];
      for (std::size_t i = 0; i < n; ++i) want3[i] ^= a[i] ^ b[i];
      std::vector<u8> got = dst;
      kt->xor_bytes(got.data(), a.data(), n);
      EXPECT_EQ(got, want2) << kt->name << " n=" << n;
      got = dst;
      kt->xor3_bytes(got.data(), a.data(), b.data(), n);
      EXPECT_EQ(got, want3) << kt->name << " n=" << n;
    }
  }
}

// ---------------------------------------------------------------------------
// Bit transpose.

void naive_transpose(const u8* in, std::size_t in_stride, std::size_t n_rows,
                     std::size_t n_cols, u8* out, std::size_t out_stride) {
  for (std::size_t r = 0; r < n_rows; ++r)
    for (std::size_t c = 0; c < n_cols; ++c)
      if ((in[r * in_stride + c / 8] >> (c % 8)) & 1)
        out[c * out_stride + r / 8] |= static_cast<u8>(1u << (r % 8));
}

TEST(SimdKernels, TransposeBitsMatchesNaive) {
  Prg prg(Block{0x54, 1});
  struct Case {
    std::size_t rows, cols, extra_stride;
  };
  for (const Case& tc :
       {Case{8, 3, 0}, Case{8, 8, 0}, Case{16, 5, 2}, Case{16, 16, 0},
        Case{24, 64, 0}, Case{40, 13, 1}, Case{128, 128, 0}, Case{64, 200, 3},
        Case{256, 33, 0}}) {
    const std::size_t in_stride = bytes_for_bits(tc.cols) + tc.extra_stride;
    const std::size_t out_stride = bytes_for_bits(tc.rows) + tc.extra_stride;
    std::vector<u8> in(tc.rows * in_stride);
    prg.bytes(in.data(), in.size());
    // Bits past n_cols in the last byte of each row may be garbage; the
    // kernels must ignore them.
    std::vector<u8> want(tc.cols * out_stride, 0);
    naive_transpose(in.data(), in_stride, tc.rows, tc.cols, want.data(),
                    out_stride);
    for (const auto* kt :
         {&simd::portable_kernels(), &simd::native_kernels()}) {
      std::vector<u8> got(tc.cols * out_stride, 0);
      kt->transpose_bits(in.data(), in_stride, tc.rows, tc.cols, got.data(),
                         out_stride);
      EXPECT_EQ(got, want) << kt->name << " " << tc.rows << "x" << tc.cols;
    }
  }
}

// BitMatrix::transpose (remainder rows, parallel path) against get/set.
TEST(SimdKernels, BitMatrixTransposeProperty) {
  Prg prg(Block{0x55, 1});
  for (auto [rows, cols] :
       {std::pair<std::size_t, std::size_t>{13, 20},
        std::pair<std::size_t, std::size_t>{128, 1000},
        std::pair<std::size_t, std::size_t>{1000, 128},
        std::pair<std::size_t, std::size_t>{77, 257}}) {
    BitMatrix m(rows, cols);
    // Randomize via set() so the padding bits past `cols` stay zero (they
    // are not part of the matrix and transpose drops them).
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < cols; ++j) m.set(i, j, prg.next_bit());
    const BitMatrix t = m.transpose();
    ASSERT_EQ(t.rows(), cols);
    ASSERT_EQ(t.cols(), rows);
    bool ok = true;
    for (std::size_t i = 0; i < rows && ok; ++i)
      for (std::size_t j = 0; j < cols; ++j)
        if (m.get(i, j) != t.get(j, i)) {
          ok = false;
          ADD_FAILURE() << rows << "x" << cols << " mismatch at " << i << ","
                        << j;
          break;
        }
    EXPECT_EQ(m.transpose().transpose(), m);
  }
}

// ---------------------------------------------------------------------------
// Multi-buffer SHA-256.

TEST(SimdKernels, Sha256X4MatchesScalar) {
  const auto& n = simd::native_kernels();
  if (n.sha256_x4 == nullptr)
    GTEST_SKIP() << "no multi-buffer SHA-256 compiled in";
  Prg prg(Block{0x56, 1});
  for (std::size_t msg_len : {std::size_t{0}, std::size_t{1}, std::size_t{16},
                              std::size_t{48}, std::size_t{55}}) {
    u8 blocks[4 * 64];
    std::memset(blocks, 0, sizeof(blocks));
    std::array<std::array<u8, 32>, 4> want;
    for (int l = 0; l < 4; ++l) {
      u8 msg[55];
      prg.bytes(msg, msg_len);
      u8* p = blocks + 64 * l;
      std::memcpy(p, msg, msg_len);
      p[msg_len] = 0x80;
      const u64 bit_len = static_cast<u64>(msg_len) * 8;
      for (int b = 0; b < 8; ++b)
        p[56 + b] = static_cast<u8>(bit_len >> (56 - 8 * b));
      Sha256 h;
      h.update(msg, msg_len);
      want[static_cast<std::size_t>(l)] = h.digest();
    }
    u8 got[4 * 32];
    n.sha256_x4(blocks, got);
    for (int l = 0; l < 4; ++l)
      EXPECT_EQ(std::memcmp(got + 32 * l,
                            want[static_cast<std::size_t>(l)].data(), 32),
                0)
          << "msg_len " << msg_len << " lane " << l;
  }
}

// ---------------------------------------------------------------------------
// Batched random oracle.

// ro_hash_batch must equal n independent ro_hash calls for every mode, batch
// width, row size (16 = IKNP, 32 = KK13, 39 = the single-SHA-block edge,
// 40 = one past it, 0 = empty rows) and batch size 1..9, under both dispatch
// targets.
TEST(SimdRo, BatchMatchesSingleAllWidthsBothModes) {
  WidthGuard wguard;
  DispatchGuard dguard;
  Prg prg(Block{0x57, 1});
  for (RoMode m : {RoMode::kSha256, RoMode::kFixedKeyAes}) {
    ScopedRoMode mode(m);
    for (bool portable : {false, true}) {
      simd::set_force_portable(portable);
      for (std::size_t row_bytes : {std::size_t{0}, std::size_t{16},
                                    std::size_t{32}, std::size_t{39},
                                    std::size_t{40}}) {
        for (std::size_t n = 1; n <= 9; ++n) {
          std::vector<u8> rows(std::max<std::size_t>(1, n * row_bytes));
          prg.bytes(rows.data(), rows.size());
          const u64 tag = 0xAB00 + n;
          const u64 index0 = prg.next_u64();
          std::vector<RoDigest> want(n);
          for (std::size_t i = 0; i < n; ++i)
            want[i] = ro_hash(tag, index0 + i,
                              std::span<const u8>(rows.data() + i * row_bytes,
                                                  row_bytes));
          for (std::size_t w = 1; w <= 8; ++w) {
            set_ro_batch_width(w);
            std::vector<RoDigest> got(n);
            ro_hash_batch(tag, index0, rows.data(), row_bytes, n, got.data());
            for (std::size_t i = 0; i < n; ++i)
              EXPECT_EQ(got[i].d, want[i].d)
                  << (m == RoMode::kSha256 ? "sha" : "aes") << " portable="
                  << portable << " rb=" << row_bytes << " n=" << n
                  << " w=" << w << " i=" << i;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: the transcript is an execution-strategy invariant.

// A full MNIST-scale inference must produce byte-identical logits AND a
// byte-identical transcript shape regardless of (a) forced-portable vs
// native kernel dispatch, (b) RO batch width 1 (the seed's per-instance
// path) vs 8, (c) 1 vs 4 pool threads.
TEST(SimdDeterminism, MnistInferenceIdenticalAcrossDispatchWidthAndThreads) {
  ThreadGuard tguard;
  WidthGuard wguard;
  DispatchGuard dguard;
  const ss::Ring ring(32);
  const auto model =
      nn::fig4_model(ring, nn::FragScheme::binary(), Block{950, 1});
  const std::size_t batch = 2;
  const auto x = nn::synthetic_images(784, batch, 16, ring, Block{950, 2});
  const nn::MatU64 want = nn::infer_plain(model, x);

  struct RunResult {
    nn::MatU64 logits;
    ChannelStats stats0, stats1;
  };
  auto run_with = [&](bool portable, std::size_t width, std::size_t threads) {
    simd::set_force_portable(portable);
    set_ro_batch_width(width);
    InferenceConfig cfg(ring);
    cfg.threads = threads;
    InferenceServer server(model, cfg);
    InferenceClient client(cfg);
    auto res = run_two_parties(
        [&](Channel& ch) {
          server.run_offline(ch);
          server.run_online(ch);
          return 0;
        },
        [&](Channel& ch) {
          client.run_offline(ch, batch);
          return client.run_online(ch, x);
        });
    simd::set_force_portable(false);
    set_ro_batch_width(0);
    return RunResult{res.party1, res.stats0, res.stats1};
  };

  const RunResult base = run_with(false, 8, 4);
  EXPECT_EQ(base.logits, want);

  const auto expect_same = [&](const RunResult& r, const char* what) {
    EXPECT_EQ(r.logits, base.logits) << what;
    EXPECT_EQ(r.stats0.bytes_sent, base.stats0.bytes_sent) << what;
    EXPECT_EQ(r.stats0.bytes_received, base.stats0.bytes_received) << what;
    EXPECT_EQ(r.stats0.messages_sent, base.stats0.messages_sent) << what;
    EXPECT_EQ(r.stats0.rounds, base.stats0.rounds) << what;
    EXPECT_EQ(r.stats1.bytes_sent, base.stats1.bytes_sent) << what;
    EXPECT_EQ(r.stats1.bytes_received, base.stats1.bytes_received) << what;
    EXPECT_EQ(r.stats1.messages_sent, base.stats1.messages_sent) << what;
    EXPECT_EQ(r.stats1.rounds, base.stats1.rounds) << what;
  };
  expect_same(run_with(true, 8, 4), "forced-portable dispatch");
  expect_same(run_with(false, 1, 4), "RO batch width 1");
  expect_same(run_with(false, 8, 1), "single-threaded pool");
}

}  // namespace
}  // namespace abnn2
