// Tests for base OT, IKNP 1-out-of-2 extension and KK13 1-out-of-N
// extension: correctness of the chosen message, receiver privacy shape, and
// failure paths.
#include <gtest/gtest.h>

#include "net/party_runner.h"
#include "ot/base_ot.h"
#include "ot/iknp.h"
#include "ot/kk13.h"
#include "ot/wh_code.h"

namespace abnn2 {
namespace {

TEST(WhCode, MinimumDistanceIs128) {
  const auto& t = wh_table();
  for (u32 a = 0; a < 32; ++a) {
    for (u32 b = a + 1; b < 32; ++b) {
      const CodeWord x = cw_xor(t[a], t[b]);
      std::size_t dist = 0;
      for (int w = 0; w < 2; ++w)
        dist += static_cast<std::size_t>(__builtin_popcountll(x[w].lo())) +
                static_cast<std::size_t>(__builtin_popcountll(x[w].hi()));
      EXPECT_EQ(dist, 128u) << a << " vs " << b;
    }
  }
}

TEST(WhCode, ZeroCodewordIsZero) {
  EXPECT_EQ(wh_codeword(0)[0], kZeroBlock);
  EXPECT_EQ(wh_codeword(0)[1], kZeroBlock);
}

TEST(WhCode, RejectsOutOfRange) {
  EXPECT_THROW(wh_codeword(256), std::invalid_argument);
}

TEST(WhCode, Linearity) {
  // WH is linear: c(a) ^ c(b) == c(a ^ b).
  for (u32 a : {1u, 5u, 77u, 255u})
    for (u32 b : {2u, 9u, 130u})
      EXPECT_EQ(cw_xor(wh_codeword(a), wh_codeword(b)), wh_codeword(a ^ b));
}

// Protocol v2: each extend() sends the whole correction matrix as exactly
// ONE wire message from the receiver (the sender sends nothing), instead of
// one tiny message per code column.
TEST(Iknp, ExtendCoalescesCorrectionsIntoOneMessage) {
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{31, 1});
        IknpSender s;
        s.setup(ch, prg);
        const ChannelStats before = ch.snapshot();
        s.extend(ch, 333);
        return (ch.snapshot() - before).messages_sent;
      },
      [&](Channel& ch) {
        Prg prg(Block{31, 2});
        IknpReceiver r;
        r.setup(ch, prg);
        BitVec choices(333);
        const ChannelStats before = ch.snapshot();
        r.extend(ch, choices);
        return (ch.snapshot() - before).messages_sent;
      });
  EXPECT_EQ(res.party0, 0u);
  EXPECT_EQ(res.party1, 1u);
}

TEST(Kk13, ExtendCoalescesCorrectionsIntoOneMessage) {
  std::vector<u32> choices(200);
  for (std::size_t i = 0; i < choices.size(); ++i)
    choices[i] = static_cast<u32>(i % 7);
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{32, 1});
        Kk13Sender s;
        s.setup(ch, prg);
        const ChannelStats before = ch.snapshot();
        s.extend(ch, choices.size());
        return (ch.snapshot() - before).messages_sent;
      },
      [&](Channel& ch) {
        Prg prg(Block{32, 2});
        Kk13Receiver r;
        r.setup(ch, prg);
        const ChannelStats before = ch.snapshot();
        r.extend(ch, choices);
        return (ch.snapshot() - before).messages_sent;
      });
  EXPECT_EQ(res.party0, 0u);
  EXPECT_EQ(res.party1, 1u);
}

TEST(BaseOt, ReceiverGetsChosenMessage) {
  constexpr std::size_t n = 16;
  BitVec choices(n);
  Prg cprg(Block{1, 9});
  for (std::size_t i = 0; i < n; ++i) choices.set(i, cprg.next_bit());

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{100, 1});
        return base_ot_send(ch, n, prg);
      },
      [&](Channel& ch) {
        Prg prg(Block{100, 2});
        return base_ot_recv(ch, choices, prg);
      });
  ASSERT_EQ(res.party0.size(), n);
  ASSERT_EQ(res.party1.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(res.party1[i], res.party0[i][choices[i] ? 1 : 0]);
    EXPECT_NE(res.party0[i][0], res.party0[i][1]);
  }
}

TEST(BaseOt, PairsAreFreshAcrossInstances) {
  BitVec choices(4);
  auto run = [&] {
    return run_two_parties(
        [&](Channel& ch) {
          Prg prg;  // OS entropy
          return base_ot_send(ch, 4, prg);
        },
        [&](Channel& ch) {
          Prg prg;
          return base_ot_recv(ch, choices, prg);
        });
  };
  auto a = run();
  auto b = run();
  EXPECT_NE(a.party0[0][0], b.party0[0][0]);
}

TEST(BaseOt, MalformedPointRejected) {
  EXPECT_THROW(
      run_two_parties(
          [&](Channel& ch) {
            std::array<u8, 32> junk{};
            junk[0] = 2;  // y=2 is not on the curve
            ch.send(junk.data(), junk.size());
            ch.recv_u64();  // never arrives: peer throws -> channel closes
            return 0;
          },
          [&](Channel& ch) {
            Prg prg(Block{1, 1});
            BitVec c(2);
            base_ot_recv(ch, c, prg);
            return 0;
          }),
      std::exception);
}

class IknpTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IknpTest, ChosenBlocksAreTransferred) {
  const std::size_t m = GetParam();
  BitVec choices(m);
  Prg cprg(Block{2, static_cast<u64>(m)});
  for (std::size_t i = 0; i < m; ++i) choices.set(i, cprg.next_bit());
  std::vector<std::array<Block, 2>> msgs(m);
  for (auto& p : msgs) {
    p[0] = cprg.next_block();
    p[1] = cprg.next_block();
  }

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{7, 1});
        IknpSender s;
        s.setup(ch, prg);
        s.extend(ch, m);
        s.send_blocks(ch, msgs);
        return 0;
      },
      [&](Channel& ch) {
        Prg prg(Block{7, 2});
        IknpReceiver r;
        r.setup(ch, prg);
        r.extend(ch, choices);
        return r.recv_blocks(ch);
      });
  ASSERT_EQ(res.party1.size(), m);
  for (std::size_t i = 0; i < m; ++i)
    EXPECT_EQ(res.party1[i], msgs[i][choices[i] ? 1 : 0]) << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, IknpTest,
                         ::testing::Values(1, 2, 127, 128, 129, 1000));

TEST(Iknp, CorrelatedOtComputesSharesOfBTimesDelta) {
  constexpr std::size_t m = 500;
  constexpr std::size_t l = 32;
  BitVec choices(m);
  std::vector<u64> deltas(m);
  Prg cprg(Block{3, 3});
  for (std::size_t i = 0; i < m; ++i) {
    choices.set(i, cprg.next_bit());
    deltas[i] = cprg.next_bits(l);
  }

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{8, 1});
        IknpSender s;
        s.setup(ch, prg);
        s.extend(ch, m);
        return s.send_correlated(ch, deltas, l);
      },
      [&](Channel& ch) {
        Prg prg(Block{8, 2});
        IknpReceiver r;
        r.setup(ch, prg);
        r.extend(ch, choices);
        return r.recv_correlated(ch, l);
      });
  for (std::size_t i = 0; i < m; ++i) {
    const u64 want = choices[i] ? deltas[i] : 0;
    EXPECT_EQ((res.party1[i] - res.party0[i]) & mask_l(l), want) << i;
  }
}

TEST(Iknp, MultipleExtendsShareOneSetup) {
  BitVec c1(10), c2(20);
  for (std::size_t i = 0; i < 10; ++i) c1.set(i, i % 2);
  for (std::size_t i = 0; i < 20; ++i) c2.set(i, i % 3 == 0);
  std::vector<std::array<Block, 2>> m1(10), m2(20);
  Prg mp(Block{4, 4});
  for (auto& p : m1) p = {mp.next_block(), mp.next_block()};
  for (auto& p : m2) p = {mp.next_block(), mp.next_block()};

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{9, 1});
        IknpSender s;
        s.setup(ch, prg);
        s.extend(ch, 10);
        s.send_blocks(ch, m1);
        s.extend(ch, 20);
        s.send_blocks(ch, m2);
        return 0;
      },
      [&](Channel& ch) {
        Prg prg(Block{9, 2});
        IknpReceiver r;
        r.setup(ch, prg);
        r.extend(ch, c1);
        auto a = r.recv_blocks(ch);
        r.extend(ch, c2);
        auto b = r.recv_blocks(ch);
        a.insert(a.end(), b.begin(), b.end());
        return a;
      });
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(res.party1[i], m1[i][c1[i] ? 1 : 0]);
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_EQ(res.party1[10 + i], m2[i][c2[i] ? 1 : 0]);
}

TEST(Iknp, SetupTwiceThrows) {
  EXPECT_THROW(
      run_two_parties(
          [&](Channel& ch) {
            Prg prg(Block{1, 1});
            IknpSender s;
            s.setup(ch, prg);
            s.setup(ch, prg);
            return 0;
          },
          [&](Channel& ch) {
            Prg prg(Block{1, 2});
            IknpReceiver r;
            r.setup(ch, prg);
            r.setup(ch, prg);
            return 0;
          }),
      ProtocolError);
}

TEST(Iknp, ExtendBeforeSetupThrows) {
  auto [c0, c1] = MemChannel::make_pair();
  IknpSender s;
  EXPECT_THROW(s.extend(*c0, 8), ProtocolError);
  IknpReceiver r;
  BitVec c(8);
  EXPECT_THROW(r.extend(*c1, c), ProtocolError);
}

// KK13: receiver learns exactly the pad of its choice; all other sender pads
// are different.
class Kk13Test : public ::testing::TestWithParam<u32> {};

TEST_P(Kk13Test, ReceiverPadMatchesSenderPadOfChoice) {
  const u32 n_values = GetParam();
  const std::size_t m = 64;
  std::vector<u32> choices(m);
  Prg cprg(Block{5, n_values});
  for (auto& w : choices) w = static_cast<u32>(cprg.next_below(n_values));

  struct SenderOut {
    std::vector<RoDigest> chosen;
    std::vector<RoDigest> other;
  };
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{11, 1});
        Kk13Sender s;
        s.setup(ch, prg);
        s.extend(ch, m);
        SenderOut out;
        for (std::size_t i = 0; i < m; ++i) {
          out.chosen.push_back(s.pad(i, choices[i]));
          out.other.push_back(s.pad(i, (choices[i] + 1) % n_values));
        }
        return out;
      },
      [&](Channel& ch) {
        Prg prg(Block{11, 2});
        Kk13Receiver r;
        r.setup(ch, prg);
        r.extend(ch, choices);
        std::vector<RoDigest> pads;
        for (std::size_t i = 0; i < m; ++i) pads.push_back(r.pad(i));
        return pads;
      });
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_EQ(res.party0.chosen[i].d, res.party1[i].d) << i;
    if (n_values > 1) {
      EXPECT_NE(res.party0.other[i].d, res.party1[i].d) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NValues, Kk13Test,
                         ::testing::Values(2, 3, 4, 8, 16, 256));

TEST(Kk13, PadsAreUniqueAcrossInstancesAndValues) {
  const std::size_t m = 8;
  std::vector<u32> choices(m, 0);
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{12, 1});
        Kk13Sender s;
        s.setup(ch, prg);
        s.extend(ch, m);
        std::vector<std::string> pads;
        for (std::size_t i = 0; i < m; ++i)
          for (u32 j = 0; j < 4; ++j)
            pads.push_back(std::string(reinterpret_cast<const char*>(s.pad(i, j).d.data()), 32));
        return pads;
      },
      [&](Channel& ch) {
        Prg prg(Block{12, 2});
        Kk13Receiver r;
        r.setup(ch, prg);
        r.extend(ch, choices);
        return 0;
      });
  std::set<std::string> uniq(res.party0.begin(), res.party0.end());
  EXPECT_EQ(uniq.size(), res.party0.size());
}

TEST(Kk13, ChoiceOutOfRangeThrows) {
  auto [c0, c1] = MemChannel::make_pair();
  Kk13Receiver r;
  std::vector<u32> bad{256};
  EXPECT_THROW(r.extend(*c1, bad), std::exception);
}

TEST(Kk13, MultipleExtendsProduceFreshPads) {
  std::vector<u32> choices{3, 5};
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{13, 1});
        Kk13Sender s;
        s.setup(ch, prg);
        s.extend(ch, 2);
        auto p1 = s.pad(0, 3);
        s.extend(ch, 2);
        auto p2 = s.pad(0, 3);
        EXPECT_NE(p1.d, p2.d);
        return std::vector<RoDigest>{p1, p2};
      },
      [&](Channel& ch) {
        Prg prg(Block{13, 2});
        Kk13Receiver r;
        r.setup(ch, prg);
        r.extend(ch, choices);
        auto p1 = r.pad(0);
        r.extend(ch, choices);
        auto p2 = r.pad(0);
        return std::vector<RoDigest>{p1, p2};
      });
  EXPECT_EQ(res.party0[0].d, res.party1[0].d);
  EXPECT_EQ(res.party0[1].d, res.party1[1].d);
}

// Full chosen-message round trips under BOTH random-oracle instantiations:
// the mode changes pad values (and thus the wire bytes) but never protocol
// correctness, and both modes route through the batched kernel paths.
class RoModeOtTest : public ::testing::TestWithParam<RoMode> {};

TEST_P(RoModeOtTest, IknpRoundTrip) {
  ScopedRoMode mode(GetParam());
  const std::size_t m = 300;
  BitVec choices(m);
  Prg cprg(Block{21, 1});
  for (std::size_t i = 0; i < m; ++i) choices.set(i, cprg.next_bit());
  std::vector<std::array<Block, 2>> msgs(m);
  for (auto& p : msgs) p = {cprg.next_block(), cprg.next_block()};

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{22, 1});
        IknpSender s;
        s.setup(ch, prg);
        s.extend(ch, m);
        s.send_blocks(ch, msgs);
        return 0;
      },
      [&](Channel& ch) {
        Prg prg(Block{22, 2});
        IknpReceiver r;
        r.setup(ch, prg);
        r.extend(ch, choices);
        return r.recv_blocks(ch);
      });
  ASSERT_EQ(res.party1.size(), m);
  for (std::size_t i = 0; i < m; ++i)
    EXPECT_EQ(res.party1[i], msgs[i][choices[i] ? 1 : 0]) << i;
}

TEST_P(RoModeOtTest, Kk13RoundTrip) {
  ScopedRoMode mode(GetParam());
  const u32 n_values = 16;
  const std::size_t m = 100;
  std::vector<u32> choices(m);
  Prg cprg(Block{23, 1});
  for (auto& w : choices) w = static_cast<u32>(cprg.next_below(n_values));
  std::vector<Block> msgs(m * n_values);
  for (auto& b : msgs) b = cprg.next_block();

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{24, 1});
        Kk13Sender s;
        s.setup(ch, prg);
        s.extend(ch, m);
        s.send_blocks(ch, msgs, n_values);
        return 0;
      },
      [&](Channel& ch) {
        Prg prg(Block{24, 2});
        Kk13Receiver r;
        r.setup(ch, prg);
        r.extend(ch, choices);
        return r.recv_blocks(ch, n_values);
      });
  ASSERT_EQ(res.party1.size(), m);
  for (std::size_t i = 0; i < m; ++i)
    EXPECT_EQ(res.party1[i], msgs[i * n_values + choices[i]]) << i;
}

INSTANTIATE_TEST_SUITE_P(Modes, RoModeOtTest,
                         ::testing::Values(RoMode::kSha256,
                                           RoMode::kFixedKeyAes),
                         [](const auto& info) {
                           return info.param == RoMode::kSha256 ? "Sha256"
                                                                : "FixedKeyAes";
                         });

// The random-oracle mode must not affect protocol correctness.
TEST(Kk13, WorksWithFixedKeyAesRo) {
  ScopedRoMode mode(RoMode::kFixedKeyAes);
  std::vector<u32> choices{0, 7, 15, 2};
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{14, 1});
        Kk13Sender s;
        s.setup(ch, prg);
        s.extend(ch, choices.size());
        std::vector<RoDigest> pads;
        for (std::size_t i = 0; i < choices.size(); ++i)
          pads.push_back(s.pad(i, choices[i]));
        return pads;
      },
      [&](Channel& ch) {
        Prg prg(Block{14, 2});
        Kk13Receiver r;
        r.setup(ch, prg);
        r.extend(ch, choices);
        std::vector<RoDigest> pads;
        for (std::size_t i = 0; i < choices.size(); ++i) pads.push_back(r.pad(i));
        return pads;
      });
  for (std::size_t i = 0; i < choices.size(); ++i)
    EXPECT_EQ(res.party0[i].d, res.party1[i].d);
}

}  // namespace
}  // namespace abnn2
