// Tests for the garbled-circuit substrate: builder library vs plain
// evaluation, half-gates garble/eval equivalence, and the two-party GC
// protocol over a channel.
#include <gtest/gtest.h>

#include "gc/circuit.h"
#include "gc/garble.h"
#include "gc/protocol.h"
#include "net/party_runner.h"

namespace abnn2::gc {
namespace {

std::vector<bool> to_bits(u64 v, std::size_t l) {
  std::vector<bool> b(l);
  for (std::size_t i = 0; i < l; ++i) b[i] = (v >> i) & 1;
  return b;
}

u64 from_bits(const std::vector<bool>& b) {
  u64 v = 0;
  for (std::size_t i = 0; i < b.size(); ++i)
    if (b[i]) v |= u64{1} << i;
  return v;
}

// Builds circuit: out = a + b mod 2^l, a from garbler, b from evaluator.
Circuit adder_circuit(std::size_t l) {
  Builder bld;
  auto a = bld.garbler_inputs(l);
  auto b = bld.evaluator_inputs(l);
  auto s = bld.add_mod(a, b);
  bld.mark_outputs(s);
  return bld.build();
}

class WordOpTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WordOpTest, AddSubPlainMatchesU64) {
  const std::size_t l = GetParam();
  const u64 mask = mask_l(l);
  Prg prg(Block{1, static_cast<u64>(l)});
  for (int it = 0; it < 30; ++it) {
    const u64 x = prg.next_bits(l), y = prg.next_bits(l);
    {
      Builder bld;
      auto a = bld.garbler_inputs(l);
      auto b = bld.evaluator_inputs(l);
      bld.mark_outputs(bld.add_mod(a, b));
      Circuit c = bld.build();
      auto out = eval_plain(c, to_bits(x, l), to_bits(y, l));
      EXPECT_EQ(from_bits(out), (x + y) & mask);
    }
    {
      Builder bld;
      auto a = bld.garbler_inputs(l);
      auto b = bld.evaluator_inputs(l);
      bld.mark_outputs(bld.sub_mod(a, b));
      Circuit c = bld.build();
      auto out = eval_plain(c, to_bits(x, l), to_bits(y, l));
      EXPECT_EQ(from_bits(out), (x - y) & mask);
    }
  }
}

TEST_P(WordOpTest, LessThanPlainMatchesU64) {
  const std::size_t l = GetParam();
  Prg prg(Block{2, static_cast<u64>(l)});
  for (int it = 0; it < 30; ++it) {
    u64 x = prg.next_bits(l), y = prg.next_bits(l);
    if (it == 0) y = x;  // include the equal case
    Builder bld;
    auto a = bld.garbler_inputs(l);
    auto b = bld.evaluator_inputs(l);
    bld.mark_output(bld.less_than(a, b));
    Circuit c = bld.build();
    auto out = eval_plain(c, to_bits(x, l), to_bits(y, l));
    EXPECT_EQ(out[0], x < y) << x << " " << y;
  }
}

TEST_P(WordOpTest, MuxPlain) {
  const std::size_t l = GetParam();
  Prg prg(Block{3, static_cast<u64>(l)});
  for (bool sel : {false, true}) {
    const u64 x = prg.next_bits(l), y = prg.next_bits(l);
    Builder bld;
    auto g = bld.garbler_inputs(l + 1);  // sel + a
    auto b = bld.evaluator_inputs(l);
    std::vector<u32> a(g.begin() + 1, g.end());
    bld.mark_outputs(bld.mux(g[0], a, b));
    Circuit c = bld.build();
    std::vector<bool> gb;
    gb.push_back(sel);
    for (bool v : to_bits(x, l)) gb.push_back(v);
    auto out = eval_plain(c, gb, to_bits(y, l));
    EXPECT_EQ(from_bits(out), sel ? x : y);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, WordOpTest, ::testing::Values(1, 2, 8, 32, 64));

TEST(Circuit, AndCountOfAdder) {
  Circuit c = adder_circuit(32);
  // l-1 full adders with 1 AND each + 1 half-adder AND = 32... minus the
  // last carry we skip: adds are (l-2) carries + 1 initial = l-1.
  EXPECT_EQ(c.and_count(), 31u);
}

TEST(Garble, EvalMatchesPlainOnRandomCircuits) {
  Prg prg(Block{10, 10});
  for (int trial = 0; trial < 10; ++trial) {
    // Random circuit: 8 garbler bits, 8 evaluator bits, 60 random gates.
    Builder bld;
    auto g = bld.garbler_inputs(8);
    auto e = bld.evaluator_inputs(8);
    std::vector<u32> pool;
    pool.insert(pool.end(), g.begin(), g.end());
    pool.insert(pool.end(), e.begin(), e.end());
    for (int i = 0; i < 60; ++i) {
      const u32 a = pool[prg.next_below(pool.size())];
      const u32 b = pool[prg.next_below(pool.size())];
      switch (prg.next_below(3)) {
        case 0: pool.push_back(bld.XOR(a, b)); break;
        case 1: pool.push_back(bld.AND(a, b)); break;
        default: pool.push_back(bld.NOT(a)); break;
      }
    }
    for (int i = 0; i < 8; ++i)
      bld.mark_output(pool[pool.size() - 1 - static_cast<std::size_t>(i)]);
    Circuit c = bld.build();

    std::vector<bool> gb(8), eb(8);
    for (auto&& v : gb) v = prg.next_bit();
    for (auto&& v : eb) v = prg.next_bit();
    auto want = eval_plain(c, gb, eb);

    Garbler garb(c, 1, /*tweak_base=*/trial * 1000, prg);
    std::vector<Block> gl(8), el(8);
    for (int i = 0; i < 8; ++i) {
      gl[static_cast<std::size_t>(i)] = garb.encode(
          garb.g_input_label0(0, static_cast<std::size_t>(i)), gb[static_cast<std::size_t>(i)]);
      el[static_cast<std::size_t>(i)] = garb.encode(
          garb.e_input_label0(0, static_cast<std::size_t>(i)), eb[static_cast<std::size_t>(i)]);
    }
    auto got = Evaluator::eval(c, garb.batch(), trial * 1000, gl, el);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_EQ(got[i] != 0, want[i]) << "trial " << trial << " bit " << i;
  }
}

TEST(Garble, BatchInstancesAreIndependent) {
  Circuit c = adder_circuit(16);
  Prg prg(Block{11, 11});
  const std::size_t n = 5;
  Garbler garb(c, n, 0, prg);
  std::vector<Block> gl(n * 16), el(n * 16);
  std::vector<u64> xs(n), ys(n);
  for (std::size_t k = 0; k < n; ++k) {
    xs[k] = prg.next_bits(16);
    ys[k] = prg.next_bits(16);
    for (std::size_t i = 0; i < 16; ++i) {
      gl[k * 16 + i] = garb.encode(garb.g_input_label0(k, i), (xs[k] >> i) & 1);
      el[k * 16 + i] = garb.encode(garb.e_input_label0(k, i), (ys[k] >> i) & 1);
    }
  }
  auto out = Evaluator::eval(c, garb.batch(), 0, gl, el);
  for (std::size_t k = 0; k < n; ++k) {
    u64 v = 0;
    for (std::size_t i = 0; i < 16; ++i)
      if (out[k * 16 + i]) v |= u64{1} << i;
    EXPECT_EQ(v, (xs[k] + ys[k]) & mask_l(16)) << k;
  }
}

TEST(Garble, WrongLabelGivesWrongOutput) {
  constexpr std::size_t l = 32;
  Circuit c = adder_circuit(l);
  Prg prg(Block{12, 12});
  Garbler garb(c, 1, 0, prg);
  std::vector<Block> gl(l), el(l);
  for (std::size_t i = 0; i < l; ++i) {
    gl[i] = garb.encode(garb.g_input_label0(0, i), 0);
    el[i] = garb.encode(garb.e_input_label0(0, i), 0);
  }
  auto good = Evaluator::eval(c, garb.batch(), 0, gl, el);
  gl[0] = prg.next_block();  // corrupt one label
  auto bad = Evaluator::eval(c, garb.batch(), 0, gl, el);
  EXPECT_NE(good, bad);
}

TEST(GcProtocol, TwoPartyAdderOverChannel) {
  const std::size_t l = 32;
  Circuit c = adder_circuit(l);
  Prg in_prg(Block{20, 20});
  const std::size_t n = 7;
  std::vector<u64> xs(n), ys(n);
  std::vector<u8> g_bits(n * l), e_bits(n * l);
  for (std::size_t k = 0; k < n; ++k) {
    xs[k] = in_prg.next_bits(l);
    ys[k] = in_prg.next_bits(l);
    for (std::size_t i = 0; i < l; ++i) {
      g_bits[k * l + i] = (xs[k] >> i) & 1;
      e_bits[k * l + i] = (ys[k] >> i) & 1;
    }
  }

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{21, 1});
        GcGarbler g;
        g.run(ch, c, n, g_bits, prg);
        return 0;
      },
      [&](Channel& ch) {
        Prg prg(Block{21, 2});
        GcEvaluator e;
        return e.run(ch, c, n, e_bits, prg);
      });

  for (std::size_t k = 0; k < n; ++k) {
    u64 v = 0;
    for (std::size_t i = 0; i < l; ++i)
      if (res.party1[k * l + i]) v |= u64{1} << i;
    EXPECT_EQ(v, (xs[k] + ys[k]) & mask_l(l)) << k;
  }
}

TEST(GcProtocol, SessionReuseAcrossRuns) {
  Circuit c = adder_circuit(8);
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{22, 1});
        GcGarbler g;
        std::vector<u8> bits(8, 0);
        bits[0] = 1;  // x = 1
        g.run(ch, c, 1, bits, prg);
        bits[1] = 1;  // x = 3
        g.run(ch, c, 1, bits, prg);
        return 0;
      },
      [&](Channel& ch) {
        Prg prg(Block{22, 2});
        GcEvaluator e;
        std::vector<u8> bits(8, 0);
        bits[1] = 1;  // y = 2
        auto r1 = e.run(ch, c, 1, bits, prg);
        auto r2 = e.run(ch, c, 1, bits, prg);
        u64 v1 = 0, v2 = 0;
        for (std::size_t i = 0; i < 8; ++i) {
          if (r1[i]) v1 |= u64{1} << i;
          if (r2[i]) v2 |= u64{1} << i;
        }
        return std::pair<u64, u64>{v1, v2};
      });
  EXPECT_EQ(res.party1.first, 3u);   // 1 + 2
  EXPECT_EQ(res.party1.second, 5u);  // 3 + 2
}

TEST(GcProtocol, InputSizeMismatchThrows) {
  Circuit c = adder_circuit(8);
  auto [c0, c1] = MemChannel::make_pair();
  Prg prg(Block{1, 1});
  GcGarbler g;
  std::vector<u8> wrong(7);
  EXPECT_THROW(g.run(*c0, c, 1, wrong, prg), std::invalid_argument);
}

}  // namespace
}  // namespace abnn2::gc
