// Tests for the SecureML, MiniONN and QUOTIENT baselines: triplet
// correctness and end-to-end inference equivalence through the shared
// engine.
#include <gtest/gtest.h>

#include "baselines/minionn.h"
#include "baselines/quotient.h"
#include "baselines/secureml.h"
#include "core/inference.h"
#include "net/party_runner.h"

namespace abnn2::baselines {
namespace {

using nn::MatU64;
using ss::Ring;

class SecureMlTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SecureMlTest, TripletsReconstructToProduct) {
  const std::size_t l = GetParam();
  const Ring ring(l);
  Prg dprg(Block{1, l});
  const std::size_t m = 3, n = 4, o = 2;
  MatU64 w = nn::random_mat(m, n, l, dprg);
  MatU64 r = nn::random_mat(n, o, l, dprg);

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{2, 1});
        IknpReceiver ot;
        ot.setup(ch, prg);
        return secureml_triplet_server(ch, ot, w, o, ring);
      },
      [&](Channel& ch) {
        Prg prg(Block{2, 2});
        IknpSender ot;
        ot.setup(ch, prg);
        return secureml_triplet_client(ch, ot, r, m, ring, prg);
      });

  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t k = 0; k < o; ++k) {
      u64 want = 0;
      for (std::size_t j = 0; j < n; ++j)
        want = ring.add(want, ring.mul(w.at(i, j), r.at(j, k)));
      EXPECT_EQ(ring.add(res.party0.at(i, k), res.party1.at(i, k)), want)
          << l << " " << i << "," << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SecureMlTest, ::testing::Values(8, 32, 64));

TEST(SecureMl, ChunkBoundariesDoNotMatter) {
  const Ring ring(16);
  Prg dprg(Block{3, 3});
  MatU64 w = nn::random_mat(2, 3, 16, dprg);
  MatU64 r = nn::random_mat(3, 2, 16, dprg);
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{4, 1});
        IknpReceiver ot;
        ot.setup(ch, prg);
        return secureml_triplet_server(ch, ot, w, 2, ring, /*chunk=*/5);
      },
      [&](Channel& ch) {
        Prg prg(Block{4, 2});
        IknpSender ot;
        ot.setup(ch, prg);
        return secureml_triplet_client(ch, ot, r, 2, ring, prg, /*chunk=*/5);
      });
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t k = 0; k < 2; ++k) {
      u64 want = 0;
      for (std::size_t j = 0; j < 3; ++j)
        want = ring.add(want, ring.mul(w.at(i, j), r.at(j, k)));
      EXPECT_EQ(ring.add(res.party0.at(i, k), res.party1.at(i, k)), want);
    }
}

class QuotientTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuotientTest, TernaryTripletsReconstruct) {
  const std::size_t o = GetParam();
  const Ring ring(32);
  Prg dprg(Block{5, o});
  const std::size_t m = 4, n = 6;
  MatU64 codes(m, n);
  for (auto& c : codes.data()) c = dprg.next_below(3);
  MatU64 r = nn::random_mat(n, o, 32, dprg);

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{6, 1});
        IknpReceiver ot;
        ot.setup(ch, prg);
        return quotient_triplet_server(ch, ot, codes, o, ring);
      },
      [&](Channel& ch) {
        Prg prg(Block{6, 2});
        IknpSender ot;
        ot.setup(ch, prg);
        return quotient_triplet_client(ch, ot, r, m, ring);
      });

  const auto scheme = nn::FragScheme::ternary();
  const MatU64 want = nn::matmul_codes(ring, codes, scheme, r);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t k = 0; k < o; ++k)
      EXPECT_EQ(ring.add(res.party0.at(i, k), res.party1.at(i, k)),
                want.at(i, k));
}

INSTANTIATE_TEST_SUITE_P(Batches, QuotientTest, ::testing::Values(1, 3, 8));

TEST(Quotient, RejectsNonTernaryCodes) {
  const Ring ring(32);
  MatU64 codes(1, 1);
  codes.at(0, 0) = 3;
  auto [c0, c1] = MemChannel::make_pair();
  IknpReceiver ot;
  Prg prg(Block{1, 1});
  EXPECT_THROW(
      {
        // setup would block; validation happens before any OT, so call the
        // chunk path directly with an un-setup extension and expect the
        // validation error first.
        quotient_triplet_server(*c0, ot, codes, 1, ring);
      },
      std::exception);
}

class MinionnTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MinionnTest, TripletsReconstructToProduct) {
  const std::size_t l = GetParam();
  const Ring ring(l);
  Prg dprg(Block{7, l});
  // n_in = 8 with ring 64 -> 8 rows per ciphertext; m = 10 spans 2 blocks.
  const std::size_t m = 10, n = 8, o = 2;
  nn::Matrix<i64> w(m, n);
  for (auto& v : w.data()) v = static_cast<i64>(dprg.next_below(257)) - 128;
  MatU64 r = nn::random_mat(n, o, l, dprg);

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{8, 1});
        MinionnServer srv(l <= 32 ? 32 : 64, /*ring_n=*/64);
        return srv.triplet_gen(ch, w, o, ring, prg);
      },
      [&](Channel& ch) {
        Prg prg(Block{8, 2});
        MinionnClient cli(l <= 32 ? 32 : 64, prg, /*ring_n=*/64);
        return cli.triplet_gen(ch, r, m, ring, prg);
      });

  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t k = 0; k < o; ++k) {
      u64 want = 0;
      for (std::size_t j = 0; j < n; ++j)
        want = ring.add(want,
                        ring.mul(ring.from_signed(w.at(i, j)), r.at(j, k)));
      EXPECT_EQ(ring.add(res.party0.at(i, k), res.party1.at(i, k)), want)
          << l << " " << i << "," << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, MinionnTest, ::testing::Values(32, 64));

TEST(Minionn, RejectsTooWideLayer) {
  const Ring ring(32);
  Prg prg(Block{9, 9});
  MinionnServer srv(32, 64);
  nn::Matrix<i64> w(1, 100);  // 100 > ring_n = 64
  auto [c0, c1] = MemChannel::make_pair();
  EXPECT_THROW(srv.triplet_gen(*c0, w, 1, ring, prg), std::invalid_argument);
}

// ---- end-to-end through the shared engine -------------------------------

void check_backend_inference(core::Backend backend, const std::string& spec,
                             std::size_t l) {
  const Ring ring(l);
  const auto scheme = nn::FragScheme::parse(spec);
  const auto model = nn::random_model(ring, scheme, {12, 8, 4}, Block{10, l});
  const auto x = nn::synthetic_images(12, 2, l / 2, ring, Block{11, 11});

  core::InferenceConfig cfg(ring);
  cfg.backend = backend;

  auto res = run_two_parties(
      [&](Channel& ch) {
        core::InferenceServer server(model, cfg);
        server.run_offline(ch);
        server.run_online(ch);
        return 0;
      },
      [&](Channel& ch) {
        core::InferenceClient client(cfg);
        client.run_offline(ch, 2);
        return client.run_online(ch, x);
      });
  EXPECT_EQ(res.party1, nn::infer_plain(model, x));
}

TEST(BackendInference, SecureMlMatchesPlain) {
  check_backend_inference(core::Backend::kSecureML, "s(2,2,2,2)", 32);
}

TEST(BackendInference, QuotientMatchesPlain) {
  check_backend_inference(core::Backend::kQuotient, "ternary", 32);
}

TEST(BackendInference, MinionnMatchesPlain) {
  check_backend_inference(core::Backend::kMiniONN, "s(2,2)", 32);
}

TEST(BackendInference, MinionnMatchesPlain64) {
  check_backend_inference(core::Backend::kMiniONN, "ternary", 64);
}

TEST(BackendInference, BackendMismatchDetected) {
  const Ring ring(32);
  const auto model = nn::random_model(ring, nn::FragScheme::binary(), {4, 2},
                                      Block{12, 12});
  core::InferenceConfig scfg(ring), ccfg(ring);
  scfg.backend = core::Backend::kAbnn2;
  ccfg.backend = core::Backend::kSecureML;
  EXPECT_THROW(run_two_parties(
                   [&](Channel& ch) {
                     core::InferenceServer server(model, scfg);
                     server.run_offline(ch);
                     return 0;
                   },
                   [&](Channel& ch) {
                     core::InferenceClient client(ccfg);
                     client.run_offline(ch, 1);
                     return 0;
                   }),
               std::exception);
}

}  // namespace
}  // namespace abnn2::baselines
