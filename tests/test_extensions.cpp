// Tests for the extension features beyond the paper's evaluation:
// convolution via local im2col on shares, and the secure argmax protocol.
#include <gtest/gtest.h>

#include "core/argmax.h"
#include "core/inference.h"
#include "core/triplet_gen.h"
#include "net/party_runner.h"
#include "nn/conv.h"

namespace abnn2 {
namespace {

using nn::ConvSpec;
using nn::MatU64;
using ss::Ring;

TEST(Conv, OutputGeometry) {
  ConvSpec s{/*in_c=*/3, /*in_h=*/8, /*in_w=*/8, /*k_h=*/3, /*k_w=*/3,
             /*out_c=*/4, /*stride=*/1, /*pad=*/1};
  EXPECT_EQ(s.out_h(), 8u);
  EXPECT_EQ(s.out_w(), 8u);
  s.stride = 2;
  s.pad = 0;
  EXPECT_EQ(s.out_h(), 3u);
  EXPECT_EQ(s.patch_size(), 27u);
  ConvSpec bad{1, 2, 2, 5, 5, 1, 1, 0};
  EXPECT_THROW(bad.out_h(), std::invalid_argument);
}

TEST(Conv, Im2colIdentityKernelGeometry) {
  // 1x1 kernel, stride 1: im2col is the identity rearrangement.
  const Ring ring(32);
  ConvSpec s{2, 3, 3, 1, 1, 1, 1, 0};
  Prg prg(Block{1, 1});
  MatU64 x = nn::random_mat(s.in_size(), 2, 32, prg);
  const MatU64 cols = nn::im2col(s, x);
  ASSERT_EQ(cols.rows(), 2u);
  ASSERT_EQ(cols.cols(), 9u * 2);
  for (std::size_t b = 0; b < 2; ++b)
    for (std::size_t p = 0; p < 9; ++p)
      for (std::size_t c = 0; c < 2; ++c)
        EXPECT_EQ(cols.at(c, b * 9 + p), x.at(c * 9 + p, b));
}

TEST(Conv, PlainConvMatchesDirectSlidingWindow) {
  const Ring ring(32);
  ConvSpec s{2, 5, 4, 3, 2, 3, /*stride=*/1, /*pad=*/1};
  Prg prg(Block{2, 2});
  MatU64 x = nn::random_mat(s.in_size(), 2, 32, prg);
  MatU64 kern = nn::random_mat(s.out_c, s.patch_size(), 8, prg);
  const MatU64 y = nn::conv_plain(ring, s, kern, x);

  // Direct sliding-window reference.
  for (std::size_t b = 0; b < 2; ++b)
    for (std::size_t oc = 0; oc < s.out_c; ++oc)
      for (std::size_t oy = 0; oy < s.out_h(); ++oy)
        for (std::size_t ox = 0; ox < s.out_w(); ++ox) {
          u64 acc = 0;
          for (std::size_t c = 0; c < s.in_c; ++c)
            for (std::size_t ky = 0; ky < s.k_h; ++ky)
              for (std::size_t kx = 0; kx < s.k_w; ++kx) {
                const i64 iy = static_cast<i64>(oy + ky) - 1;
                const i64 ix = static_cast<i64>(ox + kx) - 1;
                if (iy < 0 || ix < 0 || iy >= 5 || ix >= 4) continue;
                const u64 xv = x.at(
                    (c * 5 + static_cast<std::size_t>(iy)) * 4 +
                        static_cast<std::size_t>(ix),
                    b);
                const u64 wv = kern.at(oc, (c * s.k_h + ky) * s.k_w + kx);
                acc = ring.add(acc, ring.mul(wv, xv));
              }
          EXPECT_EQ(y.at(oc, b * s.out_positions() + oy * s.out_w() + ox), acc);
        }
}

TEST(Conv, Im2colCommutesWithSecretSharing) {
  // The property that makes secure conv free: im2col(x0) + im2col(x1) =
  // im2col(x0 + x1), so parties lower their shares locally.
  const Ring ring(32);
  ConvSpec s{1, 6, 6, 3, 3, 2, 2, 1};
  Prg prg(Block{3, 3});
  MatU64 x = nn::random_mat(s.in_size(), 3, 32, prg);
  MatU64 x0(x.rows(), x.cols()), x1(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    const auto sh = ss::share(ring, x.data()[i], prg);
    x0.data()[i] = sh.s0;
    x1.data()[i] = sh.s1;
  }
  const MatU64 a = nn::im2col(s, x0);
  const MatU64 b = nn::im2col(s, x1);
  const MatU64 want = nn::im2col(s, x);
  for (std::size_t i = 0; i < want.data().size(); ++i)
    EXPECT_EQ(ring.add(a.data()[i], b.data()[i]), want.data()[i]);
}

TEST(Conv, SecureConvViaTripletsMatchesPlain) {
  // End-to-end: conv lowered to a matmul triplet over the OT protocol.
  const Ring ring(32);
  const auto scheme = nn::FragScheme::parse("s(2,2)");
  ConvSpec s{1, 5, 5, 3, 3, 2, 1, 0};
  Prg dprg(Block{4, 4});
  MatU64 kern_codes(s.out_c, s.patch_size());
  for (auto& c : kern_codes.data()) c = dprg.next_below(scheme.code_space());
  MatU64 x = nn::random_mat(s.in_size(), 2, 32, dprg);

  // Client's share of the input; server's share zero for simplicity (the
  // triplet protocol only ever sees R = im2col(x1)).
  const MatU64 patches = nn::im2col(s, x);
  core::TripletConfig cfg(ring);

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{5, 1});
        Kk13Receiver ot;
        ot.setup(ch, prg);
        return core::triplet_gen_server(ch, ot, kern_codes, scheme,
                                        patches.cols(), cfg);
      },
      [&](Channel& ch) {
        Prg prg(Block{5, 2});
        Kk13Sender ot;
        ot.setup(ch, prg);
        return core::triplet_gen_client(ch, ot, patches, scheme, s.out_c, cfg,
                                        prg);
      });

  MatU64 kern_values(s.out_c, s.patch_size());
  for (std::size_t i = 0; i < kern_values.data().size(); ++i)
    kern_values.data()[i] =
        scheme.interpret_ring(kern_codes.data()[i], ring);
  const MatU64 want = nn::conv_plain(ring, s, kern_values, x);
  for (std::size_t i = 0; i < want.data().size(); ++i)
    EXPECT_EQ(ring.add(res.party0.data()[i], res.party1.data()[i]),
              want.data()[i]);
}

TEST(Conv, FlattenConvOutputLayout) {
  ConvSpec s{1, 4, 4, 3, 3, 2, 1, 0};  // 2x2 positions, 2 channels
  MatU64 y(2, 4 * 3);                  // batch 3
  for (std::size_t c = 0; c < 2; ++c)
    for (std::size_t col = 0; col < 12; ++col) y.at(c, col) = 100 * c + col;
  const MatU64 f = nn::flatten_conv_output(s, y, 3);
  ASSERT_EQ(f.rows(), 8u);
  ASSERT_EQ(f.cols(), 3u);
  // Row c*4+p of column b must equal y(c, b*4+p).
  for (std::size_t c = 0; c < 2; ++c)
    for (std::size_t b = 0; b < 3; ++b)
      for (std::size_t p = 0; p < 4; ++p)
        EXPECT_EQ(f.at(c * 4 + p, b), y.at(c, b * 4 + p));
}

class CnnInferenceTest
    : public ::testing::TestWithParam<core::Backend> {};

TEST_P(CnnInferenceTest, SecureCnnMatchesPlain) {
  const Ring ring(32);
  const auto scheme = GetParam() == core::Backend::kQuotient
                          ? nn::FragScheme::ternary()
                          : nn::FragScheme::parse("s(2,2)");
  const auto model = nn::small_cnn_model(ring, scheme, Block{30, 30});
  const auto x = nn::synthetic_images(100, 2, 12, ring, Block{31, 31});

  core::InferenceConfig cfg(ring);
  cfg.backend = GetParam();

  auto res = run_two_parties(
      [&](Channel& ch) {
        core::InferenceServer server(model, cfg);
        server.run_offline(ch);
        server.run_online(ch);
        return 0;
      },
      [&](Channel& ch) {
        core::InferenceClient client(cfg);
        client.run_offline(ch, 2);
        return client.run_online(ch, x);
      });
  EXPECT_EQ(res.party1, nn::infer_plain(model, x));
}

INSTANTIATE_TEST_SUITE_P(Backends, CnnInferenceTest,
                         ::testing::Values(core::Backend::kAbnn2,
                                           core::Backend::kSecureML,
                                           core::Backend::kQuotient,
                                           core::Backend::kMiniONN));

TEST(CnnInference, ArgmaxRevealOnCnn) {
  const Ring ring(32);
  const auto model =
      nn::small_cnn_model(ring, nn::FragScheme::parse("s(2,2)"), Block{32, 32});
  const auto x = nn::synthetic_images(100, 2, 12, ring, Block{33, 33});
  core::InferenceConfig cfg(ring);
  cfg.reveal = core::Reveal::kArgmax;

  auto res = run_two_parties(
      [&](Channel& ch) {
        core::InferenceServer server(model, cfg);
        server.run_offline(ch);
        server.run_online(ch);
        return 0;
      },
      [&](Channel& ch) {
        core::InferenceClient client(cfg);
        client.run_offline(ch, 2);
        return client.run_online(ch, x);
      });
  const auto want = nn::argmax_logits(ring, nn::infer_plain(model, x));
  for (std::size_t k = 0; k < 2; ++k)
    EXPECT_EQ(res.party1.at(0, k), want[k]);
}

// ---- secure argmax -------------------------------------------------------

TEST(Argmax, CircuitShapeAndGateCount) {
  const auto c = core::argmax_circuit(32, 10);
  EXPECT_EQ(c.out.size(), 4u);  // ceil(log2 10)
  // 10 adders + 9 comparators + 9 value muxes + 9 index muxes, all O(l).
  EXPECT_GT(c.and_count(), 10u * 31);
  EXPECT_LT(c.and_count(), 10u * 31 + 9u * (32 + 32 + 4) + 100);
}

class ArgmaxTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArgmaxTest, ClientLearnsExactlyTheArgmax) {
  const std::size_t n_classes = GetParam();
  const Ring ring(32);
  Prg dprg(Block{6, n_classes});
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<i64> logits(n_classes);
    for (auto& v : logits)
      v = static_cast<i64>(dprg.next_below(2000)) - 1000;
    logits[static_cast<std::size_t>(trial) % n_classes] = 5000;  // clear winner
    std::vector<u64> y0(n_classes), y1(n_classes);
    for (std::size_t i = 0; i < n_classes; ++i) {
      const auto sh = ss::share(ring, ring.from_signed(logits[i]), dprg);
      y0[i] = sh.s0;
      y1[i] = sh.s1;
    }
    auto res = run_two_parties(
        [&](Channel& ch) {
          Prg prg(Block{7, 1});
          gc::GcGarbler g;
          core::argmax_server(ch, g, ring, y0, prg);
          return 0;
        },
        [&](Channel& ch) {
          Prg prg(Block{7, 2});
          gc::GcEvaluator e;
          return core::argmax_client(ch, e, ring, y1, prg);
        });
    EXPECT_EQ(res.party1, static_cast<std::size_t>(trial) % n_classes);
  }
}

INSTANTIATE_TEST_SUITE_P(Classes, ArgmaxTest, ::testing::Values(2, 3, 10, 16));

TEST(Argmax, NegativeLogitsHandled) {
  const Ring ring(32);
  std::vector<i64> logits = {-10, -3, -500, -4};
  Prg dprg(Block{8, 8});
  std::vector<u64> y0(4), y1(4);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto sh = ss::share(ring, ring.from_signed(logits[i]), dprg);
    y0[i] = sh.s0;
    y1[i] = sh.s1;
  }
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{9, 1});
        gc::GcGarbler g;
        core::argmax_server(ch, g, ring, y0, prg);
        return 0;
      },
      [&](Channel& ch) {
        Prg prg(Block{9, 2});
        gc::GcEvaluator e;
        return core::argmax_client(ch, e, ring, y1, prg);
      });
  EXPECT_EQ(res.party1, 1u);  // -3 is the max
}

TEST(Argmax, TieGoesToTheFirst) {
  const Ring ring(16);
  std::vector<u64> y0 = {5, 5, 2};
  std::vector<u64> y1 = {0, 0, 0};
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{10, 1});
        gc::GcGarbler g;
        core::argmax_server(ch, g, ring, y0, prg);
        return 0;
      },
      [&](Channel& ch) {
        Prg prg(Block{10, 2});
        gc::GcEvaluator e;
        return core::argmax_client(ch, e, ring, y1, prg);
      });
  EXPECT_EQ(res.party1, 0u);  // strict greater-than keeps the earlier index
}

}  // namespace
}  // namespace abnn2
