// Tests for the parallel runtime: ThreadPool/parallel_for semantics,
// schedule-independence of the parallel kernels, end-to-end determinism of a
// full MNIST-scale inference across thread counts, and the chaos/reconnect
// behavior with the pool enabled.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/bitmatrix.h"
#include "core/inference.h"
#include "crypto/prg.h"
#include "net/fault_channel.h"
#include "net/framed_channel.h"
#include "net/party_runner.h"
#include "nn/model.h"
#include "runtime/thread_pool.h"

namespace abnn2 {
namespace {

using core::InferenceClient;
using core::InferenceConfig;
using core::InferenceServer;

// Restores the process-default pool size (ABNN2_THREADS env / hardware
// concurrency) when a test that overrides it goes out of scope.
struct ThreadGuard {
  ~ThreadGuard() { runtime::set_threads(0); }
};

TEST(ThreadPool, SetThreadsControlsPoolSize) {
  ThreadGuard guard;
  runtime::set_threads(3);
  EXPECT_EQ(runtime::num_threads(), 3u);
  runtime::set_threads(1);
  EXPECT_EQ(runtime::num_threads(), 1u);
  runtime::set_threads(0);
  EXPECT_GE(runtime::num_threads(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  runtime::set_threads(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  runtime::parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  runtime::parallel_for(0, [&](std::size_t) { FAIL() << "empty range ran"; });
}

TEST(ThreadPool, SlicesPartitionTheRangeContiguously) {
  ThreadGuard guard;
  runtime::set_threads(4);
  // More slices than threads and a range that does not divide evenly.
  constexpr std::size_t kN = 103;
  constexpr std::size_t kSlices = 7;
  std::vector<int> owner(kN, -1);
  runtime::parallel_slices(
      kN, kSlices, [&](std::size_t slice, std::size_t b, std::size_t e) {
        ASSERT_LT(b, e);
        for (std::size_t i = b; i < e; ++i) {
          ASSERT_EQ(owner[i], -1) << "index covered twice";
          owner[i] = static_cast<int>(slice);
        }
      });
  // Every index covered, slice ids non-decreasing over the range.
  for (std::size_t i = 0; i < kN; ++i) ASSERT_NE(owner[i], -1) << i;
  for (std::size_t i = 1; i < kN; ++i) ASSERT_GE(owner[i], owner[i - 1]);
}

TEST(ThreadPool, PropagatesSliceExceptions) {
  ThreadGuard guard;
  runtime::set_threads(4);
  EXPECT_THROW(runtime::parallel_for(1000,
                                     [&](std::size_t i) {
                                       if (i == 777)
                                         throw ProtocolError("boom");
                                     }),
               ProtocolError);
  // The pool survives a throwing job.
  std::atomic<int> ran{0};
  runtime::parallel_for(100, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 100);
}

// Two caller threads (the shape of run_two_parties: both protocol parties in
// one process) share the global pool concurrently. Callers always help with
// their own job, so this must complete even with zero free workers.
TEST(ThreadPool, ConcurrentCallersShareThePool) {
  ThreadGuard guard;
  runtime::set_threads(2);
  constexpr std::size_t kN = 4096;
  auto work = [&](u64 mult) {
    u64 expect = 0;
    for (std::size_t i = 0; i < kN; ++i) expect += mult * i;
    for (int rep = 0; rep < 50; ++rep) {
      std::vector<u64> vals(kN);
      runtime::parallel_for(kN, [&](std::size_t i) { vals[i] = mult * i; });
      u64 sum = 0;
      for (u64 v : vals) sum += v;
      EXPECT_EQ(sum, expect);
    }
  };
  std::thread other([&] { work(3); });
  work(7);
  other.join();
}

// The parallel compute kernels are bit-identical for every pool size.
TEST(ParallelKernels, ResultsIndependentOfThreadCount) {
  ThreadGuard guard;
  const ss::Ring ring(32);
  const auto scheme = nn::FragScheme::parse("(2,2,2,2)");
  const auto model =
      nn::random_model(ring, scheme, {64, 48}, Block{810, 1});
  const auto x = nn::synthetic_images(64, 8, 16, ring, Block{810, 2});

  BitMatrix bm(600, 300);
  Prg prg(Block{810, 3});
  for (std::size_t i = 0; i < bm.rows(); ++i)
    for (std::size_t j = 0; j < bm.cols(); ++j) bm.set(i, j, prg.next_bit());

  runtime::set_threads(1);
  const auto y1 = nn::matmul_codes(ring, model.layers[0].codes, scheme, x);
  const auto t1 = bm.transpose();
  runtime::set_threads(4);
  const auto y4 = nn::matmul_codes(ring, model.layers[0].codes, scheme, x);
  const auto t4 = bm.transpose();
  EXPECT_EQ(y1, y4);
  EXPECT_EQ(t1, t4);
}

// Satellite: one full MNIST-scale inference (the Fig. 4 architecture,
// 784-128-128-10) run with a 1-thread and a 4-thread pool over MemChannel.
// Outputs must be byte-identical and the metered traffic must match exactly
// — parallelism may never change the transcript. set_threads() is the
// programmatic equivalent of launching with ABNN2_THREADS=1 / =4.
TEST(ParallelDeterminism, MnistInferenceIsIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const ss::Ring ring(32);
  const auto model = nn::fig4_model(ring, nn::FragScheme::binary(),
                                    Block{900, 1});
  const std::size_t batch = 2;
  const auto x = nn::synthetic_images(784, batch, 16, ring, Block{900, 2});
  const nn::MatU64 want = nn::infer_plain(model, x);

  auto run_with = [&](std::size_t threads) {
    InferenceConfig cfg(ring);
    cfg.threads = threads;
    InferenceServer server(model, cfg);  // ctor applies cfg.threads
    InferenceClient client(cfg);
    return run_two_parties(
        [&](Channel& ch) {
          server.run_offline(ch);
          server.run_online(ch);
          return 0;
        },
        [&](Channel& ch) {
          client.run_offline(ch, batch);
          return client.run_online(ch, x);
        });
  };

  const auto serial = run_with(1);
  const auto parallel = run_with(4);

  EXPECT_EQ(serial.party1, want);
  EXPECT_EQ(serial.party1, parallel.party1);  // byte-identical logits

  // Identical transcript shape: same bytes, same message counts, same round
  // structure at both endpoints.
  EXPECT_EQ(serial.stats0.bytes_sent, parallel.stats0.bytes_sent);
  EXPECT_EQ(serial.stats0.bytes_received, parallel.stats0.bytes_received);
  EXPECT_EQ(serial.stats0.messages_sent, parallel.stats0.messages_sent);
  EXPECT_EQ(serial.stats0.rounds, parallel.stats0.rounds);
  EXPECT_EQ(serial.stats1.bytes_sent, parallel.stats1.bytes_sent);
  EXPECT_EQ(serial.stats1.bytes_received, parallel.stats1.bytes_received);
  EXPECT_EQ(serial.stats1.messages_sent, parallel.stats1.messages_sent);
  EXPECT_EQ(serial.stats1.rounds, parallel.stats1.rounds);
}

// Chaos sweep with the pool enabled: deterministic faults under the framed
// layer must still produce either the exact result or a typed error — never
// a hang or a wrong answer — when the hot paths run on 4 threads.
TEST(ParallelDeterminism, ChaosSweepSurvivesWithPoolEnabled) {
  ThreadGuard guard;
  runtime::set_threads(4);
  const ss::Ring ring(32);
  const auto model = nn::random_model(ring, nn::FragScheme::parse("s(2,2)"),
                                      {20, 12, 4}, Block{910, 1});
  const std::size_t batch = 2;
  const auto x = nn::synthetic_images(20, batch, 12, ring, Block{910, 2});
  const nn::MatU64 want = nn::infer_plain(model, x);
  InferenceConfig cfg(ring);

  struct RunOut {
    u64 server_sent = 0, server_recv = 0, client_sent = 0, client_recv = 0;
    bool ok = false;
  };
  const auto run_once = [&](FaultPlan sp, FaultPlan cp) {
    RunOut out;
    InferenceServer server(model, cfg);
    InferenceClient client(cfg);
    auto res = run_two_parties(
        [&](Channel& ch) {
          FaultInjectingChannel fc(ch, sp);
          FramedChannel f(fc);
          server.run_offline(f);
          server.run_online(f);
          return std::pair{fc.stats().bytes_sent, fc.stats().bytes_received};
        },
        [&](Channel& ch) {
          FaultInjectingChannel fc(ch, cp);
          FramedChannel f(fc);
          client.run_offline(f, batch);
          auto logits = client.run_online(f, x);
          EXPECT_EQ(logits, want) << "fault produced a WRONG result: "
                                  << sp.describe() << " / " << cp.describe();
          return std::tuple{fc.stats().bytes_sent, fc.stats().bytes_received,
                            logits == want};
        });
    out.server_sent = res.party0.first;
    out.server_recv = res.party0.second;
    out.client_sent = std::get<0>(res.party1);
    out.client_recv = std::get<1>(res.party1);
    out.ok = std::get<2>(res.party1);
    return out;
  };

  const RunOut clean = run_once(FaultPlan{}, FaultPlan{});
  ASSERT_TRUE(clean.ok);

  int successes = 0, typed_failures = 0;
  for (u64 seed = 1; seed <= 12; ++seed) {
    FaultPlan sp, cp;
    if (seed % 2) {
      sp = FaultPlan::from_seed(seed, clean.server_sent, clean.server_recv);
    } else {
      cp = FaultPlan::from_seed(seed, clean.client_sent, clean.client_recv);
    }
    try {
      const RunOut out = run_once(sp, cp);
      EXPECT_TRUE(out.ok) << "seed " << seed;
      ++successes;
    } catch (const ProtocolError&) {
      ++typed_failures;
    } catch (const ChannelError&) {
      ++typed_failures;
    }
  }
  EXPECT_GE(successes + typed_failures, 12);
  EXPECT_GE(typed_failures, 1) << "no seed injected an effective fault";
}

// Reconnect-and-resume with the pool enabled: a batch interrupted mid-online
// resumes on retained offline material and still produces the exact result.
TEST(ParallelDeterminism, ReconnectResumeWorksWithPoolEnabled) {
  ThreadGuard guard;
  runtime::set_threads(4);
  const ss::Ring ring(32);
  const auto model = nn::random_model(ring, nn::FragScheme::parse("s(2,2)"),
                                      {20, 12, 4}, Block{920, 1});
  const std::size_t batch = 2;
  const auto x = nn::synthetic_images(20, batch, 12, ring, Block{920, 2});
  const nn::MatU64 want = nn::infer_plain(model, x);
  InferenceConfig cfg(ring);

  // Calibrate the client's offline send volume (bytes through the fault
  // layer, i.e. framed) so the cut lands inside the online phase.
  u64 offline_sent = 0;
  {
    InferenceServer server(model, cfg);
    InferenceClient client(cfg);
    run_two_parties(
        [&](Channel& ch) {
          FramedChannel f(ch);
          server.run_offline(f);
          return 0;
        },
        [&](Channel& ch) {
          FaultInjectingChannel fc(ch, FaultPlan{});
          FramedChannel f(fc);
          client.run_offline(f, batch);
          return fc.stats().bytes_sent;
        });
    // Re-run below with fresh parties; only the traffic volume is needed.
    offline_sent = [&] {
      InferenceServer s2(model, cfg);
      InferenceClient c2(cfg);
      auto res = run_two_parties(
          [&](Channel& ch) {
            FramedChannel f(ch);
            s2.run_offline(f);
            return 0;
          },
          [&](Channel& ch) {
            FaultInjectingChannel fc(ch, FaultPlan{});
            FramedChannel f(fc);
            c2.run_offline(f, batch);
            return fc.stats().bytes_sent;
          });
      return res.party1;
    }();
  }
  ASSERT_GT(offline_sent, 0u);

  InferenceServer server(model, cfg);
  InferenceClient client(cfg);
  // Connection 1: the client's link dies partway into the online phase.
  FaultPlan cut;
  cut.kind = FaultPlan::Kind::kCutSend;
  cut.trigger_offset = offline_sent + 100;
  try {
    run_two_parties(
        [&](Channel& ch) {
          FramedChannel f(ch);
          server.run_offline(f);
          server.run_online(f);
          return 0;
        },
        [&](Channel& ch) {
          FaultInjectingChannel fc(ch, cut);
          FramedChannel f(fc);
          client.run_offline(f, batch);
          client.run_online(f, x);
          return 0;
        });
    FAIL() << "injected cut never fired";
  } catch (const ChannelError&) {
  } catch (const ProtocolError&) {
  }
  EXPECT_TRUE(server.has_offline_material());
  EXPECT_TRUE(client.has_offline_material());

  // Connection 2: reconnect, resume on retained triplets, exact result.
  server.reset_session();
  client.reset_session();
  auto res = run_two_parties(
      [&](Channel& ch) {
        FramedChannel f(ch);
        server.run_offline(f);
        server.run_online(f);
        return 0;
      },
      [&](Channel& ch) {
        FramedChannel f(ch);
        client.run_offline(f, batch);
        return client.run_online(f, x);
      });
  EXPECT_TRUE(client.resumed());
  EXPECT_EQ(res.party1, want);
  EXPECT_FALSE(server.has_offline_material());  // consumed by the success
}

}  // namespace
}  // namespace abnn2
