// Observability layer tests: ChannelStats snapshot algebra, config
// validation, protocol seed constants, the zero-overhead-when-disabled
// contract, and the golden Chrome-trace schema: a traced MNIST-scale
// two-party run must emit well-formed trace_event JSON whose summed
// per-span traffic equals the endpoint ChannelStats exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/inference.h"
#include "net/party_runner.h"
#include "obs/obs.h"

namespace abnn2 {
namespace {

using core::InferenceClient;
using core::InferenceConfig;
using core::InferenceServer;
using nn::FragScheme;
using ss::Ring;

// ---- minimal JSON parser (tests only) -------------------------------------
//
// Just enough of RFC 8259 to validate the Chrome trace exporter: objects,
// arrays, strings with the escapes the exporter emits, numbers, literals.

struct Json {
  enum Type { kNull, kBool, kNum, kStr, kArr, kObj };
  Type type = kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  bool has(const std::string& k) const { return obj.count(k) != 0; }
  const Json& at(const std::string& k) const {
    auto it = obj.find(k);
    if (it == obj.end())
      throw std::runtime_error("json: missing key " + k);
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  Json parse() {
    Json v = value();
    ws();
    if (pos_ != s_.size()) fail("trailing data");
    return v;
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const char* what) {
    throw std::runtime_error("json: " + std::string(what) + " at offset " +
                             std::to_string(pos_));
  }
  void ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Json value() {
    ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_();
      case 't': literal("true"); return make_bool(true);
      case 'f': literal("false"); return make_bool(false);
      case 'n': literal("null"); return Json{};
      default: return number();
    }
  }
  static Json make_bool(bool b) {
    Json v;
    v.type = Json::kBool;
    v.b = b;
    return v;
  }
  void literal(const char* lit) {
    for (const char* p = lit; *p; ++p) expect(*p);
  }
  Json object() {
    expect('{');
    Json v;
    v.type = Json::kObj;
    ws();
    if (consume('}')) return v;
    for (;;) {
      ws();
      Json key = string_();
      ws();
      expect(':');
      v.obj.emplace(std::move(key.str), value());
      ws();
      if (consume(',')) continue;
      expect('}');
      return v;
    }
  }
  Json array() {
    expect('[');
    Json v;
    v.type = Json::kArr;
    ws();
    if (consume(']')) return v;
    for (;;) {
      v.arr.push_back(value());
      ws();
      if (consume(',')) continue;
      expect(']');
      return v;
    }
  }
  Json string_() {
    expect('"');
    Json v;
    v.type = Json::kStr;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'n': v.str += '\n'; break;
          case 'r': v.str += '\r'; break;
          case 't': v.str += '\t'; break;
          case 'b': v.str += '\b'; break;
          case 'f': v.str += '\f'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            pos_ += 4;
            v.str += '?';  // exporter never emits non-ASCII names
            break;
          default: fail("unknown escape");
        }
      } else {
        v.str += c;
      }
    }
  }
  Json number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected number");
    Json v;
    v.type = Json::kNum;
    v.num = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                        nullptr);
    return v;
  }
};

// ---- ChannelStats algebra --------------------------------------------------

TEST(ChannelStatsOps, SubtractGivesFieldwiseDelta) {
  const ChannelStats after{100, 50, 7, 3};
  const ChannelStats before{40, 20, 2, 1};
  const ChannelStats d = after - before;
  EXPECT_EQ(d.bytes_sent, 60u);
  EXPECT_EQ(d.bytes_received, 30u);
  EXPECT_EQ(d.messages_sent, 5u);
  EXPECT_EQ(d.rounds, 2u);
  EXPECT_TRUE(d == ChannelStats({60, 30, 5, 2}));
  EXPECT_FALSE(after == before);
}

TEST(ChannelStatsOps, SnapshotDeltaMetersOnePhase) {
  auto [a, b] = MemChannel::make_pair();
  u64 x = 7;
  a->send(&x, 8);  // warm-up traffic outside the "phase"
  b->recv(&x, 8);

  const ChannelStats mark = a->snapshot();
  a->send(&x, 8);
  a->send(&x, 8);
  b->recv(&x, 8);
  b->recv(&x, 8);
  const ChannelStats phase = a->snapshot() - mark;
  EXPECT_EQ(phase.bytes_sent, 16u);
  EXPECT_EQ(phase.messages_sent, 2u);
  EXPECT_EQ(phase.bytes_received, 0u);
}

// ---- protocol seed constants ----------------------------------------------

TEST(ProtocolSeeds, NamedConstantsKeepWireValues) {
  // These tags are baked into every OT pad / GC hash of the v2 wire format;
  // renaming the constants must not change the values.
  EXPECT_EQ(core::kIknpBaselineTag, 0x5EC00001ull);
  EXPECT_EQ(core::kArgmaxGcTag, 0xA43A0001ull);
  EXPECT_NE(core::kIknpBaselineTag, core::kArgmaxGcTag);
}

// ---- InferenceConfig::validate ---------------------------------------------

TEST(InferenceConfigValidate, AcceptsDefaultsAndBoundary) {
  InferenceConfig cfg{Ring(32)};
  EXPECT_NO_THROW(cfg.validate());
  cfg.trunc_bits = 31;  // largest legal value for a 32-bit ring
  cfg.chunk_instances = 1;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(InferenceConfigValidate, RejectsTruncBitsAtRingWidth) {
  InferenceConfig cfg{Ring(32)};
  cfg.trunc_bits = 32;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.trunc_bits = 64;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(InferenceConfigValidate, RejectsZeroChunkInstances) {
  InferenceConfig cfg{Ring(16)};
  cfg.chunk_instances = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(InferenceConfigValidate, ConstructorsRejectBadConfigs) {
  const Ring ring(16);
  const auto model =
      nn::random_model(ring, FragScheme::parse("ternary"), {6, 4}, Block{3, 1});

  InferenceConfig bad_chunk(ring);
  bad_chunk.chunk_instances = 0;
  EXPECT_THROW(InferenceServer(model, bad_chunk), std::invalid_argument);
  EXPECT_THROW(InferenceClient{bad_chunk}, std::invalid_argument);

  InferenceConfig bad_trunc(ring);
  bad_trunc.trunc_bits = 16;
  EXPECT_THROW(InferenceServer(model, bad_trunc), std::invalid_argument);
  EXPECT_THROW(InferenceClient{bad_trunc}, std::invalid_argument);
}

// ---- core obs API ----------------------------------------------------------

TEST(Obs, CountersAccumulateGaugesOverwrite) {
  obs::Collector col;
  obs::Collector* prev = obs::set_collector(&col);
  obs::add_count("x", 2);
  obs::add_count("x", 3);
  obs::set_gauge("g", 1.5);
  obs::set_gauge("g", 2.5);
  obs::set_collector(prev);

  EXPECT_EQ(col.counters().at("x"), 5u);
  EXPECT_DOUBLE_EQ(col.gauges().at("g"), 2.5);
  // After restore the collector no longer receives anything.
  obs::add_count("x", 100);
  EXPECT_EQ(col.counters().at("x"), 5u);
}

TEST(Obs, ScopeRecordsNestingIndexPartyAndTraffic) {
  auto [a, b] = MemChannel::make_pair();
  obs::Collector col;
  obs::Collector* prev = obs::set_collector(&col);
  {
    obs::ScopedParty party(0);
    obs::Scope outer("outer", a.get());
    {
      obs::Scope inner("step", a.get(), 3);
      u64 x = 1;
      a->send(&x, 8);
      b->recv(&x, 8);
    }
  }
  obs::set_collector(prev);

  const auto spans = col.spans();
  ASSERT_EQ(spans.size(), 2u);  // inner closes (and records) first
  EXPECT_EQ(spans[0].name, "step[3]");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[0].party, 0);
  ASSERT_TRUE(spans[0].has_traffic);
  EXPECT_EQ(spans[0].traffic.bytes_sent, 8u);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_EQ(spans[1].traffic.bytes_sent, 8u);
  EXPECT_GE(spans[1].dur_us, spans[0].dur_us);
}

// ---- zero overhead when disabled -------------------------------------------

std::pair<ChannelStats, ChannelStats> run_traced_inference(
    std::size_t batch, const std::vector<std::size_t>& dims) {
  const Ring ring(32);
  const auto model = nn::random_model(ring, FragScheme::parse("ternary"), dims,
                                      Block{11, 5});
  const auto x = nn::synthetic_images(dims[0], batch, 16, ring, Block{12, 7});

  InferenceConfig cfg(ring);
  auto res = run_two_parties(
      [&](Channel& ch) {
        InferenceServer server(model, cfg);
        server.run_offline(ch);
        server.run_online(ch);
        return 0;
      },
      [&](Channel& ch) {
        InferenceClient client(cfg);
        client.run_offline(ch, batch);
        return client.run_online(ch, x).rows();
      });
  return {res.stats0, res.stats1};
}

TEST(Obs, DisabledTracingActivatesNothing) {
  // No observer installed: a full two-party inference must not open a single
  // span (the activation counter is the allocation-free proxy: every span
  // activation allocates, zero activations means zero observer allocations).
  obs::Collector* prev = obs::set_collector(nullptr);
  ASSERT_FALSE(obs::enabled());
  const u64 before = obs::debug_activation_count();
  run_traced_inference(1, {8, 6, 4});
  EXPECT_EQ(obs::debug_activation_count(), before);
  obs::set_collector(prev);
}

TEST(Obs, TracingDoesNotChangeTheTranscript) {
  obs::Collector* prev = obs::set_collector(nullptr);
  const auto [plain0, plain1] = run_traced_inference(1, {8, 6, 4});

  obs::Collector col;
  obs::set_collector(&col);
  const auto [traced0, traced1] = run_traced_inference(1, {8, 6, 4});
  obs::set_collector(prev);

  EXPECT_GT(col.span_count(), 0u);
  // Identical byte/message/round metering in both directions — the observer
  // never touches the wire.
  EXPECT_TRUE(plain0 == traced0);
  EXPECT_TRUE(plain1 == traced1);
}

// ---- golden Chrome-trace schema --------------------------------------------

TEST(Obs, GoldenTraceSchemaMatchesEndpointStats) {
  // MNIST-scale input layer, ternary weights (gamma = 1) to keep the OT
  // volume test-sized.
  obs::Collector col;
  obs::Collector* prev = obs::set_collector(&col);
  const auto [stats0, stats1] = run_traced_inference(2, {784, 16, 10});
  obs::set_collector(prev);

  std::ostringstream os;
  col.write_chrome_trace(os);
  const std::string text = os.str();

  Json root;
  ASSERT_NO_THROW(root = JsonParser(text).parse()) << text.substr(0, 400);
  ASSERT_EQ(root.type, Json::kObj);
  ASSERT_TRUE(root.has("traceEvents"));
  const Json& events = root.at("traceEvents");
  ASSERT_EQ(events.type, Json::kArr);
  ASSERT_FALSE(events.arr.empty());

  // Schema: every event has ph/pid/name; complete events carry ts, dur and
  // an args object tagged with party and depth.
  ChannelStats sum[2];
  std::map<std::string, int> names;
  std::size_t n_complete = 0, n_counters = 0, n_meta = 0;
  for (const Json& e : events.arr) {
    ASSERT_EQ(e.type, Json::kObj);
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("name"));
    const std::string ph = e.at("ph").str;
    if (ph == "M") {
      ++n_meta;
      continue;
    }
    if (ph == "C") {
      ++n_counters;
      ASSERT_TRUE(e.at("args").has("value"));
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++n_complete;
    ASSERT_TRUE(e.has("ts"));
    ASSERT_TRUE(e.has("dur"));
    ASSERT_GE(e.at("dur").num, 0.0);
    const Json& args = e.at("args");
    ASSERT_EQ(args.type, Json::kObj);
    ASSERT_TRUE(args.has("party"));
    ASSERT_TRUE(args.has("depth"));
    ++names[e.at("name").str];

    // Top-level spans partition each endpoint's traffic exactly.
    const int party = static_cast<int>(args.at("party").num);
    if (args.at("depth").num == 0 && args.has("bytes_sent") &&
        (party == 0 || party == 1)) {
      sum[party].bytes_sent += static_cast<u64>(args.at("bytes_sent").num);
      sum[party].bytes_received +=
          static_cast<u64>(args.at("bytes_received").num);
      sum[party].messages_sent +=
          static_cast<u64>(args.at("messages_sent").num);
      sum[party].rounds += static_cast<u64>(args.at("rounds").num);
    }
  }
  EXPECT_GT(n_complete, 0u);
  EXPECT_GT(n_counters, 0u);
  EXPECT_GT(n_meta, 0u);

  // The taxonomy's load-bearing spans all appear, for both parties.
  for (const char* want : {"offline", "online", "handshake", "triplets[0]",
                           "kk13/base-ot", "kk13/extend", "linear[0]",
                           "relu[0]", "reveal", "send-input", "recv-input"})
    EXPECT_TRUE(names.count(want) != 0) << "missing span " << want;

  // Golden invariant: per party, the depth-0 spans ("offline" + "online")
  // sum to that endpoint's ChannelStats, field for field.
  EXPECT_TRUE(sum[0] == stats0)
      << sum[0].bytes_sent << " vs " << stats0.bytes_sent;
  EXPECT_TRUE(sum[1] == stats1)
      << sum[1].bytes_sent << " vs " << stats1.bytes_sent;

  // The summary exporter renders the same collector as a per-layer table.
  std::ostringstream summary;
  col.write_summary(summary);
  const std::string table = summary.str();
  EXPECT_NE(table.find("obs summary"), std::string::npos);
  EXPECT_NE(table.find("offline"), std::string::npos);
  EXPECT_NE(table.find("triplets[0]"), std::string::npos);
  EXPECT_NE(table.find("kk13.extend.instances"), std::string::npos);
}

}  // namespace
}  // namespace abnn2
