// Tests for max-pooling (geometry, plaintext reference, the fused
// ReLU+max-pool GC protocol, engine integration) and model serialization.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/inference.h"
#include "core/maxpool.h"
#include "net/party_runner.h"
#include "nn/model_io.h"
#include "nn/pool.h"

namespace abnn2 {
namespace {

using nn::MatU64;
using nn::PoolSpec;
using ss::Ring;

TEST(Pool, GeometryAndWindowRows) {
  PoolSpec s{2, 4, 4, 2, 2, 2};
  EXPECT_EQ(s.out_h(), 2u);
  EXPECT_EQ(s.out_w(), 2u);
  EXPECT_EQ(s.out_size(), 8u);
  EXPECT_EQ(s.window_elems(), 4u);
  // Window 0: channel 0, top-left 2x2.
  EXPECT_EQ(pool_window_rows(s, 0), (std::vector<std::size_t>{0, 1, 4, 5}));
  // Window 3: channel 0, bottom-right.
  EXPECT_EQ(pool_window_rows(s, 3), (std::vector<std::size_t>{10, 11, 14, 15}));
  // Window 4: channel 1, top-left (offset by h*w = 16).
  EXPECT_EQ(pool_window_rows(s, 4), (std::vector<std::size_t>{16, 17, 20, 21}));
  EXPECT_THROW(pool_window_rows(s, 8), std::invalid_argument);
}

TEST(Pool, PlainReluMaxpool) {
  Ring ring(16);
  PoolSpec s{1, 2, 2, 2, 2, 2};
  MatU64 y(4, 2);
  // Column 0: max is 9 -> 9. Column 1: all negative -> ReLU gives 0.
  y.at(0, 0) = 3;
  y.at(1, 0) = 9;
  y.at(2, 0) = ring.from_signed(-5);
  y.at(3, 0) = 1;
  for (std::size_t i = 0; i < 4; ++i)
    y.at(i, 1) = ring.from_signed(-static_cast<i64>(i) - 1);
  const MatU64 out = nn::relu_maxpool_plain(ring, s, y);
  ASSERT_EQ(out.rows(), 1u);
  EXPECT_EQ(out.at(0, 0), 9u);
  EXPECT_EQ(out.at(0, 1), 0u);
}

TEST(Pool, StridedWindows) {
  PoolSpec s{1, 5, 5, 3, 3, 2};  // out 2x2
  EXPECT_EQ(s.out_h(), 2u);
  const auto rows = pool_window_rows(s, 3);  // oy=1, ox=1 -> start (2,2)
  EXPECT_EQ(rows[0], 12u);                   // (2,2)
  EXPECT_EQ(rows.back(), 24u);               // (4,4)
}

class MaxPoolProtoTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MaxPoolProtoTest, SecureMatchesPlain) {
  const std::size_t l = GetParam();
  const Ring ring(l);
  PoolSpec spec{2, 4, 4, 2, 2, 2};
  Prg dprg(Block{1, l});
  // Random input with both signs: interpret random ring elements as signed.
  MatU64 y = nn::random_mat(spec.in_size(), 3, l, dprg);
  MatU64 y0(y.rows(), y.cols()), y1(y.rows(), y.cols());
  for (std::size_t i = 0; i < y.data().size(); ++i) {
    const auto sh = ss::share(ring, y.data()[i], dprg);
    y0.data()[i] = sh.s0;
    y1.data()[i] = sh.s1;
  }
  MatU64 z1 = nn::random_mat(spec.out_size(), 3, l, dprg);

  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{2, 1});
        core::MaxPoolServer srv(ring);
        return srv.run(ch, spec, y0, prg);
      },
      [&](Channel& ch) {
        Prg prg(Block{2, 2});
        core::MaxPoolClient cli(ring);
        cli.run(ch, spec, y1, z1, prg);
        return 0;
      });

  const MatU64 want = nn::relu_maxpool_plain(ring, spec, y);
  for (std::size_t i = 0; i < want.data().size(); ++i)
    EXPECT_EQ(ring.add(res.party0.data()[i], z1.data()[i]), want.data()[i])
        << i;
}

INSTANTIATE_TEST_SUITE_P(Widths, MaxPoolProtoTest,
                         ::testing::Values(16, 32, 64));

TEST(MaxPoolProto, ShapeMismatchThrows) {
  const Ring ring(32);
  core::MaxPoolClient cli(ring);
  auto [c0, c1] = MemChannel::make_pair();
  Prg prg(Block{1, 1});
  PoolSpec spec{1, 4, 4, 2, 2, 2};
  MatU64 y1(15, 1), z1(4, 1);  // wrong input rows
  EXPECT_THROW(cli.run(*c1, spec, y1, z1, prg), std::invalid_argument);
}

TEST(PooledCnn, PlainShapes) {
  const Ring ring(32);
  const auto model =
      nn::pooled_cnn_model(ring, nn::FragScheme::ternary(), Block{3, 3});
  EXPECT_EQ(model.input_dim(), 144u);
  EXPECT_EQ(model.layers[0].out_dim(), 100u);  // pooled
  EXPECT_EQ(model.layers[0].linear_out_dim(), 400u);
  const auto x = nn::synthetic_images(144, 2, 10, ring, Block{4, 4});
  const auto y = nn::infer_plain(model, x);
  EXPECT_EQ(y.rows(), 10u);
}

TEST(PooledCnn, SecureMatchesPlainEndToEnd) {
  const Ring ring(32);
  const auto model =
      nn::pooled_cnn_model(ring, nn::FragScheme::parse("s(2,2)"), Block{5, 5});
  const auto x = nn::synthetic_images(144, 2, 10, ring, Block{6, 6});
  core::InferenceConfig cfg(ring);

  auto res = run_two_parties(
      [&](Channel& ch) {
        core::InferenceServer server(model, cfg);
        server.run_offline(ch);
        server.run_online(ch);
        return 0;
      },
      [&](Channel& ch) {
        core::InferenceClient client(cfg);
        client.run_offline(ch, 2);
        return client.run_online(ch, x);
      });
  EXPECT_EQ(res.party1, nn::infer_plain(model, x));
}

TEST(Model, PoolAfterFinalLayerRejected) {
  const Ring ring(32);
  nn::Model m(ring);
  nn::FcLayer l{MatU64(4, 4), {}, nn::FragScheme::binary(), {},
                PoolSpec{1, 2, 2, 2, 2, 2}};
  m.layers = {l};
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

// ---- model serialization --------------------------------------------------

TEST(ModelIo, RoundTripFcModel) {
  const Ring ring(32);
  const auto m = nn::random_model(ring, nn::FragScheme::parse("s(3,3,2)"),
                                  {12, 8, 4}, Block{7, 7});
  const auto bytes = nn::serialize_model(m);
  const auto m2 = nn::deserialize_model(bytes);
  ASSERT_EQ(m2.layers.size(), m.layers.size());
  EXPECT_EQ(m2.ring.bits(), 32u);
  for (std::size_t i = 0; i < m.layers.size(); ++i) {
    EXPECT_EQ(m2.layers[i].codes, m.layers[i].codes);
    EXPECT_EQ(m2.layers[i].scheme.name(), m.layers[i].scheme.name());
  }
  // Same predictions.
  const auto x = nn::synthetic_images(12, 2, 12, ring, Block{8, 8});
  EXPECT_EQ(nn::infer_plain(m, x), nn::infer_plain(m2, x));
}

TEST(ModelIo, RoundTripCnnWithPoolAndBias) {
  const Ring ring(64);
  auto m = nn::pooled_cnn_model(ring, nn::FragScheme::ternary(), Block{9, 9});
  m.layers[0].bias.assign(m.layers[0].conv->out_c, 5);
  m.validate();
  const auto m2 = nn::deserialize_model(nn::serialize_model(m));
  ASSERT_TRUE(m2.layers[0].conv.has_value());
  ASSERT_TRUE(m2.layers[0].pool.has_value());
  EXPECT_EQ(m2.layers[0].pool->out_size(), 100u);
  EXPECT_EQ(m2.layers[0].bias, m.layers[0].bias);
  const auto x = nn::synthetic_images(144, 1, 10, ring, Block{10, 10});
  EXPECT_EQ(nn::infer_plain(m, x), nn::infer_plain(m2, x));
}

TEST(ModelIo, FileRoundTrip) {
  const Ring ring(32);
  const auto m = nn::random_model(ring, nn::FragScheme::binary(), {6, 3},
                                  Block{11, 11});
  const std::string path = "/tmp/abnn2_model_io_test.mdl";
  nn::save_model(m, path);
  const auto m2 = nn::load_model(path);
  EXPECT_EQ(m2.layers[0].codes, m.layers[0].codes);
  std::remove(path.c_str());
  EXPECT_THROW(nn::load_model(path), ProtocolError);
}

TEST(ModelIo, RejectsGarbage) {
  std::vector<u8> junk(64, 0xAB);
  EXPECT_THROW(nn::deserialize_model(junk), ProtocolError);
  // Valid magic but truncated body.
  std::vector<u8> trunc = {'A', 'B', 'N', 'N', '2', 'M', 'D', 'L', 2, 0};
  EXPECT_THROW(nn::deserialize_model(trunc), ProtocolError);
}

// Fuzz the loader with hostile byte streams: every truncation, a sweep of
// single-bit flips, and fully random blobs. The loader must either return a
// valid model or throw ProtocolError — it must never crash, hit UB, or let a
// hostile length prefix drive a huge allocation (the ~300-byte inputs here
// would OOM long before failing if any size field were trusted unchecked).
TEST(ModelIo, FuzzedInputsNeverCrashOrOverAllocate) {
  const Ring ring(32);
  auto m = nn::random_model(ring, nn::FragScheme::parse("s(2,2)"), {9, 6, 3},
                            Block{13, 13});
  m.layers[0].bias.assign(6, 3);
  m.validate();
  const auto bytes = nn::serialize_model(m);

  // Every possible truncation is rejected.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const std::vector<u8> t(bytes.begin(), bytes.begin() + n);
    EXPECT_THROW(nn::deserialize_model(t), ProtocolError) << "len " << n;
  }

  // Single-bit flips: parse to some model (a flipped weight bit is a valid
  // file) or throw ProtocolError; any other escape fails the test.
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    for (u32 bit : {0u, 7u}) {
      auto f = bytes;
      f[pos] ^= static_cast<u8>(1u << bit);
      try {
        (void)nn::deserialize_model(f);
      } catch (const ProtocolError&) {
      }
    }
  }

  // Random blobs (deterministic splitmix64 stream).
  u64 s = 0x0DDB1A5E5BAD5EEDULL;
  const auto next = [&s] {
    u64 z = (s += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  for (int it = 0; it < 200; ++it) {
    std::vector<u8> blob(next() % 512);
    for (auto& b : blob) b = static_cast<u8>(next());
    // Half the blobs keep a valid magic+version prefix so the fuzz reaches
    // the interesting layer-parsing code instead of dying on the magic check.
    if (it % 2 && blob.size() >= 12) {
      const u8 prefix[12] = {'A', 'B', 'N', 'N', '2', 'M', 'D', 'L', 2, 0, 0, 0};
      std::copy(prefix, prefix + 12, blob.begin());
    }
    EXPECT_THROW(nn::deserialize_model(blob), ProtocolError) << "it " << it;
  }
}

TEST(ModelIo, RejectsCorruptedCodes) {
  const Ring ring(32);
  const auto m = nn::random_model(ring, nn::FragScheme::ternary(), {4, 2},
                                  Block{12, 12});
  auto bytes = nn::serialize_model(m);
  // Flip bits in the packed code area (near the end) until validation
  // breaks: ternary codes must stay < 3, so 0b11 patterns are rejected.
  bool threw = false;
  for (std::size_t flip = bytes.size() - 20; flip < bytes.size(); ++flip) {
    auto copy = bytes;
    copy[flip] = 0xFF;
    try {
      (void)nn::deserialize_model(copy);
    } catch (const std::exception&) {
      threw = true;
      break;
    }
  }
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace abnn2
