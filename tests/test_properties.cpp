// Cross-module property and edge-case tests: degenerate shapes, extreme
// ring widths, distributional share checks, formula sanity and adversarial
// inputs that unit tests elsewhere do not reach.
#include <gtest/gtest.h>

#include <map>

#include "baselines/secureml.h"
#include "common/packing.h"
#include "core/complexity.h"
#include "core/inference.h"
#include "core/triplet_gen.h"
#include "ec/ed25519.h"
#include "he/bfv.h"
#include "net/party_runner.h"
#include "net/socket_channel.h"

namespace abnn2 {
namespace {

using core::BatchMode;
using core::TripletConfig;
using nn::FragScheme;
using nn::MatU64;
using ss::Ring;

// ---- triplet generation: distributions and degenerate shapes -------------

TEST(TripletProps, ClientSharesLookUniform) {
  // With constant weights and constant r, the client's share v (sum of the
  // random pads) must still cover the ring: no structure may leak.
  const Ring ring(8);
  const FragScheme scheme = FragScheme::binary();
  TripletConfig cfg(ring);
  std::map<u64, int> hist;
  for (int it = 0; it < 40; ++it) {
    MatU64 codes(1, 4, 1);  // all-ones weights
    MatU64 r(4, 1, 7);      // constant r
    auto res = run_two_parties(
        [&](Channel& ch) {
          Prg prg;  // OS entropy: fresh every run
          Kk13Receiver ot;
          ot.setup(ch, prg);
          return core::triplet_gen_server(ch, ot, codes, scheme, 1, cfg);
        },
        [&](Channel& ch) {
          Prg prg;
          Kk13Sender ot;
          ot.setup(ch, prg);
          return core::triplet_gen_client(ch, ot, r, scheme, 1, cfg, prg);
        });
    hist[res.party1.at(0, 0)]++;
    // Correctness still holds per run.
    EXPECT_EQ(ring.add(res.party0.at(0, 0), res.party1.at(0, 0)),
              ring.reduce(4 * 7));
  }
  // 40 samples over 256 values: overwhelmingly unlikely to repeat > 5 times
  // if uniform; catastrophic structure (constant shares) would show up here.
  for (const auto& [v, count] : hist) EXPECT_LE(count, 5) << v;
  EXPECT_GE(hist.size(), 30u);
}

TEST(TripletProps, AllZeroAndAllMaxWeights) {
  const Ring ring(32);
  const FragScheme scheme = FragScheme::parse("s(2,2,2,2)");
  TripletConfig cfg(ring);
  for (u64 code : {u64{0}, scheme.code_space() - 1}) {
    MatU64 codes(2, 3, code);
    Prg dprg(Block{1, code});
    MatU64 r = nn::random_mat(3, 2, 32, dprg);
    auto res = run_two_parties(
        [&](Channel& ch) {
          Prg prg(Block{2, 1});
          Kk13Receiver ot;
          ot.setup(ch, prg);
          return core::triplet_gen_server(ch, ot, codes, scheme, 2, cfg);
        },
        [&](Channel& ch) {
          Prg prg(Block{2, 2});
          Kk13Sender ot;
          ot.setup(ch, prg);
          return core::triplet_gen_client(ch, ot, r, scheme, 2, cfg, prg);
        });
    const MatU64 want = nn::matmul_codes(ring, codes, scheme, r);
    for (std::size_t i = 0; i < want.data().size(); ++i)
      EXPECT_EQ(ring.add(res.party0.data()[i], res.party1.data()[i]),
                want.data()[i]);
  }
}

TEST(TripletProps, OneBitRing) {
  // l = 1: shares and products live in Z_2.
  const Ring ring(1);
  const FragScheme scheme = FragScheme::binary();
  TripletConfig cfg(ring);
  MatU64 codes(2, 2);
  codes.data() = {1, 0, 1, 1};
  MatU64 r(2, 1);
  r.data() = {1, 1};
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{3, 1});
        Kk13Receiver ot;
        ot.setup(ch, prg);
        return core::triplet_gen_server(ch, ot, codes, scheme, 1, cfg);
      },
      [&](Channel& ch) {
        Prg prg(Block{3, 2});
        Kk13Sender ot;
        ot.setup(ch, prg);
        return core::triplet_gen_client(ch, ot, r, scheme, 2, cfg, prg);
      });
  EXPECT_EQ(ring.add(res.party0.at(0, 0), res.party1.at(0, 0)), 1u);  // 1+0
  EXPECT_EQ(ring.add(res.party0.at(1, 0), res.party1.at(1, 0)), 0u);  // 1+1
}

TEST(TripletProps, MismatchedDimensionsDetected) {
  // A disagreement on the output dimension m must fail cleanly, not crash.
  const Ring ring(32);
  const FragScheme scheme = FragScheme::binary();
  TripletConfig cfg(ring);
  MatU64 codes(2, 2, 1);
  MatU64 r(2, 1, 1);
  EXPECT_THROW(
      run_two_parties(
          [&](Channel& ch) {
            Prg prg(Block{20, 1});
            Kk13Receiver ot;
            ot.setup(ch, prg);
            return core::triplet_gen_server(ch, ot, codes, scheme, 1, cfg);
          },
          [&](Channel& ch) {
            Prg prg(Block{20, 2});
            Kk13Sender ot;
            ot.setup(ch, prg);
            return core::triplet_gen_client(ch, ot, r, scheme, /*m=*/1, cfg,
                                            prg);
          }),
      ProtocolError);
}

// ---- GC edge cases --------------------------------------------------------

TEST(GcEdge, XorOnlyCircuitHasEmptyTables) {
  gc::Builder b;
  auto g = b.garbler_inputs(4);
  auto e = b.evaluator_inputs(4);
  for (int i = 0; i < 4; ++i)
    b.mark_output(b.XOR(g[static_cast<std::size_t>(i)],
                        e[static_cast<std::size_t>(i)]));
  gc::Circuit c = b.build();
  EXPECT_EQ(c.and_count(), 0u);
  Prg prg(Block{4, 4});
  gc::Garbler garb(c, 3, 0, prg);
  EXPECT_TRUE(garb.batch().tables.empty());
  // Evaluate: XOR of inputs.
  std::vector<Block> gl(12), el(12);
  for (std::size_t k = 0; k < 3; ++k)
    for (std::size_t i = 0; i < 4; ++i) {
      gl[k * 4 + i] = garb.encode(garb.g_input_label0(k, i), (k + i) % 2);
      el[k * 4 + i] = garb.encode(garb.e_input_label0(k, i), k % 2);
    }
  auto out = gc::Evaluator::eval(c, garb.batch(), 0, gl, el);
  for (std::size_t k = 0; k < 3; ++k)
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_EQ(out[k * 4 + i] != 0, ((k + i) % 2) ^ (k % 2));
}

TEST(GcEdge, DeepNotChainsStayCorrect) {
  gc::Builder b;
  auto g = b.garbler_inputs(1);
  u32 w = g[0];
  for (int i = 0; i < 101; ++i) w = b.NOT(w);  // odd number of NOTs
  b.mark_output(w);
  gc::Circuit c = b.build();
  for (bool in : {false, true}) {
    auto plain = gc::eval_plain(c, {in}, {});
    EXPECT_EQ(plain[0], !in);
    Prg prg(Block{5, in});
    gc::Garbler garb(c, 1, 0, prg);
    std::vector<Block> gl{garb.encode(garb.g_input_label0(0, 0), in)};
    auto out = gc::Evaluator::eval(c, garb.batch(), 0, gl, {});
    EXPECT_EQ(out[0] != 0, !in);
  }
}

TEST(GcEdge, WrongTweakBaseGivesGarbage) {
  gc::Builder b;
  auto g = b.garbler_inputs(8);
  auto e = b.evaluator_inputs(8);
  b.mark_outputs(b.add_mod(g, e));
  gc::Circuit c = b.build();
  Prg prg(Block{6, 6});
  gc::Garbler garb(c, 1, /*tweak_base=*/1000, prg);
  std::vector<Block> gl(8), el(8);
  for (std::size_t i = 0; i < 8; ++i) {
    gl[i] = garb.encode(garb.g_input_label0(0, i), (i % 3) == 0);
    el[i] = garb.encode(garb.e_input_label0(0, i), (i % 2) == 0);
  }
  auto good = gc::Evaluator::eval(c, garb.batch(), 1000, gl, el);
  auto bad = gc::Evaluator::eval(c, garb.batch(), 2000, gl, el);
  EXPECT_NE(good, bad);
}

// ---- protocols over real sockets -------------------------------------------

TEST(SocketIntegration, FullInferenceOverTcp) {
  const Ring ring(32);
  const auto model = nn::random_model(ring, FragScheme::parse("(2,1)"),
                                      {8, 6, 3}, Block{7, 7});
  const auto x = nn::synthetic_images(8, 2, 10, ring, Block{8, 8});
  core::InferenceConfig cfg(ring);
  constexpr u16 port = 19473;

  nn::MatU64 logits;
  std::thread client_thread([&] {
    auto ch = SocketChannel::connect("127.0.0.1", port);
    core::InferenceClient client(cfg);
    client.run_offline(*ch, 2);
    logits = client.run_online(*ch, x);
  });
  {
    auto ch = SocketChannel::listen(port);
    core::InferenceServer server(model, cfg);
    server.run_offline(*ch);
    server.run_online(*ch);
  }
  client_thread.join();
  EXPECT_EQ(logits, nn::infer_plain(model, x));
}

// ---- misc edges -------------------------------------------------------------

TEST(BitRw, WriterReaderFuzzRoundTrip) {
  Prg prg(Block{9, 9});
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::pair<u64, std::size_t>> fields;
    BitWriter w;
    const int n = 1 + static_cast<int>(prg.next_below(50));
    for (int i = 0; i < n; ++i) {
      const std::size_t width = 1 + prg.next_below(64);
      const u64 v = prg.next_bits(width);
      fields.push_back({v, width});
      w.write(v, width);
    }
    const auto bytes = w.take();
    BitReader r(bytes);
    for (const auto& [v, width] : fields) EXPECT_EQ(r.read(width), v);
  }
}

TEST(BitRw, ReadPastEndThrows) {
  BitWriter w;
  w.write(0x3, 2);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.read(2), 0x3u);
  // The tail of the final byte is readable (zero padding)...
  EXPECT_EQ(r.read(6), 0u);
  // ...but past the buffer throws.
  EXPECT_THROW(r.read(1), ProtocolError);
}

TEST(Ed25519Edge, ZeroScalarGivesIdentity) {
  ec::Scalar zero{};
  EXPECT_TRUE(ec::Point::base().mul(zero).is_identity());
}

TEST(Ed25519Edge, IdentityEncodesDistinctly) {
  const auto id_enc = ec::Point::identity().encode();
  const auto base_enc = ec::Point::base().encode();
  EXPECT_NE(id_enc, base_enc);
  auto decoded = ec::Point::decode(id_enc);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->is_identity());
}

TEST(ComplexityFormulas, MatchHandComputedValues) {
  core::MatMulShape s{128, 784, 1};
  // gamma=4, N=4, l=32: onebatch bits = 4*128*784*(32*3 + 256).
  EXPECT_DOUBLE_EQ(core::ours_onebatch_comm_bits(s, 4, 4, 32),
                   4.0 * 128 * 784 * (32 * 3 + 256));
  EXPECT_DOUBLE_EQ(core::ours_multibatch_comm_bits(s, 4, 4, 32),
                   4.0 * 128 * 784 * (32 * 4 + 256));
  EXPECT_DOUBLE_EQ(core::secureml_ot_count(s, 32),
                   32.0 * 33 / 128 * 128 * 784);
}

TEST(BfvEdge, ManyAdditionsStayWithinNoiseBudget) {
  const he::BfvParams params(32, 64);
  Prg prg(Block{10, 10});
  he::SecretKey sk(params, prg);
  std::vector<u64> one(params.n(), 1);
  auto acc = sk.encrypt(params, one, prg);
  for (int i = 0; i < 200; ++i)
    acc = he::add_ct(params, acc, sk.encrypt(params, one, prg));
  const auto out = sk.decrypt(params, acc);
  for (u64 v : out) EXPECT_EQ(v, 201u);
}

TEST(BfvEdge, MaxPlaintextValuesRoundTrip) {
  const he::BfvParams params(32, 64);
  Prg prg(Block{11, 11});
  he::SecretKey sk(params, prg);
  std::vector<u64> pt(params.n(), mask_l(32));
  EXPECT_EQ(sk.decrypt(params, sk.encrypt(params, pt, prg)), pt);
}

TEST(SecureMlEdge, SingleBitRing) {
  const Ring ring(1);
  MatU64 w(1, 1, 1), r(1, 1, 1);
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{12, 1});
        IknpReceiver ot;
        ot.setup(ch, prg);
        return baselines::secureml_triplet_server(ch, ot, w, 1, ring);
      },
      [&](Channel& ch) {
        Prg prg(Block{12, 2});
        IknpSender ot;
        ot.setup(ch, prg);
        return baselines::secureml_triplet_client(ch, ot, r, 1, ring, prg);
      });
  EXPECT_EQ(ring.add(res.party0.at(0, 0), res.party1.at(0, 0)), 1u);
}

TEST(ReluEdge, TwoBitRing) {
  // l=2: values {-2,-1,0,1}. ReLU keeps only 0 and 1.
  const Ring ring(2);
  std::vector<u64> y0(4), y1(4, 1), z1(4, 0);
  for (u64 v = 0; v < 4; ++v) y0[v] = ring.sub(v, 1);
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{13, 1});
        core::ReluServer srv(ring, core::ReluMode::kGeneric);
        return srv.run(ch, y0, prg);
      },
      [&](Channel& ch) {
        Prg prg(Block{13, 2});
        core::ReluClient cli(ring, core::ReluMode::kGeneric);
        cli.run(ch, y1, z1, prg);
        return 0;
      });
  for (u64 v = 0; v < 4; ++v) {
    const u64 want = ring.msb(v) ? 0 : v;
    EXPECT_EQ(res.party0[v], want) << v;
  }
}

TEST(InferenceEdge, WideShallowAndNarrowDeep) {
  // Two extreme architectures through the full engine.
  const Ring ring(32);
  for (const auto& dims : {std::vector<std::size_t>{64, 2},
                           std::vector<std::size_t>{2, 3, 3, 3, 3, 2}}) {
    const auto model =
        nn::random_model(ring, FragScheme::ternary(), dims, Block{14, dims.size()});
    const auto x =
        nn::synthetic_images(dims[0], 1, 8, ring, Block{15, dims.size()});
    core::InferenceConfig cfg(ring);
    auto res = run_two_parties(
        [&](Channel& ch) {
          core::InferenceServer server(model, cfg);
          server.run_offline(ch);
          server.run_online(ch);
          return 0;
        },
        [&](Channel& ch) {
          core::InferenceClient client(cfg);
          client.run_offline(ch, 1);
          return client.run_online(ch, x);
        });
    EXPECT_EQ(res.party1, nn::infer_plain(model, x));
  }
}

}  // namespace
}  // namespace abnn2
