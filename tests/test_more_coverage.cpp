// Additional coverage: tampering detection shapes, larger HE parameters,
// quantizer corners, fragment-scheme parsing round trips, IKNP message
// independence and engine misuse.
#include <gtest/gtest.h>

#include "core/inference.h"
#include "he/bfv.h"
#include "net/party_runner.h"
#include "nn/quantize.h"
#include "ot/iknp.h"

namespace abnn2 {
namespace {

using nn::FragScheme;
using ss::Ring;

TEST(FragSchemeExtra, ParseNameRoundTrip) {
  for (const char* spec : {"(2,2,2,2)", "(3,3,2)", "s(4,4)", "s(2,1)",
                           "ternary", "binary", "(1,1,1)"}) {
    EXPECT_EQ(FragScheme::parse(spec).name(), spec);
  }
}

TEST(FragSchemeExtra, FragmentShiftsArePrefixSums) {
  const auto s = FragScheme::parse("(3,3,2)");
  EXPECT_EQ(s.fragments()[0].shift, 0u);
  EXPECT_EQ(s.fragments()[1].shift, 3u);
  EXPECT_EQ(s.fragments()[2].shift, 6u);
}

TEST(QuantizeExtra, UnsignedSchemeClampsNegatives) {
  nn::MatF w(1, 3);
  w.data() = {-5.0, 0.5, 1.0};
  const auto q = nn::quantize(w, FragScheme::parse("(2,2)"));  // unsigned
  EXPECT_EQ(q.codes.data()[0], 0u);  // clamped to the smallest code
  EXPECT_GT(q.codes.data()[2], q.codes.data()[1]);
}

TEST(QuantizeExtra, ZeroMatrixHasUnitScale) {
  nn::MatF w(2, 2);
  const auto q = nn::quantize(w, FragScheme::parse("s(2,2)"));
  EXPECT_EQ(q.scale, 1.0);
  for (u64 c : q.codes.data()) EXPECT_EQ(c, 0u);
}

TEST(IknpExtra, MessagesForUnchosenBranchStayHidden) {
  // Shape check on the receiver's view: the unchosen wire entry XOR the
  // receiver's pad must NOT equal the unchosen plaintext (it is masked by an
  // unknown pad). Guards against accidentally reusing one pad for both rows.
  constexpr std::size_t m = 32;
  BitVec choices(m);
  std::vector<std::array<Block, 2>> msgs(m);
  Prg cprg(Block{1, 1});
  for (std::size_t i = 0; i < m; ++i) {
    choices.set(i, cprg.next_bit());
    msgs[i] = {cprg.next_block(), cprg.next_block()};
  }
  struct View {
    std::vector<Block> wire;
    std::vector<RoDigest> pads;
  };
  auto res = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{2, 1});
        IknpSender s;
        s.setup(ch, prg);
        s.extend(ch, m);
        s.send_blocks(ch, msgs);
        return 0;
      },
      [&](Channel& ch) {
        Prg prg(Block{2, 2});
        IknpReceiver r;
        r.setup(ch, prg);
        r.extend(ch, choices);
        View v;
        v.wire.resize(2 * m);
        ch.recv_blocks(v.wire.data(), v.wire.size());
        for (std::size_t i = 0; i < m; ++i) v.pads.push_back(r.pad(i));
        return v;
      });
  for (std::size_t i = 0; i < m; ++i) {
    const Block pad = res.party1.pads[i].block0();
    const std::size_t chosen = choices[i] ? 1 : 0;
    EXPECT_EQ(res.party1.wire[2 * i + chosen] ^ pad, msgs[i][chosen]);
    EXPECT_NE(res.party1.wire[2 * i + (1 - chosen)] ^ pad,
              msgs[i][1 - chosen]);
  }
}

TEST(GcTamper, CorruptedTableChangesOutput) {
  // Semi-honest model: tampering is not *detected*, but it must not silently
  // yield the correct value either (no ignored table entries).
  gc::Builder b;
  auto g = b.garbler_inputs(16);
  auto e = b.evaluator_inputs(16);
  b.mark_outputs(b.add_mod(g, e));
  gc::Circuit c = b.build();
  Prg prg(Block{3, 3});
  gc::Garbler garb(c, 1, 0, prg);
  std::vector<Block> gl(16), el(16);
  for (std::size_t i = 0; i < 16; ++i) {
    gl[i] = garb.encode(garb.g_input_label0(0, i), i % 2);
    el[i] = garb.encode(garb.e_input_label0(0, i), i % 3 == 0);
  }
  const auto good = gc::Evaluator::eval(c, garb.batch(), 0, gl, el);
  // Half-gates reads a table entry only when the corresponding permute bit
  // is set, so corrupt every entry: some gate on the adder's carry chain is
  // certain to read one.
  auto tampered = garb.batch();
  for (auto& t : tampered.tables) t ^= kOneBlock;
  const auto bad = gc::Evaluator::eval(c, tampered, 0, gl, el);
  EXPECT_NE(good, bad);
}

TEST(BfvLarge, FullSizeParametersRoundTrip) {
  // The production n = 4096 parameter set used by the MiniONN baseline.
  for (std::size_t t_bits : {std::size_t{32}, std::size_t{64}}) {
    const he::BfvParams params(t_bits, 4096);
    EXPECT_EQ(params.num_primes(), t_bits <= 32 ? 2u : 3u);
    Prg prg(Block{4, t_bits});
    he::SecretKey sk(params, prg);
    std::vector<u64> pt(params.n());
    for (auto& v : pt) v = prg.next_bits(t_bits);
    auto ct = sk.encrypt(params, pt, prg);
    std::vector<i64> w(784);
    for (auto& v : w) v = static_cast<i64>(prg.next_below(257)) - 128;
    auto prod = he::mul_plain(params, ct, w);
    he::flood_noise_inplace(params, prod, prg);
    // Spot-check one coefficient against the schoolbook convolution.
    const auto got = sk.decrypt(params, prod);
    const u64 tmask = mask_l(t_bits);
    u64 want = 0;
    const std::size_t target = 783;  // coefficient n_in - 1: the dot product
    for (std::size_t j = 0; j <= target; ++j)
      want = (want + pt[target - j] * static_cast<u64>(w[j])) & tmask;
    EXPECT_EQ(got[target], want);
  }
}

TEST(EngineMisuse, DoubleOnlineWithoutSecondOfflineThrows) {
  const Ring ring(32);
  const auto model = nn::random_model(ring, FragScheme::binary(), {4, 2},
                                      Block{5, 5});
  const auto x = nn::synthetic_images(4, 1, 8, ring, Block{6, 6});
  core::InferenceConfig cfg(ring);
  auto res = run_two_parties(
      [&](Channel& ch) {
        core::InferenceServer server(model, cfg);
        server.run_offline(ch);
        server.run_online(ch);
        // Second online without offline must throw locally (one-use
        // triplets), not send anything.
        EXPECT_THROW(server.run_online(ch), ProtocolError);
        return 0;
      },
      [&](Channel& ch) {
        core::InferenceClient client(cfg);
        client.run_offline(ch, 1);
        auto out = client.run_online(ch, x);
        EXPECT_THROW(client.run_online(ch, x), ProtocolError);
        return out;
      });
  EXPECT_EQ(res.party1, nn::infer_plain(model, x));
}

TEST(ChannelExtra, LargeTransfersSurviveMemChannel) {
  // 64 MB through the in-memory pipe (the batch-128 tables push ~1 GB).
  auto res = run_two_parties(
      [&](Channel& ch) {
        std::vector<u8> big(64 << 20, 0x5A);
        ch.send(big.data(), big.size());
        return 0;
      },
      [&](Channel& ch) {
        std::vector<u8> big(64 << 20);
        ch.recv(big.data(), big.size());
        return static_cast<int>(big[0] == 0x5A && big.back() == 0x5A);
      });
  EXPECT_EQ(res.party1, 1);
}

}  // namespace
}  // namespace abnn2
