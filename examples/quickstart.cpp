// Quickstart: secure two-party prediction in ~60 lines.
//
// A server owns a small quantized model; a client owns one input. Both run
// in this process over an in-memory channel (see examples/socket_inference
// for the real-network version). The client learns the logits; the server
// learns nothing about x; the client learns nothing about W beyond the
// architecture.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/inference.h"
#include "net/party_runner.h"
#include "simd/dispatch.h"

using namespace abnn2;

int main() {
  simd::log_dispatch("quickstart");  // prints under ABNN2_VERBOSE=1
  // 1. Common public configuration: ring Z_2^32, the paper's optimized ReLU.
  const ss::Ring ring(32);
  core::InferenceConfig cfg(ring);
  cfg.relu = core::ReluMode::kOptimized;

  // 2. Server side: quantize a model. Here: random 8-bit signed weights
  //    decomposed as four 2-bit fragments — the paper's (2,2,2,2) scheme —
  //    for a 784 -> 128 -> 10 network.
  const auto scheme = nn::FragScheme::parse("s(2,2,2,2)");
  const nn::Model model =
      nn::random_model(ring, scheme, {784, 128, 10}, Block{2024, 7});

  // 3. Client side: one MNIST-sized input, fixed-point encoded.
  const nn::MatU64 x = nn::synthetic_images(784, /*batch=*/1, /*frac_bits=*/16,
                                            ring, Block{42, 0});

  // 4. Run both parties. Offline = OT-based triplets; online = the actual
  //    prediction.
  auto res = run_two_parties(
      [&](Channel& ch) {
        core::InferenceServer server(model, cfg);
        server.run_offline(ch);
        server.run_online(ch);
        return 0;
      },
      [&](Channel& ch) {
        core::InferenceClient client(cfg);
        client.run_offline(ch, /*batch=*/1);
        return client.run_online(ch, x);
      });

  // 5. The client reconstructed the logits; verify against plaintext.
  const nn::MatU64& logits = res.party1;
  const nn::MatU64 expected = nn::infer_plain(model, x);
  std::printf("secure logits (signed):");
  for (std::size_t i = 0; i < logits.rows(); ++i)
    std::printf(" %lld", static_cast<long long>(ring.to_signed(logits.at(i, 0))));
  std::printf("\npredicted class: %zu\n",
              nn::argmax_logits(ring, logits)[0]);
  std::printf("matches plaintext inference: %s\n",
              logits == expected ? "yes" : "NO (bug!)");
  std::printf("communication: %.2f MB in %llu rounds, %.2f s\n",
              static_cast<double>(res.total_comm_bytes()) / 1e6,
              static_cast<unsigned long long>(res.stats0.rounds +
                                              res.stats1.rounds),
              res.wall_seconds);
  return logits == expected ? 0 : 1;
}
