// Real-network deployment: server and client as separate processes over
// TCP. Run in two terminals (or let this binary spawn both roles with
// "demo"):
//
//   ./build/examples/socket_inference server 9900
//   ./build/examples/socket_inference client 9900
//   ./build/examples/socket_inference demo          # both roles, loopback
//
// The same InferenceServer/InferenceClient objects run unchanged over the
// hardened transport stack: SocketChannel (connect/accept/recv deadlines)
// wrapped in FramedChannel (per-message sequence numbers + CRC32C), with the
// session handshake pinning the model digest on the client side — a server
// serving the wrong model fails the handshake instead of silently returning
// wrong predictions.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "core/inference.h"
#include "crypto/sha256.h"
#include "net/framed_channel.h"
#include "net/socket_channel.h"
#include "nn/model_io.h"
#include "obs/obs.h"
#include "simd/dispatch.h"

using namespace abnn2;

namespace {

ss::Ring make_ring() { return ss::Ring(32); }

nn::Model make_model() {
  return nn::random_model(make_ring(), nn::FragScheme::parse("s(2,2)"),
                          {784, 64, 10}, Block{555, 1});
}

SocketOptions make_opts() {
  SocketOptions opts;
  opts.connect_timeout_ms = 10'000;
  opts.accept_timeout_ms = 10'000;
  opts.recv_timeout_ms = 30'000;
  return opts;
}

int run_server(u16 port) {
  const auto model = make_model();
  core::InferenceConfig cfg(make_ring());
  std::printf("[server] listening on 127.0.0.1:%u...\n", port);
  SocketListener listener(port);
  auto sock = listener.accept(make_opts());
  FramedChannel ch(*sock);
  core::InferenceServer server(model, cfg);
  server.run_offline(ch);
  std::printf("[server] offline done (%.2f MB sent)\n",
              static_cast<double>(ch.stats().bytes_sent) / 1e6);
  server.run_online(ch);
  std::printf("[server] online done; total %.2f MB sent, %llu rounds\n",
              static_cast<double>(ch.stats().bytes_sent) / 1e6,
              static_cast<unsigned long long>(ch.stats().rounds));
  return 0;
}

int run_client(u16 port) {
  core::InferenceConfig cfg(make_ring());
  // Pin the model: the handshake aborts unless the server's SHA-256 model
  // digest matches the one this client expects.
  const auto bytes = nn::serialize_model(make_model());
  cfg.expected_model_digest = Sha256::hash(bytes.data(), bytes.size());

  auto sock = SocketChannel::connect("127.0.0.1", port, make_opts());
  FramedChannel ch(*sock);
  std::printf("[client] connected\n");
  core::InferenceClient client(cfg);
  client.run_offline(ch, /*batch=*/2);
  const auto x = nn::synthetic_images(784, 2, 12, make_ring(), Block{1, 2});
  const auto logits = client.run_online(ch, x);
  const auto cls = nn::argmax_logits(make_ring(), logits);
  std::printf("[client] predictions: %zu %zu\n", cls[0], cls[1]);

  // Verify against the (publicly known in this demo) model.
  const auto expect = nn::argmax_logits(make_ring(),
                                        nn::infer_plain(make_model(), x));
  std::printf("[client] matches plaintext: %s\n",
              cls == expect ? "yes" : "NO (bug!)");
  return cls == expect ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  obs::init_trace_from_env();
  simd::log_dispatch(argv[0]);  // prints under ABNN2_VERBOSE=1
  const std::string role = argc > 1 ? argv[1] : "demo";
  const u16 port =
      argc > 2 ? static_cast<u16>(std::atoi(argv[2])) : u16{9900};
  if (role == "server") return run_server(port);
  if (role == "client") return run_client(port);
  if (role == "demo") {
    int server_rc = -1;
    std::thread srv([&] { server_rc = run_server(port); });
    const int client_rc = run_client(port);
    srv.join();
    return client_rc == 0 && server_rc == 0 ? 0 : 1;
  }
  std::fprintf(stderr, "usage: %s [server|client|demo] [port]\n", argv[0]);
  return 2;
}
