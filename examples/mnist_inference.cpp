// MNIST-style batch prediction with a float model, end to end:
//
//   float weights --quantize--> codes --secure inference--> logits
//
// Demonstrates the full user workflow of the paper's setting: the server
// trains a model offline (here: a synthetic float model standing in for a
// trained one — the paper never measures accuracy, see DESIGN.md #3),
// quantizes it at a chosen bitwidth, and serves predictions; the client
// fixed-point-encodes pixels and decodes class scores.
//
//   ./build/examples/mnist_inference [eta_spec] [batch]
//   e.g. ./build/examples/mnist_inference "s(3,3,2)" 8
//
// Set ABNN2_TRACE=<path> to write a Chrome trace_event JSON of the run
// (load it in chrome://tracing or Perfetto); the per-layer summary table is
// printed to stderr.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/inference.h"
#include "net/party_runner.h"
#include "obs/obs.h"
#include "simd/dispatch.h"

using namespace abnn2;

namespace {

// A deterministic "trained" float model: structured weights so that
// quantization at different bitwidths gives visibly different logits.
nn::MatF make_float_layer(std::size_t out, std::size_t in, u64 seed) {
  nn::MatF w(out, in);
  Prg prg(Block{seed, 99});
  for (std::size_t i = 0; i < out; ++i)
    for (std::size_t j = 0; j < in; ++j) {
      const double base = std::sin(0.1 * static_cast<double>(i * in + j));
      const double noise =
          (static_cast<double>(prg.next_below(1000)) - 500.0) / 2500.0;
      w.at(i, j) = 0.5 * base + noise;
    }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  obs::init_trace_from_env();
  simd::log_dispatch(argv[0]);  // prints under ABNN2_VERBOSE=1
  const std::string spec = argc > 1 ? argv[1] : "s(2,2,2,2)";
  const std::size_t batch =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;

  const ss::Ring ring(32);
  const auto scheme = nn::FragScheme::parse(spec);
  std::printf("quantization: %s (eta=%zu, gamma=%zu, N<=%u)\n", spec.c_str(),
              scheme.eta(), scheme.gamma(), scheme.max_n());

  // ---- server: quantize the float model --------------------------------
  const std::vector<std::size_t> dims = {784, 128, 128, 10};
  nn::Model model(ring);
  double max_scale = 0;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    const nn::MatF wf = make_float_layer(dims[i + 1], dims[i], 1000 + i);
    const nn::Quantized q = nn::quantize(wf, scheme);
    max_scale = std::max(max_scale, q.scale);
    model.layers.push_back({q.codes, {}, scheme, {}, {}});
  }
  model.validate();
  std::printf("model: 784->128->128->10, %zu weights, max quant step %.4f\n",
              model.num_weights(), max_scale);

  // ---- client: fixed-point pixels ---------------------------------------
  const std::size_t frac = 12;
  const nn::MatU64 x = nn::synthetic_images(784, batch, frac, ring,
                                            Block{7, 7});

  core::InferenceConfig cfg(ring);
  auto res = run_two_parties(
      [&](Channel& ch) {
        core::InferenceServer server(model, cfg);
        server.run_offline(ch);
        server.run_online(ch);
        return 0;
      },
      [&](Channel& ch) {
        core::InferenceClient client(cfg);
        client.run_offline(ch, batch);
        return client.run_online(ch, x);
      });

  const auto cls = nn::argmax_logits(ring, res.party1);
  const auto expect_cls = nn::argmax_logits(ring, nn::infer_plain(model, x));
  std::printf("\n%-8s %-10s %-10s\n", "input", "secure", "plaintext");
  for (std::size_t k = 0; k < batch; ++k)
    std::printf("%-8zu %-10zu %-10zu\n", k, cls[k], expect_cls[k]);
  std::printf("\ntotal communication %.2f MB, wall %.2f s (batch %zu)\n",
              static_cast<double>(res.total_comm_bytes()) / 1e6,
              res.wall_seconds, batch);

  if (obs::enabled()) {
    obs::collector()->write_summary(std::cerr);
    obs::flush_trace();
    std::fprintf(stderr, "trace written to %s\n", obs::trace_path().c_str());
  }
  return cls == expect_cls ? 0 : 1;
}
