// A guided tour of the ABNN2 building blocks, bottom-up:
//
//   1. fragment decomposition of a quantized weight (paper eq. 2),
//   2. one-fragment multiplication over 1-out-of-N OT (paper Fig 3),
//   3. dot-product triplet generation (paper Algorithm 1),
//   4. the secure ReLU protocols (paper section 4.2),
//
// printing the intermediate shares so the protocol structure is visible.
//
//   ./build/examples/protocol_tour
#include <cstdio>

#include "core/nonlinear.h"
#include "core/triplet_gen.h"
#include "net/party_runner.h"
#include "simd/dispatch.h"

using namespace abnn2;

int main() {
  simd::log_dispatch("protocol_tour");  // prints under ABNN2_VERBOSE=1
  const ss::Ring ring(16);  // small ring so numbers are readable
  Prg demo_prg(Block{123, 456});

  // ---- 1. fragment decomposition ---------------------------------------
  std::printf("== 1. fragment decomposition, eta=8 as (3,3,2) ==\n");
  const auto scheme = nn::FragScheme::parse("(3,3,2)");
  const u64 w_code = 0b10110101;  // 181
  std::printf("weight code %llu decomposes into:\n",
              static_cast<unsigned long long>(w_code));
  u64 sum = 0;
  for (std::size_t f = 0; f < scheme.gamma(); ++f) {
    const u32 choice = scheme.choice(w_code, f);
    const u64 val = scheme.value(f, choice, ring);
    sum = ring.add(sum, val);
    std::printf("  fragment %zu: N=%u, choice=%u, contributes %llu\n", f,
                scheme.table_size(f), choice,
                static_cast<unsigned long long>(val));
  }
  std::printf("  sum = %llu == interpret(code) = %llu\n\n",
              static_cast<unsigned long long>(sum),
              static_cast<unsigned long long>(
                  scheme.interpret_ring(w_code, ring)));

  // ---- 2 & 3. dot-product triplets over 1-out-of-N OT -------------------
  std::printf("== 2/3. Algorithm 1: dot-product triplet, n=4 ==\n");
  std::vector<u64> w_codes = {181, 3, 77, 255};
  std::vector<u64> r = {10, 20, 30, 40};
  core::TripletConfig tcfg(ring);
  auto trip = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{1, 1});
        Kk13Receiver ot;
        ot.setup(ch, prg);
        return core::dot_triplet_server(ch, ot, w_codes, scheme, tcfg);
      },
      [&](Channel& ch) {
        Prg prg(Block{1, 2});
        Kk13Sender ot;
        ot.setup(ch, prg);
        return core::dot_triplet_client(ch, ot, r, scheme, tcfg, prg);
      });
  u64 expect = 0;
  for (std::size_t j = 0; j < 4; ++j)
    expect = ring.add(expect, ring.mul(scheme.interpret_ring(w_codes[j], ring),
                                       r[j]));
  std::printf("  server share u = %llu, client share v = %llu\n",
              static_cast<unsigned long long>(trip.party0),
              static_cast<unsigned long long>(trip.party1));
  std::printf("  u + v mod 2^16 = %llu, <w,r> = %llu  %s\n",
              static_cast<unsigned long long>(
                  ring.add(trip.party0, trip.party1)),
              static_cast<unsigned long long>(expect),
              ring.add(trip.party0, trip.party1) == expect ? "(match)"
                                                           : "(MISMATCH)");
  std::printf("  OT instances used: gamma * n = %zu * 4 = %zu\n\n",
              scheme.gamma(), scheme.gamma() * 4);

  // ---- 4. secure ReLU ----------------------------------------------------
  std::printf("== 4. optimized ReLU on shares (section 4.2) ==\n");
  std::vector<i64> ys = {100, -100, 0, 32767, -32768};
  std::vector<u64> y0(ys.size()), y1(ys.size()), z1(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const u64 y = ring.from_signed(ys[i]);
    y1[i] = ring.random(demo_prg);
    y0[i] = ring.sub(y, y1[i]);
    z1[i] = ring.random(demo_prg);
  }
  auto relu = run_two_parties(
      [&](Channel& ch) {
        Prg prg(Block{2, 1});
        core::ReluServer srv(ring, core::ReluMode::kOptimized);
        return srv.run(ch, y0, prg);
      },
      [&](Channel& ch) {
        Prg prg(Block{2, 2});
        core::ReluClient cli(ring, core::ReluMode::kOptimized);
        cli.run(ch, y1, z1, prg);
        return 0;
      });
  std::printf("  %-8s %-10s %-10s %-10s\n", "y", "z0 (S)", "z1 (C)",
              "z0+z1 = ReLU(y)");
  for (std::size_t i = 0; i < ys.size(); ++i) {
    std::printf("  %-8lld %-10llu %-10llu %llu\n",
                static_cast<long long>(ys[i]),
                static_cast<unsigned long long>(relu.party0[i]),
                static_cast<unsigned long long>(z1[i]),
                static_cast<unsigned long long>(
                    ring.add(relu.party0[i], z1[i])));
  }
  return 0;
}
